"""Telemetry: metric primitives, durable JSONL history, the closed loop.

Three contracts, in the order an operator hits them:

* the registry's metrics are exact under concurrency (counters don't
  drop increments, histograms bucket deterministically);
* the JSONL store is versioned append-only history — schema-checked on
  read, merged *across* server restarts rather than overwritten, and
  malformed lines fail with their file and line number;
* the :class:`~repro.engine.telemetry.AdaptiveTuner` closed loop is
  deterministic — the same observed histograms always produce the same
  explainable decisions.

``docs/OPERATIONS.md`` documents every name asserted here; drift
between that document and the code should fail in this file.
"""

import json
import threading

import pytest

from oracle import oracle_answer
from repro.engine import (
    GAP_BUCKETS,
    AdaptiveTuner,
    AsyncViewServer,
    MetricsRegistry,
    ReplicaServer,
    ShardedViewServer,
    Telemetry,
    TelemetryStore,
    ViewServer,
)
from repro.engine.telemetry import TELEMETRY_SCHEMA, Histogram
from repro.exceptions import ParameterError, SnapshotError, TelemetryError
from repro.workloads import request_stream, triangle_database, triangle_view

TAU = 4.0


@pytest.fixture(scope="module")
def setup():
    view = triangle_view("bbf")
    db = triangle_database(nodes=20, edges=90, seed=7)
    return view, db


# ----------------------------------------------------------------------
# metric primitives
# ----------------------------------------------------------------------
class TestMetricPrimitives:
    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", view="V")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ParameterError):
            counter.inc(-1)

    def test_labeled_metrics_are_distinct_and_label_order_free(self):
        registry = MetricsRegistry()
        a = registry.counter("requests_total", view="V", mode="open")
        b = registry.counter("requests_total", mode="open", view="V")
        other = registry.counter("requests_total", view="V", mode="batch")
        assert a is b
        assert a is not other

    def test_histogram_buckets_values_at_their_upper_bounds(self):
        histogram = Histogram(bounds=(1, 2, 4))
        for value in (0, 1, 1.5, 2, 3, 4, 5, 100):
            histogram.observe(value)
        # counts has one +inf overflow slot past the declared bounds.
        assert histogram.counts == (2, 2, 2, 2)
        assert histogram.count == 8
        assert histogram.sum == pytest.approx(116.5)

    def test_histogram_percentile_is_a_bucket_upper_bound(self):
        histogram = Histogram(bounds=GAP_BUCKETS)
        assert histogram.percentile(0.95) == 0.0  # empty
        for _ in range(95):
            histogram.observe(3)
        assert histogram.percentile(0.95) == 4.0
        for _ in range(5):
            histogram.observe(10_000)  # overflow bucket
        assert histogram.percentile(0.5) == 4.0
        assert histogram.percentile(1.0) == float("inf")
        with pytest.raises(ParameterError):
            histogram.percentile(0.0)

    def test_histogram_bounds_must_be_ascending(self):
        with pytest.raises(ParameterError):
            Histogram(bounds=())
        with pytest.raises(ParameterError):
            Histogram(bounds=(2, 1))

    def test_redeclaring_a_histogram_with_new_buckets_is_fatal(self):
        # Silently changed boundaries would poison every future merge.
        registry = MetricsRegistry()
        registry.histogram("delay_step_gap", buckets=GAP_BUCKETS, view="V")
        registry.histogram("delay_step_gap", buckets=GAP_BUCKETS, view="V")
        with pytest.raises(TelemetryError, match="re-declared"):
            registry.histogram("delay_step_gap", buckets=(1, 2), view="V")

    def test_registry_is_exact_under_a_thread_hammer(self):
        registry = MetricsRegistry()
        threads, per_thread = 8, 2_000
        start = threading.Barrier(threads)

        def hammer(worker):
            start.wait()
            for i in range(per_thread):
                # get-or-create on every iteration: creation races and
                # increment races both have to lose.
                registry.counter("requests_total", view="V").inc()
                registry.histogram(
                    "delay_step_gap", buckets=GAP_BUCKETS, view="V"
                ).observe(1 + (worker + i) % 3)

        pool = [
            threading.Thread(target=hammer, args=(w,)) for w in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        total = threads * per_thread
        assert registry.counter_value("requests_total", view="V") == total
        histogram = registry.find_histogram("delay_step_gap", view="V")
        assert histogram.count == total
        assert sum(histogram.counts) == total

    def test_snapshot_merge_round_trips_exactly(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", view="V").inc(7)
        registry.gauge("async_queue_depth").set(3.0)
        histogram = registry.histogram(
            "delay_step_gap", buckets=GAP_BUCKETS, view="V"
        )
        histogram.observe(2)
        histogram.observe(900)
        snapshot = registry.snapshot()
        # JSON-ready: survives an actual encode/decode.
        snapshot = json.loads(json.dumps(snapshot))
        restored = MetricsRegistry()
        restored.merge_snapshot(snapshot)
        assert restored.snapshot() == snapshot


# ----------------------------------------------------------------------
# the durable store
# ----------------------------------------------------------------------
class TestTelemetryStore:
    def test_record_schema_is_pinned(self, tmp_path):
        # The on-disk contract docs/OPERATIONS.md documents: schema
        # version 1, one JSON object per line, with exactly these
        # envelope fields. Bump TELEMETRY_SCHEMA when changing any of it.
        assert TELEMETRY_SCHEMA == 1
        store = TelemetryStore(tmp_path, session="abc123")
        store.write_metrics({"counters": [], "gauges": [], "histograms": []})
        store.write_event({"op": "tuning", "view": "V"})
        assert store.path == tmp_path / "abc123.jsonl"
        lines = store.path.read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert set(first) == {"schema", "kind", "session", "seq", "ts",
                              "metrics"}
        assert first["schema"] == TELEMETRY_SCHEMA
        assert first["kind"] == "metrics"
        assert first["session"] == "abc123"
        assert first["seq"] == 1
        assert isinstance(first["ts"], float)
        assert second["kind"] == "event"
        assert second["seq"] == 2
        assert second["event"] == {"op": "tuning", "view": "V"}

    def test_load_reads_all_sessions_in_replay_order(self, tmp_path):
        a = TelemetryStore(tmp_path, session="aaa")
        b = TelemetryStore(tmp_path, session="bbb")
        a.write_event({"op": "one"})
        b.write_event({"op": "two"})
        a.write_event({"op": "three"})
        records = TelemetryStore.load(tmp_path)
        assert [r["event"]["op"] for r in records] == ["one", "two", "three"]
        keys = [(r["ts"], r["session"], r["seq"]) for r in records]
        assert keys == sorted(keys)

    def test_absent_directory_is_empty_history(self, tmp_path):
        assert TelemetryStore.load(tmp_path / "never-created") == []

    def test_malformed_lines_fail_with_file_and_line(self, tmp_path):
        store = TelemetryStore(tmp_path, session="abc")
        store.write_event({"op": "fine"})
        with store.path.open("a") as handle:
            handle.write("not json\n")
        with pytest.raises(TelemetryError, match=r"abc\.jsonl:2"):
            TelemetryStore.load(tmp_path)

    def test_schema_version_mismatch_is_fatal(self, tmp_path):
        store = TelemetryStore(tmp_path, session="abc")
        record = store.write_event({"op": "fine"})
        bumped = dict(record, schema=TELEMETRY_SCHEMA + 1)
        with store.path.open("a") as handle:
            handle.write(json.dumps(bumped) + "\n")
        with pytest.raises(TelemetryError, match="schema"):
            TelemetryStore.load(tmp_path)

    def test_merge_sums_counters_and_buckets_across_sessions(self, tmp_path):
        for session, count in (("aaa", 3), ("bbb", 4)):
            telemetry = Telemetry(tmp_path, session=session)
            telemetry.counter("requests_total", view="V").inc(count)
            histogram = telemetry.histogram(
                "delay_step_gap", buckets=GAP_BUCKETS, view="V"
            )
            for _ in range(count):
                histogram.observe(2)
            telemetry.gauge("async_queue_depth").set(float(count))
            telemetry.close()
        registry, events = TelemetryStore.merged_registry(tmp_path)
        assert registry.counter_value("requests_total", view="V") == 7
        merged = registry.find_histogram("delay_step_gap", view="V")
        assert merged.count == 7
        # Gauges are levels, not totals: the last session's value wins.
        assert registry.gauge("async_queue_depth").value == 4.0
        assert events == []

    def test_within_a_session_only_the_latest_snapshot_counts(self, tmp_path):
        # Snapshots are cumulative: replaying every flush of one session
        # would double-count. Two flushes, the counter at 2 then 5 —
        # the merge must see 5, not 7.
        telemetry = Telemetry(tmp_path, session="aaa")
        counter = telemetry.counter("requests_total", view="V")
        counter.inc(2)
        telemetry.flush()
        counter.inc(3)
        telemetry.flush()
        registry, _ = Telemetry.replay(tmp_path)
        assert registry.counter_value("requests_total", view="V") == 5

    def test_events_persist_immediately_and_replay_in_order(self, tmp_path):
        telemetry = Telemetry(tmp_path, session="aaa")
        telemetry.event("tuning", view="V", kind="retune")
        # No flush/close: events must already be durable.
        _, events = Telemetry.replay(tmp_path)
        assert [e["event"]["op"] for e in events] == ["tuning"]
        assert telemetry.registry.counter_value("events_total", op="tuning") == 1


# ----------------------------------------------------------------------
# instrumented serving, and history that survives a restart
# ----------------------------------------------------------------------
class TestInstrumentedServing:
    def test_every_layer_reports_into_one_shared_sink(self, setup, tmp_path):
        view, db = setup
        telemetry = Telemetry()
        front = AsyncViewServer(
            ShardedViewServer(
                db, n_shards=2, shard_key={"R": 0, "T": 1},
                telemetry=telemetry,
            ),
            max_workers=2,
            telemetry=telemetry,
        )
        try:
            name = front.backend.register(view, tau=TAU)
            accesses = request_stream(view, db, 12, seed=1)
            import asyncio

            served = asyncio.run(front.serve(name, accesses))
            assert served.result.outputs >= 0
        finally:
            front.close()
        registry = telemetry.registry
        routing = [
            entry
            for entry in registry.snapshot()["counters"]
            if entry["name"] == "shard_requests_total"
        ]
        assert routing, "the sharded facade never counted its routing"
        assert {e["labels"]["mode"] for e in routing} == {"routed"}
        assert sum(e["value"] for e in routing) == 12
        # The per-shard ViewServers underneath counted the distinct
        # cursors they opened (duplicates share a lane — see
        # answer_batch), in the same shared registry.
        opened = registry.counter_value(
            "requests_total", view=name, mode="open"
        ) + registry.counter_value("requests_total", view=name, mode="batch")
        assert opened == len(set(accesses))
        assert registry.find_histogram("async_queue_seconds") is not None
        assert registry.find_histogram("async_service_seconds") is not None
        assert registry.gauge("async_queue_depth").value == 0.0

    def test_replica_hydrations_and_refusals_are_counted(
        self, setup, tmp_path
    ):
        view, db = setup
        primary = ViewServer(db, snapshot_dir=tmp_path)
        name = primary.register(view, tau=TAU)
        primary.representation(name)
        primary.cache.demote_all()
        primary.close()

        telemetry = Telemetry()
        replica = ReplicaServer(db, snapshot_dir=tmp_path, telemetry=telemetry)
        try:
            replica.register(view, tau=TAU)
            assert replica.hydrate() == 1
            assert (
                telemetry.registry.counter_value(
                    "replica_hydrations_total", view=name
                )
                == 1
            )
            # An unshipped view refuses — and the refusal is counted.
            replica.register(view, tau=2 * TAU, name="unshipped")
            with pytest.raises(SnapshotError, match="refuses to build"):
                replica.representation("unshipped")
            assert (
                telemetry.registry.counter_value(
                    "replica_refusals_total", view="unshipped"
                )
                == 1
            )
        finally:
            replica.close()

    def test_history_survives_a_server_restart(self, setup, tmp_path):
        # The acceptance scenario: serve, shut down, start a new server
        # over the same directory, serve again — replay sees the union.
        view, db = setup
        accesses = request_stream(view, db, 5, seed=2)
        for _ in range(2):
            server = ViewServer(db, snapshot_dir=tmp_path, telemetry=True)
            name = server.register(view, tau=TAU)
            for access in accesses:
                assert server.answer(name, access) == oracle_answer(
                    view, db, access
                )
            server.close()  # final flush of this session's snapshot
        telemetry_dir = tmp_path / "telemetry"
        sessions = sorted(telemetry_dir.glob("*.jsonl"))
        assert len(sessions) == 2, "each restart starts a new session file"
        registry, _ = Telemetry.replay(telemetry_dir)
        assert (
            registry.counter_value("requests_total", view=name, mode="open")
            == 10
        )
        assert registry.counter_value("answers_total", view=name) > 0
        assert registry.find_histogram("serve_seconds", view=name).count == 10


# ----------------------------------------------------------------------
# the closed loop
# ----------------------------------------------------------------------
class FakeTunableServer:
    """The tuning surface, scripted: gaps go in, decisions come out."""

    def __init__(self, views=("V",), tau=8.0):
        self._taus = {name: tau for name in views}
        self._resident = {name: True for name in views}
        self.requests_served = 0
        self.prefetches = []
        self.demotions = []

    def views(self):
        return tuple(self._taus)

    def serving_tau(self, name):
        return self._taus[name]

    def retune(self, name, tau):
        previous = self._taus[name]
        self._taus[name] = tau
        self._resident[name] = False
        return previous

    def prefetch(self, name, tau=None):
        self.prefetches.append(name)
        self._resident[name] = True

    def resident(self, name, tau=None):
        return self._resident[name]

    def demote(self, name):
        if not self._resident[name]:
            return 0
        self._resident[name] = False
        self.demotions.append(name)
        return 1


def observe_traffic(telemetry, view, gaps):
    """Feed one interval of requests + gap observations for ``view``."""
    telemetry.counter("requests_total", view=view, mode="open").inc(len(gaps))
    histogram = telemetry.histogram(
        "delay_step_gap", buckets=GAP_BUCKETS, view=view
    )
    for gap in gaps:
        histogram.observe(gap)


class TestAdaptiveTuner:
    def test_over_budget_gaps_halve_tau_and_promote(self):
        server = FakeTunableServer(tau=8.0)
        telemetry = Telemetry()
        tuner = AdaptiveTuner(server, telemetry, gap_budget=16.0)
        observe_traffic(telemetry, "V", [40] * 20)
        decisions = tuner.tune()
        assert [d.kind for d in decisions] == ["retune", "promote"]
        retune = decisions[0]
        assert (retune.tau_before, retune.tau_after) == (8.0, 4.0)
        assert retune.observed_gap > retune.budget == 16.0
        assert "buying delay with space" in retune.reason
        assert server.serving_tau("V") == 4.0
        assert server.prefetches == ["V"]

    def test_gaps_far_under_budget_double_tau(self):
        server = FakeTunableServer(tau=8.0)
        telemetry = Telemetry()
        tuner = AdaptiveTuner(
            server, telemetry, gap_budget=64.0, relax_headroom=4.0
        )
        observe_traffic(telemetry, "V", [2] * 20)
        decisions = tuner.tune()
        assert decisions[0].kind == "retune"
        assert decisions[0].tau_after == 16.0
        assert "giving space back" in decisions[0].reason

    def test_gaps_inside_the_headroom_band_hold_tau(self):
        # Observed 16 on budget 64 with 8x headroom: neither over budget
        # nor 8x under it — the loop must sit still, not oscillate.
        server = FakeTunableServer(tau=8.0)
        telemetry = Telemetry()
        tuner = AdaptiveTuner(
            server, telemetry, gap_budget=64.0, relax_headroom=8.0
        )
        observe_traffic(telemetry, "V", [12] * 20)
        assert tuner.tune() == []
        assert server.serving_tau("V") == 8.0

    def test_tau_respects_the_rails(self):
        server = FakeTunableServer(tau=2.0)
        telemetry = Telemetry()
        tuner = AdaptiveTuner(
            server, telemetry, gap_budget=16.0, min_tau=2.0, max_tau=4.0
        )
        observe_traffic(telemetry, "V", [100] * 10)
        assert not [
            d for d in tuner.tune() if d.kind == "retune"
        ], "tau already at min_tau must not tighten further"
        observe_traffic(telemetry, "V", [1] * 50)
        decisions = tuner.tune()
        assert decisions[0].tau_after == 4.0
        observe_traffic(telemetry, "V", [1] * 50)
        assert not [
            d for d in tuner.tune() if d.kind == "retune"
        ], "tau at max_tau must not relax further"

    def test_idle_views_demote_and_each_pass_judges_only_its_interval(self):
        server = FakeTunableServer(tau=8.0)
        telemetry = Telemetry()
        tuner = AdaptiveTuner(server, telemetry, gap_budget=16.0)
        observe_traffic(telemetry, "V", [40] * 20)
        assert [d.kind for d in tuner.tune()] == ["retune", "promote"]
        # No new traffic since that pass: the stale over-budget gaps
        # must not re-trigger; the view is idle now, so it demotes.
        decisions = tuner.tune()
        assert [d.kind for d in decisions] == ["demote"]
        assert "no requests" in decisions[0].reason
        assert server.demotions == ["V"]
        # Still idle, nothing resident: nothing left to decide.
        assert tuner.tune() == []

    def test_maybe_tune_runs_on_the_request_cadence(self):
        server = FakeTunableServer(tau=8.0)
        telemetry = Telemetry()
        tuner = AdaptiveTuner(
            server, telemetry, gap_budget=16.0, interval_requests=10
        )
        observe_traffic(telemetry, "V", [40] * 9)
        server.requests_served = 9
        assert tuner.maybe_tune() == []
        observe_traffic(telemetry, "V", [40])
        server.requests_served = 10
        assert [d.kind for d in tuner.maybe_tune()] == ["retune", "promote"]

    def test_decisions_are_deterministic_and_fully_explained(self):
        def run():
            server = FakeTunableServer(views=("A", "B"), tau=8.0)
            telemetry = Telemetry()
            tuner = AdaptiveTuner(
                server, telemetry, gap_budget=32.0, relax_headroom=4.0
            )
            trace = []
            for gaps_a, gaps_b in [
                ([100] * 19 + [2], [1] * 20),
                ([100] * 20, []),
                ([4] * 20, [1] * 20),
            ]:
                if gaps_a:
                    observe_traffic(telemetry, "A", gaps_a)
                if gaps_b:
                    observe_traffic(telemetry, "B", gaps_b)
                trace.extend(tuner.tune())
            return [
                (d.kind, d.view, d.tau_before, d.tau_after, d.observed_gap)
                for d in trace
            ], telemetry

        first, telemetry = run()
        second, _ = run()
        assert first == second, "same observations must mean same decisions"
        by_kind = telemetry.registry
        assert by_kind.counter_value(
            "tuning_decisions_total", kind="retune"
        ) == sum(1 for d in first if d[0] == "retune")
        # Every decision is also a durable, explainable event.
        tuning_events = [
            e for e in telemetry.events if e["op"] == "tuning"
        ]
        assert len(tuning_events) == len(first)
        assert all(
            {"kind", "view", "tau_before", "tau_after", "observed_gap",
             "budget", "reason"} <= set(e)
            for e in tuning_events
        )

    def test_parameter_validation(self):
        server = FakeTunableServer()
        telemetry = Telemetry()
        for kwargs in (
            {"gap_budget": 0.0},
            {"interval_requests": 0},
            {"percentile": 0.0},
            {"percentile": 1.5},
            {"min_tau": 0.0},
            {"min_tau": 8.0, "max_tau": 4.0},
        ):
            with pytest.raises(ParameterError):
                AdaptiveTuner(server, telemetry, **kwargs)

    def test_the_loop_closes_on_a_real_server(self, setup, tmp_path):
        # End to end on a live ViewServer: a too-tight τ, observed gaps
        # under budget, the tuner relaxes it, and the new structure
        # serves identical answers.
        view, db = setup
        server = ViewServer(db, snapshot_dir=tmp_path, telemetry=True)
        try:
            name = server.register(view, tau=1.0)
            tuner = AdaptiveTuner(
                server,
                server.telemetry,
                gap_budget=512.0,
                interval_requests=4,
                relax_headroom=2.0,
            )
            accesses = request_stream(view, db, 8, seed=3)
            expected = [oracle_answer(view, db, a) for a in accesses]
            result = server.answer_batch(name, accesses)
            assert list(map(list, result.answers)) == expected
            decisions = tuner.maybe_tune()
            kinds = {d.kind for d in decisions}
            assert "retune" in kinds
            assert server.serving_tau(name) == 2.0
            again = server.answer_batch(name, accesses)
            assert again.answers == result.answers
            served = server.telemetry.registry.counter_value(
                "requests_total", view=name, mode="batch"
            )
            assert served > 0
        finally:
            server.close()
