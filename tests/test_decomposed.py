"""The Theorem 2 structure: per-bag compression over connex decompositions."""

import pytest

from oracle import oracle_accesses, oracle_answer
from repro.core.decomposed import DecomposedRepresentation
from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.exceptions import ParameterError, QueryError
from repro.hypergraph.hypergraph import hypergraph_of_view
from repro.hypergraph.width import DelayAssignment, connex_fhw
from repro.joins.generic_join import JoinCounter
from repro.query.parser import parse_view
from repro.workloads.generators import path_database, triangle_database
from repro.workloads.queries import (
    figure2_view,
    figure7_view,
    figure7_database,
    path_view,
    triangle_view,
)


def check_decomposed(view, db, assignments=(None,), limit=8):
    accesses = oracle_accesses(view, db, limit=limit)
    hg = hypergraph_of_view(view)
    _, decomposition = connex_fhw(hg, frozenset(view.bound_variables))
    for assignment in assignments:
        dr = DecomposedRepresentation(
            view, db, decomposition=decomposition, assignment=assignment
        )
        for access in accesses:
            got = sorted(dr.answer(access))
            assert got == oracle_answer(view, db, access), access


class TestCorrectness:
    def test_path3_zero_delay(self):
        check_decomposed(path_view(3), path_database(3, 60, 12, seed=1))

    def test_path4_with_delays(self):
        view = path_view(4)
        db = path_database(4, 55, 10, seed=2)
        hg = hypergraph_of_view(view)
        _, decomposition = connex_fhw(hg, frozenset(view.bound_variables))
        assignments = [
            None,
            DelayAssignment.uniform(decomposition, 0.2),
            DelayAssignment.uniform(decomposition, 0.5),
        ]
        check_decomposed(view, db, assignments)

    def test_triangle_bbf(self):
        check_decomposed(
            triangle_view("bbf"), triangle_database(15, 60, seed=3)
        )

    def test_figure2_query(self):
        view = figure2_view()
        db = path_database(6, 45, 8, seed=4)
        # figure2 uses relations R1..R6 like the path database provides.
        check_decomposed(view, db, limit=5)

    def test_figure7_query(self):
        check_decomposed(figure7_view(), figure7_database(14, 56, seed=5), limit=5)

    def test_example10_path_decomposition(self):
        """Example 10: P^bf..fb — Theorem 2 with paired bags."""
        view = path_view(5)
        db = path_database(5, 45, 8, seed=6)
        check_decomposed(view, db, limit=5)


class TestStructure:
    def _build(self, delay=0.0):
        view = path_view(4)
        db = path_database(4, 50, 10, seed=7)
        hg = hypergraph_of_view(view)
        _, decomposition = connex_fhw(hg, frozenset(view.bound_variables))
        assignment = (
            DelayAssignment.uniform(decomposition, delay) if delay else None
        )
        return DecomposedRepresentation(
            view, db, decomposition=decomposition, assignment=assignment
        )

    def test_bags_cover_free_variables(self):
        dr = self._build()
        free = set()
        for bag in dr.bags.values():
            free |= set(bag.free_vars)
        assert free == set(dr.view.free_variables)

    def test_delta_height_zero_for_zero_assignment(self):
        assert self._build().delta_height == 0.0

    def test_delta_height_grows_with_delay(self):
        assert self._build(0.3).delta_height > 0.0

    def test_space_shrinks_with_delay(self):
        """Larger per-bag τ ⇒ smaller bag structures (the tradeoff)."""
        small = self._build(0.0).space_report().structure_cells
        large = self._build(0.9).space_report().structure_cells
        assert large <= small

    def test_refinement_zeroes_unsupported_entries(self):
        """After Algorithm 4, every 1-entry extends into the subtree."""
        view = path_view(3)
        db = path_database(3, 40, 8, seed=8)
        dr = DecomposedRepresentation(view, db)
        decomposition = dr.decomposition
        for parent in decomposition.postorder():
            if parent == decomposition.root:
                continue
            children = decomposition.children[parent]
            if not children:
                continue
            bag = dr.bags[parent]
            rep = bag.representation
            for (node_id, access), bit in rep.dictionary.items():
                if bit != 1:
                    continue
                node = rep.tree.nodes[node_id]
                supported = False
                for values in rep.enumerate_interval(access, node.interval):
                    valuation = dict(zip(bag.bound_vars, access))
                    valuation.update(zip(bag.free_vars, values))
                    if all(
                        dr._child_extends(child, valuation)
                        for child in children
                    ):
                        supported = True
                        break
                assert supported, (parent, node_id, access)

    def test_counter_threads_through_bags(self):
        dr = self._build()
        counter = JoinCounter()
        accesses = oracle_accesses(
            dr.view, dr.db, limit=1
        )
        list(dr.enumerate(accesses[0], counter=counter))
        assert counter.steps > 0


class TestValidation:
    def test_wrong_connex_set_rejected(self):
        view = path_view(3)
        db = path_database(3, 30, 8, seed=9)
        other = path_view(3, pattern="bffb")  # different bound set? same...
        hg = hypergraph_of_view(view)
        # Build a decomposition for a DIFFERENT connex set.
        from repro.query.atoms import Variable

        wrong_connex = frozenset({Variable("x1"), Variable("x2")})
        _, decomposition = connex_fhw(hg, wrong_connex)
        from repro.exceptions import DecompositionError

        with pytest.raises(DecompositionError):
            DecomposedRepresentation(view, db, decomposition=decomposition)

    def test_nonzero_root_delay_rejected(self):
        view = path_view(3)
        db = path_database(3, 30, 8, seed=10)
        hg = hypergraph_of_view(view)
        _, decomposition = connex_fhw(hg, frozenset(view.bound_variables))
        bad = DelayAssignment({decomposition.root: 0.5})
        with pytest.raises(ParameterError):
            DecomposedRepresentation(
                view, db, decomposition=decomposition, assignment=bad
            )

    def test_wrong_access_arity(self):
        view = path_view(3)
        db = path_database(3, 30, 8, seed=11)
        dr = DecomposedRepresentation(view, db)
        with pytest.raises(QueryError):
            list(dr.enumerate((1,)))

    def test_root_membership_check(self):
        """An edge inside V_b filters accesses at the root (Section 5.1)."""
        view = parse_view(
            "Q^bbf(x, y, z) = R(x, y), S(y, z)"
        )
        db = Database(
            [
                Relation("R", 2, [(1, 2), (3, 4)]),
                Relation("S", 2, [(2, 5), (4, 6)]),
            ]
        )
        dr = DecomposedRepresentation(view, db)
        assert sorted(dr.answer((1, 2))) == [(5,)]
        assert dr.answer((1, 4)) == []  # (1,4) not in R
