"""Propositions 1 and 4: the constant-delay structures."""

import itertools

import pytest

from oracle import oracle_accesses, oracle_answer
from repro.core.constant_delay import (
    ConnexConstantDelayStructure,
    FullyBoundStructure,
)
from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.exceptions import QueryError
from repro.joins.generic_join import JoinCounter
from repro.joins.hash_join import evaluate_by_hash_join
from repro.query.parser import parse_view
from repro.workloads.generators import path_database, triangle_database
from repro.workloads.queries import (
    figure7_database,
    figure7_view,
    path_view,
    triangle_view,
)


class TestProposition1:
    def test_matches_oracle(self):
        view = triangle_view("bbb")
        db = triangle_database(12, 50, seed=1)
        structure = FullyBoundStructure(view, db)
        full = evaluate_by_hash_join(view.query, db)
        for access in itertools.product(range(12), repeat=3):
            assert structure.exists(access) == (access in full)

    def test_enumerate_protocol(self):
        view = triangle_view("bbb")
        db = triangle_database(12, 50, seed=2)
        structure = FullyBoundStructure(view, db)
        full = sorted(evaluate_by_hash_join(view.query, db))
        hit, miss = full[0], (-1, -1, -1)
        assert list(structure.enumerate(hit)) == [()]
        assert list(structure.enumerate(miss)) == []

    def test_space_is_linear(self):
        view = triangle_view("bbb")
        db = triangle_database(12, 50, seed=3)
        structure = FullyBoundStructure(view, db)
        assert structure.space_report().total_cells == db.total_tuples()

    def test_requires_boolean_view(self):
        with pytest.raises(QueryError):
            FullyBoundStructure(
                triangle_view("bbf"), triangle_database(10, 30, seed=4)
            )

    def test_handles_constants_via_normalization(self):
        view = parse_view("Q^bb(x, y) = R(x, y, 3)")
        db = Database([Relation("R", 3, [(1, 2, 3), (4, 5, 6)])])
        structure = FullyBoundStructure(view, db)
        assert structure.exists((1, 2))
        assert not structure.exists((4, 5))

    def test_wrong_arity_rejected(self):
        view = triangle_view("bbb")
        db = triangle_database(10, 30, seed=5)
        structure = FullyBoundStructure(view, db)
        with pytest.raises(QueryError):
            structure.exists((1,))


class TestProposition4:
    def check(self, view, db, limit=8):
        structure = ConnexConstantDelayStructure(view, db)
        for access in oracle_accesses(view, db, limit=limit):
            assert sorted(structure.answer(access)) == oracle_answer(
                view, db, access
            )
        return structure

    def test_path_query(self):
        self.check(path_view(3), path_database(3, 55, 10, seed=6))

    def test_interior_bound_path(self):
        self.check(
            path_view(4, pattern="fbfbf"), path_database(4, 45, 9, seed=7)
        )

    def test_triangle(self):
        self.check(triangle_view("bbf"), triangle_database(14, 55, seed=8))

    def test_figure7_width_realized(self):
        structure = self.check(
            figure7_view(), figure7_database(12, 50, seed=9), limit=5
        )
        assert structure.width == pytest.approx(1.5, abs=1e-6)

    def test_no_dead_ends_after_reduction(self):
        """Semijoin reduction: every indexed bag tuple extends to an
        answer — the crux of the constant-delay guarantee."""
        view = path_view(3)
        db = path_database(3, 45, 8, seed=10)
        structure = ConnexConstantDelayStructure(view, db)
        decomposition = structure.decomposition
        order = [
            n for n in decomposition.preorder() if n != decomposition.root
        ]
        full = evaluate_by_hash_join(view.query, db)
        head_index = {v: i for i, v in enumerate(view.head)}
        # Project the full result onto each bag: every stored row must
        # appear in the projection (no dangling tuples survive).
        for node in order:
            bag = structure._bags[node]
            bag_vars = bag.bound_vars + bag.free_vars
            projection = {
                tuple(row[head_index[v]] for v in bag_vars) for row in full
            }
            for row in bag.rows:
                assert row in projection

    def test_constant_delay_steps(self):
        """Probes per output stay bounded regardless of database size."""
        worst = []
        for size in (30, 60, 120):
            view = path_view(3)
            db = path_database(3, size, 16, seed=11)
            structure = ConnexConstantDelayStructure(view, db)
            bound_per_output = 0
            for access in oracle_accesses(view, db, limit=5):
                counter = JoinCounter()
                outputs = sum(
                    1 for _ in structure.enumerate(access, counter=counter)
                )
                if outputs:
                    bound_per_output = max(
                        bound_per_output, counter.steps / outputs
                    )
            worst.append(bound_per_output)
        # Constant-ish: the per-output probe count must not scale with |D|.
        assert max(worst) <= 12

    def test_empty_database(self):
        view = path_view(3)
        db = Database([Relation(f"R{i}", 2) for i in (1, 2, 3)])
        structure = ConnexConstantDelayStructure(view, db)
        assert structure.answer((1, 2)) == []
