"""The asyncio front end: serving, backpressure, timing, stream driving."""

import asyncio
import threading
import time

import pytest

from oracle import oracle_accesses, oracle_answer
from repro.engine import AsyncViewServer, ShardedViewServer
from repro.engine.server import BatchResult
from repro.exceptions import ParameterError
from repro.query.parser import parse_view
from repro.workloads import (
    arrivals,
    request_stream,
    triangle_database,
    triangle_view,
)

SHARD_KEY = {"R": 0, "T": 1}


@pytest.fixture
def triangle_setup():
    view = triangle_view("bbf")
    db = triangle_database(nodes=25, edges=120, seed=5)
    return view, db


class SlowBackend:
    """A ViewServer stand-in that records concurrency while sleeping."""

    def __init__(self, delay=0.02):
        self.delay = delay
        self.in_flight = 0
        self.max_in_flight = 0
        self._lock = threading.Lock()

    def register(self, view, **kwargs):
        return "slow"

    def answer_batch(self, name, accesses, tau=None, measure=True):
        with self._lock:
            self.in_flight += 1
            self.max_in_flight = max(self.max_in_flight, self.in_flight)
        time.sleep(self.delay)
        with self._lock:
            self.in_flight -= 1
        batch = tuple(tuple(a) for a in accesses)
        return BatchResult(
            accesses=batch,
            answers=tuple([] for _ in batch),
            request_stats={},
            unique_count=len(set(batch)),
        )

    def total_builds(self):
        return 0

    @property
    def cache_stats(self):
        from repro.engine import CacheStats

        return CacheStats()


class TestServe:
    def test_answers_match_oracle_plain_backend(self, triangle_setup):
        view, db = triangle_setup
        server = AsyncViewServer(db, max_entries=4)
        name = server.register(view, tau=8.0)
        accesses = oracle_accesses(view, db, limit=6)

        async def main():
            return await server.serve(name, accesses)

        result = asyncio.run(main())
        server.close()
        for access, rows in zip(result.result.accesses, result.result.answers):
            assert list(rows) == oracle_answer(view, db, access)
        assert result.queue_seconds >= 0.0
        assert result.service_seconds >= 0.0
        assert result.turnaround_seconds == pytest.approx(
            result.queue_seconds + result.service_seconds
        )
        assert result.shards == ()

    def test_answers_match_oracle_sharded_backend(self, triangle_setup):
        view, db = triangle_setup
        backend = ShardedViewServer(db, 4, SHARD_KEY)
        server = AsyncViewServer(backend, max_workers=4)
        name = server.register(view, tau=8.0)
        stream = request_stream(view, db, 40, seed=3, skew=1.0, miss_rate=0.2)

        async def main():
            return await server.serve(name, stream)

        result = asyncio.run(main())
        server.close()
        for access, rows in zip(result.result.accesses, result.result.answers):
            assert list(rows) == oracle_answer(view, db, access)
        # The fan-out actually touched the shards the plan named.
        assert result.shards
        assert all(0 <= index < 4 for index in result.shards)

    def test_scatter_gather_through_the_front_end(self, triangle_setup):
        _, db = triangle_setup
        view = parse_view("Rev^bbf(y, z, x) = R(x, y), S(y, z), T(z, x)")
        backend = ShardedViewServer(db, 3, SHARD_KEY)
        server = AsyncViewServer(backend, max_workers=3)
        name = server.register(view, tau=8.0)
        accesses = oracle_accesses(view, db, limit=5)

        async def main():
            return await server.serve(name, accesses)

        result = asyncio.run(main())
        server.close()
        assert result.shards == (0, 1, 2)  # every shard answers
        for access, rows in zip(result.result.accesses, result.result.answers):
            assert list(rows) == oracle_answer(view, db, access)

    def test_parameter_validation(self, triangle_setup):
        _, db = triangle_setup
        with pytest.raises(ParameterError):
            AsyncViewServer(db, max_workers=0)
        with pytest.raises(ParameterError):
            AsyncViewServer(db, max_pending=0)


class TestBackpressure:
    def test_workers_bound_concurrency(self):
        backend = SlowBackend()
        server = AsyncViewServer(backend, max_workers=2, max_pending=16)

        async def main():
            await asyncio.gather(
                *(server.serve("slow", [(i,)]) for i in range(10))
            )

        asyncio.run(main())
        server.close()
        assert backend.max_in_flight <= 2

    def test_pending_bound_applies_before_the_pool(self):
        backend = SlowBackend(delay=0.01)
        server = AsyncViewServer(backend, max_workers=8, max_pending=3)

        async def main():
            return await asyncio.gather(
                *(server.serve("slow", [(i,)]) for i in range(12))
            )

        results = asyncio.run(main())
        server.close()
        # With 12 batches squeezed through 3 tickets, later batches must
        # have waited in the semaphore: some queue delay is visible.
        assert backend.max_in_flight <= 3
        assert max(r.queue_seconds for r in results) > 0.0

    def test_stream_intake_is_backpressured(self):
        backend = SlowBackend(delay=0.005)
        server = AsyncViewServer(backend, max_workers=4, max_pending=2)
        stream = [(i,) for i in range(40)]

        async def main():
            return await server.serve_stream("slow", stream, batch_size=4)

        report = asyncio.run(main())
        server.close()
        assert report.batches == 10
        assert report.requests == 40
        assert backend.max_in_flight <= 2


class TestServeStream:
    def test_totals_match_the_sync_engine(self, triangle_setup):
        view, db = triangle_setup
        stream = request_stream(view, db, 30, seed=4, skew=1.5)
        server = AsyncViewServer(db, max_entries=4)
        name = server.register(view, tau=8.0)

        async def main():
            return await server.serve_stream(name, stream, batch_size=8)

        report = asyncio.run(main())
        server.close()
        assert report.requests == 30
        assert report.batches == 4
        assert report.builds == 1
        assert report.unique_requests + report.shared_requests == 30
        assert report.outputs == sum(
            len(oracle_answer(view, db, access)) for access in stream
        )
        assert report.requests_per_second > 0
        assert report.queue_seconds_max >= report.queue_seconds_mean >= 0.0
        assert report.service_seconds_mean > 0.0

    def test_warm_stream_reports_deltas(self, triangle_setup):
        view, db = triangle_setup
        stream = request_stream(view, db, 12, seed=6)
        server = AsyncViewServer(db, max_entries=4)
        name = server.register(view, tau=8.0)

        async def main():
            cold = await server.serve_stream(name, stream, batch_size=4)
            warm = await server.serve_stream(name, stream, batch_size=4)
            return cold, warm

        cold, warm = asyncio.run(main())
        server.close()
        assert cold.builds == 1
        assert warm.builds == 0
        assert warm.cache.misses == 0

    def test_async_iterator_of_arrivals_drives_the_stream(self, triangle_setup):
        view, db = triangle_setup
        stream = request_stream(view, db, 20, seed=8, miss_rate=0.2)
        backend = ShardedViewServer(db, 2, SHARD_KEY)
        server = AsyncViewServer(backend, max_workers=2)
        name = server.register(view, tau=8.0)

        async def main():
            return await server.serve_stream(
                name, arrivals(stream, 5, rate=2000.0, seed=1)
            )

        report = asyncio.run(main())
        server.close()
        assert report.requests == 20
        assert report.batches == 4
        assert report.outputs == sum(
            len(oracle_answer(view, db, access)) for access in stream
        )

    def test_failed_batch_does_not_strand_in_flight_siblings(
        self, triangle_setup
    ):
        view, db = triangle_setup
        backend = ShardedViewServer(db, 2, SHARD_KEY)
        server = AsyncViewServer(backend, max_workers=2, max_pending=4)
        name = server.register(view, tau=8.0)
        good = request_stream(view, db, 12, seed=1)
        poisoned = good + [()]  # too short to pin a shard -> SchemaError

        async def main():
            return await server.serve_stream(name, poisoned, batch_size=4)

        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError):
            asyncio.run(main())  # raises cleanly, no stranded tasks
        # The engine is still healthy afterwards.
        server.reset()

        async def healthy():
            return await server.serve_stream(name, good, batch_size=4)

        report = asyncio.run(healthy())
        server.close()
        assert report.requests == 12

    def test_reset_rearms_for_a_second_loop(self, triangle_setup):
        view, db = triangle_setup
        server = AsyncViewServer(db, max_entries=4)
        name = server.register(view, tau=8.0)

        async def one_round():
            return await server.serve(name, [(1, 2)])

        asyncio.run(one_round())
        server.reset()
        result = asyncio.run(one_round())
        server.close()
        assert list(result.result.answers[0]) == oracle_answer(
            view, db, (1, 2)
        )

    def test_context_manager_closes_the_pool(self, triangle_setup):
        view, db = triangle_setup

        async def main():
            async with AsyncViewServer(db, max_entries=4) as server:
                name = server.register(view, tau=8.0)
                return await server.serve(name, [(1, 2)])

        result = asyncio.run(main())
        assert list(result.result.answers[0]) == oracle_answer(
            view, db, (1, 2)
        )


class TestArrivals:
    def test_batches_match_batched_and_are_deterministic(self, triangle_setup):
        view, db = triangle_setup
        stream = request_stream(view, db, 13, seed=2)

        async def collect(**kwargs):
            return [chunk async for chunk in arrivals(stream, 4, **kwargs)]

        plain = asyncio.run(collect())
        paced_a = asyncio.run(collect(rate=5000.0, seed=7))
        paced_b = asyncio.run(collect(rate=5000.0, seed=7))
        assert [len(c) for c in plain] == [4, 4, 4, 1]
        assert plain == paced_a == paced_b
        assert [a for chunk in plain for a in chunk] == stream

    def test_rate_must_be_positive(self, triangle_setup):
        view, db = triangle_setup
        stream = request_stream(view, db, 4, seed=2)

        async def drain():
            return [c async for c in arrivals(stream, 2, rate=0.0)]

        with pytest.raises(ParameterError):
            asyncio.run(drain())
