"""Updates with deferred rebuild (the §8 open problem, engineered)."""

import pytest
from hypothesis import given, settings, strategies as st

from oracle import oracle_accesses, oracle_answer
from repro.core.dynamic import DynamicRepresentation
from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.exceptions import SchemaError
from repro.query.parser import parse_view
from repro.workloads.generators import triangle_database
from repro.workloads.queries import triangle_view


@pytest.fixture
def setup():
    view = triangle_view("bbf")
    db = triangle_database(14, 50, seed=51)
    dynamic = DynamicRepresentation(
        view, db, tau=4.0, rebuild_fraction=float("inf")
    )
    return view, db, dynamic


class TestUpdates:
    def test_clean_state_uses_structure(self, setup):
        view, db, dynamic = setup
        assert not dynamic.is_dirty
        for access in oracle_accesses(view, db, limit=6):
            assert dynamic.answer(access) == oracle_answer(view, db, access)

    def test_insert_visible_immediately(self, setup):
        view, db, dynamic = setup
        dynamic.insert("R", (0, 1))
        dynamic.insert("S", (1, 2))
        dynamic.insert("T", (2, 0))
        assert dynamic.is_dirty
        assert (2,) in set(dynamic.answer((0, 1)))
        updated = dynamic.current_database()
        assert dynamic.answer((0, 1)) == oracle_answer(view, updated, (0, 1))

    def test_delete_visible_immediately(self, setup):
        view, db, dynamic = setup
        accesses = oracle_accesses(view, db, limit=4)
        target = next(a for a in accesses if oracle_answer(view, db, a))
        witness = oracle_answer(view, db, target)[0]
        dynamic.delete("S", (target[1], witness[0]))
        updated = dynamic.current_database()
        assert sorted(dynamic.answer(target)) == oracle_answer(
            view, updated, target
        )

    def test_insert_then_delete_cancels(self, setup):
        view, db, dynamic = setup
        dynamic.insert("R", (99, 98))
        dynamic.delete("R", (99, 98))
        updated = dynamic.current_database()
        assert (99, 98) not in updated["R"]

    def test_duplicate_insert_is_noop(self, setup):
        view, db, dynamic = setup
        existing = next(iter(db["R"]))
        pending = dynamic.pending_updates
        dynamic.insert("R", existing)
        assert dynamic.pending_updates == pending

    def test_delete_absent_is_noop(self, setup):
        view, db, dynamic = setup
        pending = dynamic.pending_updates
        dynamic.delete("R", (123456, 654321))
        assert dynamic.pending_updates == pending

    def test_arity_checked(self, setup):
        _, _, dynamic = setup
        with pytest.raises(SchemaError):
            dynamic.insert("R", (1, 2, 3))

    def test_manual_rebuild_restores_guarantees(self, setup):
        view, db, dynamic = setup
        dynamic.insert("R", (900, 901))
        assert dynamic.is_dirty
        dynamic.rebuild()
        assert not dynamic.is_dirty
        assert dynamic.rebuilds == 1
        updated = dynamic.current_database()
        for access in oracle_accesses(view, updated, limit=5):
            assert dynamic.answer(access) == oracle_answer(
                view, updated, access
            )

    def test_automatic_rebuild_threshold(self):
        view = triangle_view("bbf")
        db = triangle_database(14, 50, seed=52)
        dynamic = DynamicRepresentation(
            view, db, tau=4.0, rebuild_fraction=0.02
        )
        budget = int(0.02 * db.total_tuples()) + 2
        for k in range(budget):
            dynamic.insert("R", (900 + 2 * k, 901 + 2 * k))
        assert dynamic.rebuilds >= 1
        # Updates after a rebuild may leave the buffer dirty again, but
        # the buffer never accumulates past the threshold.
        assert dynamic.pending_updates <= budget

    def test_space_report_counts_buffer(self, setup):
        _, _, dynamic = setup
        base = dynamic.space_report().materialized_tuples
        dynamic.insert("R", (70, 71))
        assert dynamic.space_report().materialized_tuples == base + 1


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["R", "S", "T"]),
            st.booleans(),
            st.integers(0, 5),
            st.integers(0, 5),
        ),
        max_size=25,
    )
)
@settings(max_examples=40, deadline=None)
def test_update_stream_property(stream):
    """Any interleaving of inserts/deletes stays consistent with the
    oracle evaluated on the logical database."""
    view = parse_view("D^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)")
    db = Database(
        [
            Relation("R", 2, [(0, 1), (1, 2)]),
            Relation("S", 2, [(1, 3), (2, 4)]),
            Relation("T", 2, [(3, 0), (4, 1)]),
        ]
    )
    dynamic = DynamicRepresentation(
        view, db, tau=2.0, rebuild_fraction=float("inf")
    )
    for name, is_insert, a, b in stream:
        if is_insert:
            dynamic.insert(name, (a, b))
        else:
            dynamic.delete(name, (a, b))
    logical = dynamic.current_database()
    for access in [(i, j) for i in range(4) for j in range(4)]:
        assert sorted(dynamic.answer(access)) == oracle_answer(
            view, logical, access
        )
    dynamic.rebuild()
    for access in [(i, j) for i in range(3) for j in range(3)]:
        assert sorted(dynamic.answer(access)) == oracle_answer(
            view, logical, access
        )
