"""Regression tests for bugs found during development.

Each test pins a specific failure mode so it cannot silently return:

1. box decomposition dropped closed endpoints when only the last
   coordinate differs (the single-box case);
2. the generic join selected its candidate stream by *total* key count
   instead of *in-range* count, breaking the O(T) evaluation bound of
   Proposition 6 on range-restricted sub-instances;
3. counting |R_F ⋉ B| without a bound valuation walked the bound-first
   trie at the wrong levels (needs the multiplicity-preserving free trie).
"""

from repro.core.context import ViewContext
from repro.core.cost import CostModel
from repro.core.intervals import FInterval
from repro.core.structure import CompressedRepresentation
from repro.database.catalog import Database
from repro.database.index import TrieIndex
from repro.database.relation import Relation
from repro.joins.generic_join import JoinCounter, generic_join
from repro.query.atoms import Variable
from repro.query.parser import parse_view
from repro.workloads.queries import running_example_database, running_example_view

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestClosedEndpointBoxes:
    def test_last_coordinate_interval_keeps_endpoints(self):
        """Width-1 interval [6, 8] must decompose to the single closed box
        [6, 8], not the open (6, 8)."""
        from repro.core.domain import Domain, TupleSpace
        from repro.core.intervals import FBox, ScalarInterval

        space = TupleSpace([Domain(range(10))])
        boxes = FInterval((6,), (8,)).box_decomposition(space)
        assert boxes == [FBox.canonical(space, (), ScalarInterval(6, 8))]

    def test_triangle_small_tau_endpoints(self):
        """The original symptom: missing answers at tau=1 for accesses
        whose witness sat on an interval endpoint."""
        from repro.workloads.generators import triangle_database
        from repro.workloads.queries import triangle_view
        from oracle import oracle_accesses, oracle_answer

        view = triangle_view("bbf")
        db = triangle_database(20, 60, seed=3)
        cr = CompressedRepresentation(view, db, tau=1.0)
        for access in oracle_accesses(view, db, limit=12):
            assert cr.answer(access) == oracle_answer(view, db, access)


class TestInRangeCandidateSelection:
    def test_join_work_respects_empty_range(self):
        """One atom has 0 keys in the range, the other 500: the join must
        probe O(1), not 500 (the Proposition 6 bound through T)."""
        big = TrieIndex(
            Relation("A", 2, [(1, k) for k in range(500)]), [0, 1]
        ).root
        empty_in_range = TrieIndex(
            Relation("B", 2, [(1, k + 10_000) for k in range(500)]), [0, 1]
        ).root
        counter = JoinCounter()
        result = list(
            generic_join(
                [(big.children[1], (y,)), (empty_in_range.children[1], (y,))],
                (y,),
                ranges={y: (0, 499)},
                counter=counter,
            )
        )
        assert result == []
        assert counter.steps == 0

    def test_structure_delay_on_barren_stretch(self):
        """End-to-end: a sparse-overlap access must not pay per-candidate
        work inside zero-cost intervals."""
        rows = set()
        for k in range(300):
            rows.add((1, 2 * k))        # R1: even ys
            rows.add((2, 2 * k + 1))    # R2 side: odd ys
        view = parse_view("Q^bbf(a, b, y) = R(a, y), R(b, y)")
        db = Database([Relation("R", 2, rows)])
        cr = CompressedRepresentation(view, db, tau=4.0)
        counter = JoinCounter()
        assert list(cr.enumerate((1, 2), counter=counter)) == []
        # The heavy empty pair is answered from its 0-bit.
        assert counter.steps <= 10


class TestUnrestrictedCounting:
    def test_free_trie_counts_multiplicities(self):
        """|R1 ⋉ (x=1, y=1)| over all w1 must be 3 on the Example 13
        instance (three w1 values share that free part)."""
        ctx = ViewContext(running_example_view(), running_example_database())
        model = CostModel(ctx, {0: 1.0, 1: 1.0, 2: 1.0}, alpha=2.0)
        from repro.core.intervals import FBox, ScalarInterval

        space = ctx.space
        box = FBox.canonical(space, (0, 0), ScalarInterval(0, 1))
        r1 = ctx.atoms[0]
        count = model.atom_box_count(r1, box, r1.free_trie.root)
        assert count == 3

    def test_paper_t_value_depends_on_it(self):
        ctx = ViewContext(running_example_view(), running_example_database())
        model = CostModel(ctx, {0: 1.0, 1: 1.0, 2: 1.0}, alpha=2.0)
        import math

        root = FInterval.full(ctx.space)
        assert abs(
            model.interval_cost(root)
            - (math.sqrt(36) + math.sqrt(8) + math.sqrt(3))
        ) < 1e-9
