"""Shared fixtures for the test suite.

The independent hash-join oracle lives in :mod:`oracle` (``tests/oracle.py``)
— a plain importable module, so test imports never depend on conftest
loading order (see the module docstring there for the history).
"""

from __future__ import annotations

import os

import pytest

from repro.database.catalog import Database
from repro.database.relation import Relation

if os.environ.get("REPRO_LOCK_ORDER") == "1":
    # Lock-order leg (make test-lock-order): every lock the engine
    # creates during this session is an instrumented wrapper reporting
    # into one shared acquisition graph; at session end, any cycle in
    # that graph — a latent deadlock, whether or not the timing ever
    # lined up — fails the run. Name-level granularity: see
    # repro/analysis/lockorder.py for what is (and isn't) detectable.
    from repro.analysis import lockorder
    from repro.engine import locking

    @pytest.fixture(autouse=True, scope="session")
    def _lock_order_tracking():
        graph = lockorder.LockGraph()
        previous = locking.set_lock_factory(
            lockorder.tracking_factory(graph)
        )
        try:
            yield graph
        finally:
            locking.set_lock_factory(previous)
        cycles = graph.cycles()
        assert not cycles, graph.describe(cycles)


@pytest.fixture
def tiny_db() -> Database:
    """A small hand-checkable database over binary relations R, S, T."""
    return Database(
        [
            Relation("R", 2, [(1, 2), (1, 3), (2, 3), (3, 1), (4, 4)]),
            Relation("S", 2, [(2, 3), (3, 1), (3, 4), (1, 1), (4, 4)]),
            Relation("T", 2, [(3, 1), (1, 2), (4, 3), (1, 1), (4, 4)]),
        ]
    )
