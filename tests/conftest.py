"""Shared fixtures for the test suite.

The independent hash-join oracle lives in :mod:`oracle` (``tests/oracle.py``)
— a plain importable module, so test imports never depend on conftest
loading order (see the module docstring there for the history).
"""

from __future__ import annotations

import pytest

from repro.database.catalog import Database
from repro.database.relation import Relation


@pytest.fixture
def tiny_db() -> Database:
    """A small hand-checkable database over binary relations R, S, T."""
    return Database(
        [
            Relation("R", 2, [(1, 2), (1, 3), (2, 3), (3, 1), (4, 4)]),
            Relation("S", 2, [(2, 3), (3, 1), (3, 4), (1, 1), (4, 4)]),
            Relation("T", 2, [(3, 1), (1, 2), (4, 3), (1, 1), (4, 4)]),
        ]
    )
