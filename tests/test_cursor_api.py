"""The typed cursor protocol: AccessRequest, AnswerCursor, server.open.

Covers the serving-stack redesign: cursors as the primitive on all three
back ends (plain, sharded with lazy k-way merge, async streaming), the
materializing wrappers' exact parity with the pre-cursor public API, the
O(k)-per-shard laziness bound, and the atomic cache sweep behind
``invalidate``.
"""

import asyncio
import threading

import pytest

from oracle import oracle_accesses, oracle_answer
from repro.baselines.lazy import LazyView
from repro.engine import (
    AccessRequest,
    AsyncViewServer,
    RepresentationCache,
    ShardedViewServer,
    ViewServer,
    open_cursor,
)
from repro.engine.api import as_request, resume_enumeration
from repro.exceptions import ParameterError
from repro.workloads.generators import triangle_database
from repro.workloads.queries import triangle_view
from repro.workloads.streams import productive_accesses, topk_requests

VIEW = triangle_view("bff")
SHARD_KEY = {"R": 0, "T": 1}
SCATTER_KEY = {"S": 0}


@pytest.fixture(scope="module")
def db():
    return triangle_database(nodes=20, edges=110, seed=31)


@pytest.fixture(scope="module")
def server(db):
    server = ViewServer(db)
    server.register(VIEW, tau=6.0, name="V")
    return server


@pytest.fixture(scope="module")
def heavy_access(db, server):
    return max(
        productive_accesses(VIEW, db),
        key=lambda a: len(oracle_answer(VIEW, db, a)),
    )


class TestAccessRequest:
    def test_normalizes_tuples(self):
        request = AccessRequest(view="V", access=[1, 2], start_after=[3, 4])
        assert request.access == (1, 2)
        assert request.start_after == (3, 4)

    def test_rejects_negative_limit(self):
        with pytest.raises(ParameterError):
            AccessRequest(view="V", access=(1,), limit=-1)

    def test_page_after_carries_the_page_size(self):
        first = AccessRequest(view="V", access=(1,), limit=5)
        second = first.page_after((7, 8))
        assert second.start_after == (7, 8)
        assert second.limit == 5
        assert second.view == "V" and second.access == (1,)

    def test_as_request_shorthand(self):
        request = as_request("V", (1,), limit=3, measure=True)
        assert request == AccessRequest(
            view="V", access=(1,), limit=3, measure=True
        )
        passthrough = as_request(request)
        assert passthrough is request


class TestAnswerCursor:
    def test_streams_the_full_answer_in_order(self, db, server, heavy_access):
        with server.open("V", heavy_access) as cursor:
            rows = list(cursor)
        assert rows == oracle_answer(VIEW, db, heavy_access)

    def test_limit_truncates_and_is_not_exhausted(
        self, db, server, heavy_access
    ):
        cursor = server.open("V", heavy_access, limit=2)
        rows = cursor.fetchall()
        assert rows == oracle_answer(VIEW, db, heavy_access)[:2]
        assert cursor.delivered == 2
        assert not cursor.exhausted

    def test_limit_zero_is_a_legal_empty_page(self, server, heavy_access):
        cursor = server.open("V", heavy_access, limit=0, start_after=(0, 0))
        assert cursor.fetchall() == []
        assert cursor.resume_token() == (0, 0)

    def test_fetchmany_pages_through(self, db, server, heavy_access):
        expected = oracle_answer(VIEW, db, heavy_access)
        cursor = server.open("V", heavy_access)
        pages = []
        while True:
            page = cursor.fetchmany(2)
            if not page:
                break
            assert len(page) <= 2
            pages.extend(page)
        assert pages == expected
        assert cursor.exhausted

    def test_close_stops_iteration(self, server, heavy_access):
        cursor = server.open("V", heavy_access)
        next(cursor)
        cursor.close()
        assert list(cursor) == []
        cursor.close()  # idempotent

    def test_lazy_enumeration_under_limit(self, server, heavy_access):
        # The counter sees only the limited traversal's steps: a limit=1
        # cursor must do far less logical work than a full drain.
        with server.open("V", heavy_access, limit=1, measure=True) as cursor:
            cursor.fetchall()
            limited = cursor.stats().step_total
        with server.open("V", heavy_access, measure=True) as cursor:
            cursor.fetchall()
            full = cursor.stats().step_total
        assert 0 < limited < full

    def test_measured_stats_match_batch_semantics(
        self, db, server, heavy_access
    ):
        expected = oracle_answer(VIEW, db, heavy_access)
        with server.open("V", heavy_access, measure=True) as cursor:
            cursor.fetchall()
            stats = cursor.stats()
        batch = server.answer_batch("V", [heavy_access], measure=True)
        batch_stats = batch.request_stats[heavy_access]
        assert stats.outputs == batch_stats.outputs == len(expected)
        assert stats.step_total == batch_stats.step_total
        assert stats.step_max_gap == batch_stats.step_max_gap
        assert stats.wall_total > 0

    def test_batch_stats_include_the_closing_gap_limit_stops_omit_it(
        self, db, server
    ):
        # The BatchResult contract: batch cursors drain to exhaustion,
        # so each entry's step_max_gap folds in the closing gap (the
        # trailing steps after the last output) exactly like
        # measure_enumeration — while a limit-stopped cursor, which
        # never observes exhaustion, omits it.
        from repro.joins.generic_join import JoinCounter
        from repro.measure.delay import measure_enumeration

        accesses = productive_accesses(VIEW, db)[:20]
        batch = server.answer_batch("V", accesses, measure=True)
        representation = server.representation("V")
        strictly_larger = 0
        for access in accesses:
            counter = JoinCounter()
            reference = measure_enumeration(
                representation.enumerate(access, counter=counter),
                counter=counter,
            )
            drained = batch.request_stats[tuple(access)]
            assert drained.outputs == reference.outputs
            assert drained.step_total == reference.step_total
            assert drained.step_max_gap == reference.step_max_gap
            # Stop exactly at the last output: same tuples delivered,
            # but the cursor never sees exhaustion.
            with server.open(
                "V", access, limit=reference.outputs, measure=True
            ) as cursor:
                cursor.fetchall()
                limited = cursor.stats()
            assert limited.outputs == reference.outputs
            assert limited.step_max_gap <= drained.step_max_gap
            strictly_larger += limited.step_max_gap < drained.step_max_gap
        # The distinction is real on this workload, not vacuous: for
        # some access the trailing steps dominate every emission gap.
        assert strictly_larger > 0

    def test_resume_token_round_trip(self, db, server, heavy_access):
        expected = oracle_answer(VIEW, db, heavy_access)
        first = server.open("V", heavy_access, limit=2)
        head = first.fetchall()
        second = server.open(
            "V", heavy_access, start_after=first.resume_token()
        )
        assert head + second.fetchall() == expected

    def test_open_accepts_a_request_object(self, db, server, heavy_access):
        request = AccessRequest(view="V", access=heavy_access, limit=3)
        with server.open(request) as cursor:
            assert cursor.fetchall() == oracle_answer(
                VIEW, db, heavy_access
            )[:3]

    def test_open_counts_requests_served(self, server, heavy_access):
        before = server.requests_served
        server.open("V", heavy_access).close()
        assert server.requests_served == before + 1


class TestSkipScanDegradation:
    def test_resume_without_enumerate_from_skip_scans(self, db):
        lazy = LazyView(VIEW, db)
        access = oracle_accesses(VIEW, db, limit=1)[0]
        full = oracle_answer(VIEW, db, access)
        assert len(full) >= 2
        assert not getattr(lazy, "supports_resume", False)
        resumed = list(
            resume_enumeration(lazy, access, start_after=full[0])
        )
        assert resumed == full[1:]

    def test_foreign_token_is_an_empty_page(self, db):
        lazy = LazyView(VIEW, db)
        access = oracle_accesses(VIEW, db, limit=1)[0]
        cursor = open_cursor(
            lazy,
            AccessRequest(
                view="V", access=access, start_after=(-5, -5)
            ),
        )
        assert cursor.fetchall() == []


class TestShardedCursors:
    @pytest.fixture(scope="class")
    def scatter(self, db):
        server = ShardedViewServer(db, 4, SCATTER_KEY)
        server.register(VIEW, tau=6.0, name="V")
        assert server.route("V")[0] == "scatter"
        return server

    @pytest.fixture(scope="class")
    def routed(self, db):
        server = ShardedViewServer(db, 4, SHARD_KEY)
        server.register(VIEW, tau=6.0, name="V")
        assert server.route("V")[0] == "routed"
        return server

    def test_scatter_merge_is_sorted_and_oracle_identical(
        self, db, scatter, heavy_access
    ):
        with scatter.open("V", heavy_access) as cursor:
            rows = cursor.fetchall()
        assert rows == oracle_answer(VIEW, db, heavy_access)
        assert len(cursor.parts) == 4

    def test_limit_k_pulls_at_most_k_per_shard(
        self, db, scatter, heavy_access
    ):
        k = 2
        full = oracle_answer(VIEW, db, heavy_access)
        assert len(full) > k
        with scatter.open(
            "V", heavy_access, limit=k, measure=True
        ) as cursor:
            assert cursor.fetchall() == full[:k]
            per_shard = [part.stats().outputs for part in cursor.parts]
        assert all(outputs <= k for outputs in per_shard)
        assert sum(per_shard) < len(full)

    def test_merged_stats_fold_the_shard_counters(
        self, scatter, heavy_access
    ):
        with scatter.open("V", heavy_access, measure=True) as cursor:
            cursor.fetchall()
            merged = cursor.stats()
            parts = [part.stats() for part in cursor.parts]
        assert merged.step_total == sum(p.step_total for p in parts)
        assert merged.outputs == sum(p.outputs for p in parts)

    def test_routed_open_touches_one_shard(self, db, routed, heavy_access):
        with routed.open("V", heavy_access, limit=3) as cursor:
            rows = cursor.fetchall()
        assert rows == oracle_answer(VIEW, db, heavy_access)[:3]
        assert cursor.parts == ()  # the owning shard's cursor, unmerged

    def test_facade_counts_one_request_per_open(self, scatter, heavy_access):
        before = scatter.requests_served
        scatter.open("V", heavy_access).close()
        assert scatter.requests_served == before + 1

    def test_close_releases_every_part(self, scatter, heavy_access):
        cursor = scatter.open("V", heavy_access)
        next(cursor)
        cursor.close()
        assert all(part.fetchall() == [] for part in cursor.parts)


class TestAsyncStream:
    def test_chunks_reassemble_the_answer(self, db, server, heavy_access):
        expected = oracle_answer(VIEW, db, heavy_access)

        async def run():
            async with AsyncViewServer(server, max_workers=2) as front:
                chunks = []
                async for chunk in front.stream(
                    "V", heavy_access, chunk_size=2
                ):
                    assert len(chunk) <= 2
                    chunks.append(chunk)
                return chunks

        chunks = asyncio.run(run())
        assert [row for chunk in chunks for row in chunk] == expected

    def test_limit_and_resume_through_the_async_face(
        self, db, server, heavy_access
    ):
        expected = oracle_answer(VIEW, db, heavy_access)

        async def run():
            async with AsyncViewServer(server, max_workers=2) as front:
                head = []
                async for chunk in front.stream(
                    "V", heavy_access, chunk_size=3, limit=3
                ):
                    head.extend(chunk)
                tail = []
                async for chunk in front.stream(
                    AccessRequest(
                        view="V",
                        access=heavy_access,
                        start_after=head[-1],
                    )
                ):
                    tail.extend(chunk)
                return head, tail

        head, tail = asyncio.run(run())
        assert head == expected[:3]
        assert head + tail == expected

    def test_streams_over_a_sharded_backend(self, db, heavy_access):
        backend = ShardedViewServer(db, 3, SCATTER_KEY)
        backend.register(VIEW, tau=6.0, name="V")
        expected = oracle_answer(VIEW, db, heavy_access)

        async def run():
            async with AsyncViewServer(backend, max_workers=2) as front:
                rows = []
                async for chunk in front.stream(
                    "V", heavy_access, chunk_size=4
                ):
                    rows.extend(chunk)
                return rows

        assert asyncio.run(run()) == expected

    def test_rejects_bad_chunk_size(self, server, heavy_access):
        async def run():
            async with AsyncViewServer(server, max_workers=1) as front:
                async for _ in front.stream(
                    "V", heavy_access, chunk_size=0
                ):
                    pass

        with pytest.raises(ParameterError):
            asyncio.run(run())


class TestBackwardCompat:
    """The pre-cursor public API keeps exact result and shape parity."""

    def test_answer_matches_oracle_on_all_backends(self, db):
        plain = ViewServer(db)
        sharded = ShardedViewServer(db, 3, SHARD_KEY)
        for backend in (plain, sharded):
            backend.register(VIEW, tau=6.0, name="V")
        for access in oracle_accesses(VIEW, db, limit=6):
            expected = oracle_answer(VIEW, db, access)
            assert plain.answer("V", access) == expected
            assert sharded.answer("V", access) == expected

    def test_answer_batch_shape_is_unchanged(self, db, server):
        accesses = oracle_accesses(VIEW, db, limit=4)
        batch = accesses + [accesses[0]]  # one duplicate
        result = server.answer_batch("V", batch, measure=True)
        assert result.accesses == tuple(tuple(a) for a in batch)
        assert len(result.answers) == len(batch)
        assert result.unique_count == len(set(map(tuple, batch)))
        assert result.shared_count == 1
        # Duplicates share the representative's answer list object.
        assert result.answers[0] is result.answers[-1]
        assert set(result.request_stats) == set(map(tuple, accesses))
        for access in accesses:
            access = tuple(access)
            stats = result.request_stats[access]
            assert stats.outputs == len(oracle_answer(VIEW, db, access))
            assert stats.step_total >= stats.outputs
        unmeasured = server.answer_batch("V", batch, measure=False)
        assert unmeasured.request_stats == {}
        assert [list(r) for r in unmeasured.answers] == [
            list(r) for r in result.answers
        ]

    def test_serve_stream_report_shape_is_unchanged(self, db):
        fresh = ViewServer(db)
        fresh.register(VIEW, tau=6.0, name="V")
        accesses = oracle_accesses(VIEW, db, limit=6) * 2
        report = fresh.serve_stream("V", accesses, batch_size=4)
        assert report.requests == len(accesses)
        assert report.batches == len(accesses) // 4
        assert report.builds == 1
        assert report.outputs == sum(
            len(oracle_answer(VIEW, db, a)) for a in accesses
        )
        assert report.shared_requests == (
            report.requests - report.unique_requests
        )
        assert report.cache.misses == 1
        assert report.cache.hits == report.batches - 1
        assert report.max_step_gap > 0
        assert report.requests_per_second > 0

    def test_constructor_signatures_are_stable(self, db, tmp_path):
        plain = ViewServer(
            db,
            max_entries=4,
            max_cells=None,
            snapshot_dir=tmp_path / "snaps",
            cache_policy="cost",
            build_workers=None,
        )
        sharded = ShardedViewServer(
            db,
            2,
            SHARD_KEY,
            max_entries=4,
            cache_policy="lru",
        )
        front = AsyncViewServer(plain, max_workers=2, max_pending=4)
        front.close()
        sharded.close()
        plain.close()


class TestTopkRequestMix:
    def test_mix_is_seeded_and_limited(self, db):
        first = topk_requests(VIEW, db, 20, seed=7, limits=(1, 5), name="V")
        second = topk_requests(VIEW, db, 20, seed=7, limits=(1, 5), name="V")
        assert first == second
        assert {r.limit for r in first} <= {1, 5}
        assert all(r.view == "V" for r in first)

    def test_mix_round_trips_the_server(self, db, server):
        for request in topk_requests(
            VIEW, db, 12, seed=9, limits=(2, None), name="V"
        ):
            with server.open(request) as cursor:
                rows = cursor.fetchall()
            expected = oracle_answer(VIEW, db, request.access)
            if request.limit is not None:
                expected = expected[: request.limit]
            assert rows == expected

    def test_rejects_empty_or_negative_limits(self, db):
        with pytest.raises(ParameterError):
            topk_requests(VIEW, db, 4, limits=())
        with pytest.raises(ParameterError):
            topk_requests(VIEW, db, 4, limits=(3, -1))


class TestAtomicInvalidation:
    def test_invalidate_matching_sweeps_only_matches(self):
        cache = RepresentationCache(max_entries=8)
        for key in [("a", 1.0, 1), ("a", 2.0, 1), ("b", 1.0, 1)]:
            cache.get_or_build(key, lambda: _StubRepresentation())
        dropped = cache.invalidate_matching(lambda key: key[0] == "a")
        assert dropped == 2
        assert cache.keys() == (("b", 1.0, 1),)
        assert cache.invalidate_matching(lambda key: key[0] == "a") == 0

    def test_concurrent_builds_never_corrupt_the_sweep(self):
        cache = RepresentationCache(max_entries=64)
        stop = threading.Event()
        errors = []

        def builder(worker: int):
            i = 0
            while not stop.is_set():
                try:
                    cache.get_or_build(
                        ("hot", worker, i % 4),
                        lambda: _StubRepresentation(),
                    )
                except Exception as error:  # pragma: no cover
                    errors.append(error)
                i += 1

        threads = [
            threading.Thread(target=builder, args=(w,)) for w in range(3)
        ]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                cache.invalidate_matching(lambda key: key[0] == "hot")
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors
        # Accounting stayed exact: residual cells match residual entries.
        residual = sum(
            cache.cells_of(key) or 0 for key in cache.keys()
        )
        assert cache.total_cells == residual

    def test_view_server_invalidate_still_reports_drops(self, db):
        fresh = ViewServer(db)
        fresh.register(VIEW, tau=6.0, name="V")
        fresh.representation("V")
        fresh.representation("V", tau=12.0)
        assert fresh.invalidate("V") == 2
        assert fresh.invalidate("V") == 0


class _StubRepresentation:
    """Just enough surface for the cache: a space report and no stats."""

    class _Report:
        total_cells = 3
        base_tuples = 1

    def space_report(self):
        return self._Report()
