"""Kernel/fallback parity: the columnar kernel must be invisible.

Every enumeration entry point is run twice over the same built
structures — once routed through the compiled columnar layout
(``set_kernel_mode("on")``) and once forced onto the reference
tuple-at-a-time path (``"off"``) — and the streams must be identical
element for element: same rows, same order, same shared-scan event
interleaving. Fallback triggers (counters, stale dictionary versions,
dirty dynamic buffers, ``off`` mode) and both snapshot codec versions
are covered as well.
"""

import pickle
import zlib

import pytest

from oracle import oracle_accesses, oracle_answer
from repro.core import layout as layout_mod
from repro.core.decomposed import DecomposedRepresentation
from repro.core.dynamic import DynamicRepresentation
from repro.core.constant_delay import ConnexConstantDelayStructure
from repro.core.snapshot import (
    SNAPSHOT_MAGIC,
    SUPPORTED_VERSIONS,
    decode_snapshot,
    encode_snapshot,
    inspect_snapshot,
)
from repro.core.structure import CompressedRepresentation
from repro.joins.generic_join import JoinCounter
from repro.workloads.generators import (
    path_database,
    star_database,
    triangle_database,
)
from repro.workloads.queries import (
    path_view,
    star_view,
    triangle_view,
)

TAUS = (1.0, 4.0, 1000.0)


@pytest.fixture(autouse=True)
def _restore_mode():
    yield
    layout_mod.set_kernel_mode("auto")


def on_off(callable_returning_iterable):
    """Run the thunk under both routing modes; return (kernel, reference)."""
    layout_mod.set_kernel_mode("on")
    try:
        kernel_rows = list(callable_returning_iterable())
    finally:
        layout_mod.set_kernel_mode("off")
    try:
        reference_rows = list(callable_returning_iterable())
    finally:
        layout_mod.set_kernel_mode("auto")
    return kernel_rows, reference_rows


def views_under_test():
    yield triangle_view("bff"), triangle_database(16, 70, seed=7)
    yield triangle_view("fff"), triangle_database(14, 60, seed=8)
    yield triangle_view("bbf"), triangle_database(16, 70, seed=9)
    yield path_view(4), path_database(4, 40, 10, seed=10)
    yield star_view(3), star_database(3, 90, 12, seed=11)


class TestEntryPointParity:
    @pytest.mark.parametrize(
        "case", views_under_test(), ids=lambda c: str(c[0].query.head)
    )
    def test_enumerate(self, case):
        view, db = case
        for tau in TAUS:
            rep = CompressedRepresentation(view, db, tau=tau)
            assert rep.kernel_ready
            for access in oracle_accesses(view, db, limit=8):
                kernel_rows, reference_rows = on_off(
                    lambda: rep.enumerate(access)
                )
                assert kernel_rows == reference_rows, (tau, access)
                assert kernel_rows == oracle_answer(view, db, access)

    @pytest.mark.parametrize(
        "case", views_under_test(), ids=lambda c: str(c[0].query.head)
    )
    def test_enumerate_from_every_split(self, case):
        view, db = case
        rep = CompressedRepresentation(view, db, tau=4.0)
        for access in oracle_accesses(view, db, limit=4):
            rows = oracle_answer(view, db, access)
            # Resume at every delivered row, plus past-the-end.
            tokens = rows + [tuple(v + 1 for v in rows[-1])] if rows else []
            for token in tokens:
                kernel_rows, reference_rows = on_off(
                    lambda: rep.enumerate_from(access, token)
                )
                assert kernel_rows == reference_rows, (access, token)
                assert kernel_rows == [r for r in rows if not r < token]

    @pytest.mark.parametrize(
        "case", views_under_test(), ids=lambda c: str(c[0].query.head)
    )
    def test_enumerate_after_every_split(self, case):
        view, db = case
        rep = CompressedRepresentation(view, db, tau=4.0)
        for access in oracle_accesses(view, db, limit=4):
            rows = oracle_answer(view, db, access)
            for token in rows:
                kernel_rows, reference_rows = on_off(
                    lambda: rep.enumerate_after(access, token)
                )
                assert kernel_rows == reference_rows, (access, token)
                assert kernel_rows == [r for r in rows if r > token]

    def test_pagination_identity(self):
        view = triangle_view("bff")
        db = triangle_database(16, 70, seed=7)
        rep = CompressedRepresentation(view, db, tau=4.0)
        layout_mod.set_kernel_mode("on")
        access = next(
            a
            for a in oracle_accesses(view, db, limit=8)
            if len(oracle_answer(view, db, a)) >= 3
        )
        rows = list(rep.enumerate(access))
        for k in range(1, len(rows)):
            resumed = rows[:k] + list(rep.enumerate_after(access, rows[k - 1]))
            assert resumed == rows, k


class TestSharedScanParity:
    @pytest.fixture
    def scan_setup(self):
        view = triangle_view("bff")
        db = triangle_database(16, 80, seed=21)
        rep = CompressedRepresentation(view, db, tau=4.0)
        accesses = oracle_accesses(view, db, limit=6)
        return view, db, rep, accesses

    def test_group_events(self, scan_setup):
        _, _, rep, accesses = scan_setup
        # Duplicate lanes included: each slot keeps its own event stream.
        group = list(accesses) + [accesses[0]]
        kernel_events, reference_events = on_off(
            lambda: rep.shared_enumerate(group)
        )
        assert kernel_events == reference_events
        layout_mod.set_kernel_mode("off")
        for slot, access in enumerate(group):
            rows = [row for s, row in kernel_events if s == slot]
            assert rows == list(rep.enumerate(access)), slot

    def test_group_with_starts(self, scan_setup):
        view, db, rep, accesses = scan_setup
        starts = []
        for access in accesses:
            rows = oracle_answer(view, db, access)
            starts.append(rows[len(rows) // 2] if rows else None)
        kernel_events, reference_events = on_off(
            lambda: rep.shared_enumerate(accesses, starts=starts)
        )
        assert kernel_events == reference_events

    def test_alive_pruning(self, scan_setup):
        _, _, rep, accesses = scan_setup

        def pruned_stream():
            alive = [True] * len(accesses)
            seen = [0] * len(accesses)
            for slot, row in rep.shared_enumerate(accesses, alive=alive):
                yield slot, row
                seen[slot] += 1
                if seen[slot] >= 2:  # prune each slot after two rows
                    alive[slot] = False

        kernel_events, reference_events = on_off(pruned_stream)
        assert kernel_events == reference_events

    def test_counters_force_reference_for_the_whole_group(self, scan_setup):
        _, _, rep, accesses = scan_setup

        def counted():
            counters = [JoinCounter() for _ in accesses]
            counters[0] = None  # mixed group: one lane measured is enough
            counters[1] = JoinCounter()
            events = list(
                rep.shared_enumerate(accesses, counters=counters)
            )
            steps = tuple(
                c.steps if c is not None else None for c in counters
            )
            return [("events", tuple(events)), ("steps", steps)]

        kernel_side, reference_side = on_off(counted)
        assert kernel_side == reference_side


class TestOtherRepresentations:
    def test_decomposed(self):
        view = triangle_view("bff")
        db = triangle_database(16, 70, seed=31)
        rep = DecomposedRepresentation(view, db)
        assert rep.kernel_ready
        for access in oracle_accesses(view, db, limit=6):
            kernel_rows, reference_rows = on_off(
                lambda: sorted(rep.enumerate(access))
            )
            assert kernel_rows == reference_rows
            assert kernel_rows == oracle_answer(view, db, access)
            rows = reference_rows
            if rows:
                token = rows[len(rows) // 2]
                kernel_tail, reference_tail = on_off(
                    lambda: rep.enumerate_from(access, token)
                )
                assert kernel_tail == reference_tail

    def test_dynamic_clean_then_dirty(self):
        view = triangle_view("bbf")
        db = triangle_database(14, 50, seed=41)
        dynamic = DynamicRepresentation(
            view, db, tau=4.0, rebuild_fraction=float("inf")
        )
        accesses = oracle_accesses(view, db, limit=6)
        assert dynamic.kernel_ready  # clean: kernel serves
        for access in accesses:
            kernel_rows, reference_rows = on_off(
                lambda: dynamic.enumerate(access)
            )
            assert kernel_rows == reference_rows
        dynamic.insert("R", (0, 1))
        dynamic.insert("S", (1, 2))
        dynamic.insert("T", (2, 0))
        assert dynamic.is_dirty
        assert not dynamic.kernel_ready  # dirty buffers force the overlay
        updated = dynamic.current_database()
        for access in accesses:
            kernel_rows, reference_rows = on_off(
                lambda: dynamic.answer(access)
            )
            assert kernel_rows == reference_rows
            assert kernel_rows == oracle_answer(view, updated, access)
        dynamic.rebuild()
        assert dynamic.kernel_ready

    def test_constant_delay_bulk_walk(self):
        view = path_view(3)
        db = path_database(3, 60, 12, seed=51)
        structure = ConnexConstantDelayStructure(view, db)
        for access in oracle_accesses(view, db, limit=6):
            kernel_rows, reference_rows = on_off(
                lambda: structure.enumerate(access)
            )
            assert kernel_rows == reference_rows
            assert sorted(kernel_rows) == oracle_answer(view, db, access)


class TestFallbackTriggers:
    @pytest.fixture
    def rep(self):
        view = triangle_view("bff")
        db = triangle_database(16, 70, seed=61)
        return view, db, CompressedRepresentation(view, db, tau=4.0)

    def test_counter_requests_take_the_reference_path(self, rep):
        view, db, rep = rep
        access = oracle_accesses(view, db, limit=1)[0]

        def measured():
            counter = JoinCounter()
            rows = list(rep.enumerate(access, counter=counter))
            return [("rows", tuple(rows)), ("steps", counter.steps)]

        kernel_side, reference_side = on_off(measured)
        # Counters always pin the reference path, so the delay
        # accounting is mode-independent by construction.
        assert kernel_side == reference_side

    def test_stale_dictionary_version_falls_back(self, rep):
        view, db, rep = rep
        accesses = oracle_accesses(view, db, limit=6)
        expected = {a: list(rep.enumerate(a)) for a in accesses}
        # An in-place dictionary edit bumps the version; the compiled
        # layout pinned the old one and must stop serving.
        (node_id, access), bit = next(iter(rep.dictionary.items()))
        rep.dictionary.set(node_id, access, bit)  # same bit: answers keep
        assert not rep.kernel_ready
        layout_mod.set_kernel_mode("on")
        for access in accesses:
            assert list(rep.enumerate(access)) == expected[access]
        # Recompiling re-pins the current version and re-arms the kernel.
        rep.compile_layout()
        assert rep.kernel_ready
        for access in accesses:
            assert list(rep.enumerate(access)) == expected[access]

    def test_off_mode_disables_routing(self, rep):
        _, _, rep = rep
        layout_mod.set_kernel_mode("off")
        assert not rep.kernel_ready
        layout_mod.set_kernel_mode("on")
        assert rep.kernel_ready

    def test_mode_must_be_valid(self):
        with pytest.raises(ValueError, match="kernel mode"):
            layout_mod.set_kernel_mode("fast")
        assert layout_mod.get_kernel_mode() == "auto"


class TestPureFallbackPath:
    def test_parity_without_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_NO_NUMPY", "1")
        assert layout_mod.numpy_backend() is None
        view = triangle_view("bff")
        db = triangle_database(16, 80, seed=71)
        rep = CompressedRepresentation(view, db, tau=4.0)
        assert rep.kernel_ready
        for access in oracle_accesses(view, db, limit=8):
            kernel_rows, reference_rows = on_off(
                lambda: rep.enumerate(access)
            )
            assert kernel_rows == reference_rows
            assert kernel_rows == oracle_answer(view, db, access)


class TestSnapshotCodec:
    @pytest.fixture
    def built(self):
        view = triangle_view("bff")
        db = triangle_database(16, 70, seed=81)
        return view, db, CompressedRepresentation(view, db, tau=4.0)

    def test_v2_round_trip_ships_the_layout(self, built):
        view, db, rep = built
        blob = encode_snapshot(rep)
        header = inspect_snapshot(blob)
        assert header["version"] == 2
        assert rep.snapshot_state()["layout"] is not None
        restored = decode_snapshot(blob)
        assert restored.kernel_ready
        layout_mod.set_kernel_mode("on")
        for access in oracle_accesses(view, db, limit=6):
            assert list(restored.enumerate(access)) == list(
                rep.enumerate(access)
            )

    def test_v1_blob_loads_and_recompiles(self, built):
        view, db, rep = built
        from repro.core import snapshot as snap

        # Hand-craft a version-1 blob: same framing, no "layout" key in
        # the payload (v1 predates compiled layouts).
        state = rep.snapshot_state()
        state.pop("layout")
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        kind = snap.snapshot_kind(rep).encode("utf-8")
        fingerprint = snap._own_fingerprint(rep).encode("utf-8")
        blob = b"".join(
            (
                snap._HEADER_PREFIX.pack(SNAPSHOT_MAGIC, 1),
                snap._U16.pack(len(kind)),
                kind,
                snap._U16.pack(len(fingerprint)),
                fingerprint,
                snap._TRAILER.pack(zlib.crc32(payload), len(payload)),
                payload,
            )
        )
        assert inspect_snapshot(blob)["version"] == 1
        assert 1 in SUPPORTED_VERSIONS
        restored = decode_snapshot(blob)
        assert restored.kernel_ready  # loader recompiled the layout
        layout_mod.set_kernel_mode("on")
        for access in oracle_accesses(view, db, limit=6):
            assert list(restored.enumerate(access)) == oracle_answer(
                view, db, access
            )

    def test_unsupported_version_is_rejected(self, built):
        _, _, rep = built
        blob = bytearray(encode_snapshot(rep))
        blob[4:6] = (99).to_bytes(2, "big")
        from repro.exceptions import SnapshotError

        with pytest.raises(SnapshotError, match="version 99"):
            inspect_snapshot(bytes(blob))
