"""The cost function T (Section 4.2): Example 13's exact numbers,
Proposition 5, and structural properties (Lemma 2 sub-additivity)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.context import ViewContext
from repro.core.cost import CostModel
from repro.core.intervals import FBox, FInterval, ScalarInterval
from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.joins.hash_join import evaluate_by_hash_join
from repro.query.parser import parse_view
from repro.workloads.queries import running_example_database, running_example_view

UNIT_WEIGHTS = {0: 1.0, 1: 1.0, 2: 1.0}


@pytest.fixture
def model():
    ctx = ViewContext(running_example_view(), running_example_database())
    return CostModel(ctx, UNIT_WEIGHTS, alpha=2.0)


class TestExample13:
    def test_root_interval_cost(self, model):
        """T(I_r) = √36 + √8 + √3 + 0 ≈ 10.56."""
        root = FInterval.full(model.ctx.space)
        expected = math.sqrt(36) + math.sqrt(8) + math.sqrt(3)
        assert model.interval_cost(root) == pytest.approx(expected, abs=1e-9)

    def test_heavy_valuation_cost(self, model):
        """T(v_b, I_r) = √2 + 2 + 1 ≈ 4.414 for v_b = (1,1,1)."""
        root = FInterval.full(model.ctx.space)
        expected = math.sqrt(2) + 2.0 + 1.0
        assert model.access_cost(root, (1, 1, 1)) == pytest.approx(
            expected, abs=1e-9
        )

    def test_tau4_heaviness(self, model):
        """Example 13: with τ = 4 the pair (v_b, I_r) is heavy."""
        root = FInterval.full(model.ctx.space)
        assert model.is_heavy(root, (1, 1, 1), 4.0)
        assert not model.is_heavy(root, (1, 1, 1), 5.0)

    def test_per_box_costs(self, model):
        """The four box costs of Example 13: √36, √8, √3, 0."""
        space = model.ctx.space
        root = FInterval.full(space)
        costs = [model.box_cost(box) for box in model.boxes_of(root)]
        assert costs == pytest.approx(
            [6.0, math.sqrt(8), math.sqrt(3), 0.0], abs=1e-9
        )

    def test_example14_left_unit_cost(self, model):
        """T([⟨1,1,1⟩,⟨1,1,1⟩]) = √(3·1·2) ≈ 2.449."""
        unit = FInterval((0, 0, 0), (0, 0, 0))
        assert model.interval_cost(unit) == pytest.approx(
            math.sqrt(6), abs=1e-9
        )

    def test_example14_extended_left_cost(self, model):
        """T([⟨1,1,1⟩,⟨1,1,2⟩]) = √36 = 6."""
        interval = FInterval((0, 0, 0), (0, 0, 1))
        assert model.interval_cost(interval) == pytest.approx(6.0, abs=1e-9)


class TestCostProperties:
    def test_empty_box_costs_zero(self, model):
        space = model.ctx.space
        box = FBox.canonical(space, (0,), ScalarInterval(1, 0))
        assert model.box_cost(box) == 0.0

    def test_zero_weight_contributes_factor_one(self):
        ctx = ViewContext(running_example_view(), running_example_database())
        m = CostModel(ctx, {0: 1.0, 1: 1.0, 2: 0.0}, alpha=1.0)
        root = FInterval.full(ctx.space)
        # Only R1, R2 contribute; counts match |R1 ⋉ B|·|R2 ⋉ B|.
        assert m.interval_cost(root) > 0

    def test_alpha_must_be_at_least_one(self):
        ctx = ViewContext(running_example_view(), running_example_database())
        from repro.exceptions import ParameterError

        with pytest.raises(ParameterError):
            CostModel(ctx, UNIT_WEIGHTS, alpha=0.5)

    def test_infinite_alpha_means_exponents_zero(self):
        ctx = ViewContext(running_example_view(), running_example_database())
        m = CostModel(ctx, UNIT_WEIGHTS, alpha=math.inf)
        root = FInterval.full(ctx.space)
        # All exponents are 0: every non-empty box costs exactly 1.
        boxes = [b for b in m.boxes_of(root)]
        assert m.interval_cost(root) == pytest.approx(len(boxes))

    def test_access_cost_at_most_unrestricted(self, model):
        """T(v_b, I) ≤ T(I): restriction never increases counts."""
        root = FInterval.full(model.ctx.space)
        unrestricted = model.interval_cost(root)
        for vb in [(1, 1, 1), (1, 2, 1), (2, 2, 2), (3, 1, 2)]:
            assert model.access_cost(root, vb) <= unrestricted + 1e-9

    def test_subinterval_cost_not_larger(self, model):
        """Lemma 2 consequence: T on a sub-interval never exceeds T(I)."""
        space = model.ctx.space
        root = FInterval.full(space)
        total = model.interval_cost(root)
        sub = FInterval((0, 0, 0), (1, 0, 1))
        assert model.interval_cost(sub) <= total + 1e-9


class TestProposition5:
    """(⋈ R_F) ⋉ B = ⋈ (R_F ⋉ B) — joins commute with f-box restriction."""

    @given(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 2)),
            min_size=1,
            max_size=15,
        ),
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 2)),
            min_size=1,
            max_size=15,
        ),
        st.integers(0, 2),
        st.integers(0, 2),
    )
    @settings(max_examples=60, deadline=None)
    def test_box_restriction_commutes_with_join(self, r1, r2, lo, hi):
        view = parse_view("Q^ff(x, y) = R(x, y), S(x, y)")
        db = Database([Relation("R", 2, r1), Relation("S", 2, r2)])
        full = evaluate_by_hash_join(view.query, db)
        # Box: x in [lo, hi] (value space), y unrestricted.
        lo_v, hi_v = min(lo, hi), max(lo, hi)
        restricted_join = {
            t for t in full if lo_v <= t[0] <= hi_v
        }
        restrict = lambda rel: Relation(
            rel.name, 2, [t for t in rel if lo_v <= t[0] <= hi_v]
        )
        db2 = Database([restrict(db["R"]), restrict(db["S"])])
        join_restricted = evaluate_by_hash_join(view.query, db2)
        assert restricted_join == join_restricted
