"""The CI pipeline is data: validate the workflow, Makefile, and smoke gate.

actionlint is not vendored, so this is the repo's own schema check: the
workflow must parse, expose the four pipeline stages as distinct jobs
(lint → test matrix → bench-smoke), run the same make targets
contributors run, and upload the benchmark report artifact. A drifted
Makefile or a renamed target fails here, not on the first broken push.
"""

import json
import re
import subprocess
import sys
from pathlib import Path

import pytest
import yaml

from check_smoke_report import check as check_smoke_report

REPO = Path(__file__).resolve().parent.parent
WORKFLOW = REPO / ".github" / "workflows" / "ci.yml"
MAKEFILE = REPO / "Makefile"


@pytest.fixture(scope="module")
def workflow():
    data = yaml.safe_load(WORKFLOW.read_text())
    assert isinstance(data, dict)
    return data


@pytest.fixture(scope="module")
def make_targets():
    targets = set()
    for line in MAKEFILE.read_text().splitlines():
        match = re.match(r"^([A-Za-z][\w-]*):", line)
        if match:
            targets.add(match.group(1))
    return targets


class TestWorkflowSchema:
    def test_triggers_on_push_and_pull_request(self, workflow):
        # YAML 1.1 parses the bare key `on` as boolean True.
        triggers = workflow.get("on", workflow.get(True))
        assert triggers is not None, "workflow has no `on:` block"
        assert "push" in triggers
        assert "pull_request" in triggers

    def test_has_the_four_distinct_jobs(self, workflow):
        jobs = workflow["jobs"]
        assert set(jobs) == {"lint", "collect", "test", "bench-smoke"}
        collect_lines = [
            step.get("run", "") for step in jobs["collect"]["steps"]
        ]
        assert any("make collect" in line for line in collect_lines)
        test_lines = [step.get("run", "") for step in jobs["test"]["steps"]]
        assert any("make test" in line for line in test_lines)

    def test_every_job_is_runnable(self, workflow):
        for name, job in workflow["jobs"].items():
            assert "runs-on" in job, f"job {name} has no runner"
            steps = job.get("steps")
            assert steps, f"job {name} has no steps"
            for step in steps:
                assert "uses" in step or "run" in step, (
                    f"job {name} has a step with neither uses nor run"
                )

    def test_pipeline_ordering(self, workflow):
        jobs = workflow["jobs"]
        assert jobs["collect"]["needs"] == "lint"
        assert jobs["test"]["needs"] == "collect"
        assert jobs["bench-smoke"]["needs"] == "test"

    def test_python_version_matrix(self, workflow):
        matrix = workflow["jobs"]["test"]["strategy"]["matrix"]
        versions = [str(v) for v in matrix["python-version"]]
        assert versions == ["3.10", "3.11", "3.12"]

    def test_lint_job_runs_make_lint(self, workflow):
        run_lines = [
            step.get("run", "")
            for step in workflow["jobs"]["lint"]["steps"]
        ]
        assert any("make lint" in line for line in run_lines)
        assert any("ruff" in line for line in run_lines)

    def test_bench_smoke_uploads_report_artifact(self, workflow):
        steps = workflow["jobs"]["bench-smoke"]["steps"]
        assert any(
            "make bench-smoke" in step.get("run", "") for step in steps
        )
        uploads = [
            step
            for step in steps
            if "upload-artifact" in step.get("uses", "")
        ]
        assert len(uploads) == 1
        assert uploads[0]["with"]["path"] == ".bench/smoke.json"

    def test_bench_smoke_job_runs_the_warm_start_gate(self, workflow):
        # The warm-start benchmark is a hard gate: a restarted server
        # that rebuilds instead of decoding snapshots fails CI.
        run_lines = [
            step.get("run", "")
            for step in workflow["jobs"]["bench-smoke"]["steps"]
        ]
        assert any("make bench-warm" in line for line in run_lines)

    def test_bench_smoke_job_runs_the_streaming_gate(self, workflow):
        # Top-k cursor serving is a hard gate too: if limit=k cursors
        # stop beating full materialization >= 5x, CI fails.
        run_lines = [
            step.get("run", "")
            for step in workflow["jobs"]["bench-smoke"]["steps"]
        ]
        assert any("make bench-stream" in line for line in run_lines)

    def test_every_setup_python_step_caches_pip(self, workflow):
        for name, job in workflow["jobs"].items():
            setups = [
                step
                for step in job["steps"]
                if "setup-python" in step.get("uses", "")
            ]
            assert setups, f"job {name} never sets up python"
            for step in setups:
                config = step.get("with", {})
                assert config.get("cache") == "pip", (
                    f"job {name}: setup-python step without pip caching"
                )
                assert config.get("cache-dependency-path") == (
                    "requirements-dev.txt"
                ), f"job {name}: pip cache not keyed on requirements-dev.txt"


class TestMakefileContract:
    def test_targets_the_workflow_relies_on_exist(self, make_targets):
        assert {
            "lint",
            "collect",
            "test",
            "bench-smoke",
            "bench-warm",
            "bench-stream",
        } <= make_targets

    def test_bench_smoke_writes_and_checks_the_report(self):
        text = MAKEFILE.read_text()
        assert "--benchmark-json" in text
        assert "check_smoke_report.py" in text

    def test_bench_warm_runs_the_snapshot_benchmark(self):
        # `make bench-warm` and the CI step must keep pointing at the
        # benchmark whose assertions actually gate warm-start behavior.
        text = MAKEFILE.read_text()
        target = text[text.index("bench-warm:"):]
        target = target[: target.index("\n\n")]
        assert "bench_snapshot_warmstart.py" in target
        assert "REPRO_BENCH_SMOKE=1" in target

    def test_bench_stream_runs_the_streaming_benchmark(self):
        # `make bench-stream` and the CI step must keep pointing at the
        # benchmark whose assertions gate top-k cursor serving.
        text = MAKEFILE.read_text()
        target = text[text.index("bench-stream:"):]
        target = target[: target.index("\n\n")]
        assert "bench_streaming_topk.py" in target
        assert "REPRO_BENCH_SMOKE=1" in target

    def test_ruff_is_configured(self):
        pyproject = (REPO / "pyproject.toml").read_text()
        assert "[tool.ruff]" in pyproject
        assert "[tool.ruff.format]" in pyproject


class TestSmokeReportGate:
    def test_accepts_a_healthy_report(self, tmp_path):
        report = tmp_path / "smoke.json"
        report.write_text(
            json.dumps(
                {
                    "benchmarks": [
                        {"name": "test_a", "stats": {"mean": 0.1}},
                        {"name": "test_b", "stats": {"mean": 0.2}},
                    ]
                }
            )
        )
        assert check_smoke_report(str(report), 2) == 0

    def test_rejects_missing_empty_and_errored_reports(self, tmp_path):
        assert check_smoke_report(str(tmp_path / "absent.json")) == 1
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"benchmarks": []}))
        assert check_smoke_report(str(empty)) == 1
        errored = tmp_path / "errored.json"
        errored.write_text(
            json.dumps({"benchmarks": [{"name": "test_a", "stats": {}}]})
        )
        assert check_smoke_report(str(errored)) == 1

    def test_gate_runs_as_a_script(self, tmp_path):
        report = tmp_path / "smoke.json"
        report.write_text(
            json.dumps({"benchmarks": [{"name": "t", "stats": {"mean": 1}}]})
        )
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO / "benchmarks" / "check_smoke_report.py"),
                str(report),
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
