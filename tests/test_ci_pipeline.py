"""The CI pipeline is data: validate the workflow, Makefile, and smoke gate.

actionlint is not vendored, so this is the repo's own schema check: the
workflow must parse, expose the four pipeline stages as distinct jobs
(lint → test matrix → bench-smoke), run the same make targets
contributors run, and upload the benchmark report artifact. A drifted
Makefile or a renamed target fails here, not on the first broken push.
"""

import json
import re
import subprocess
import sys
from pathlib import Path

import pytest
import yaml

from check_smoke_report import check as check_smoke_report
from check_trend import check as check_trend

REPO = Path(__file__).resolve().parent.parent
WORKFLOW = REPO / ".github" / "workflows" / "ci.yml"
MAKEFILE = REPO / "Makefile"


@pytest.fixture(scope="module")
def workflow():
    data = yaml.safe_load(WORKFLOW.read_text())
    assert isinstance(data, dict)
    return data


@pytest.fixture(scope="module")
def make_targets():
    targets = set()
    for line in MAKEFILE.read_text().splitlines():
        match = re.match(r"^([A-Za-z][\w-]*):", line)
        if match:
            targets.add(match.group(1))
    return targets


class TestWorkflowSchema:
    def test_triggers_on_push_and_pull_request(self, workflow):
        # YAML 1.1 parses the bare key `on` as boolean True.
        triggers = workflow.get("on", workflow.get(True))
        assert triggers is not None, "workflow has no `on:` block"
        assert "push" in triggers
        assert "pull_request" in triggers

    def test_has_the_five_distinct_jobs(self, workflow):
        jobs = workflow["jobs"]
        assert set(jobs) == {
            "lint",
            "collect",
            "test",
            "lock-order",
            "bench-smoke",
        }
        collect_lines = [
            step.get("run", "") for step in jobs["collect"]["steps"]
        ]
        assert any("make collect" in line for line in collect_lines)
        test_lines = [step.get("run", "") for step in jobs["test"]["steps"]]
        assert any("make test" in line for line in test_lines)

    def test_every_job_is_runnable(self, workflow):
        for name, job in workflow["jobs"].items():
            assert "runs-on" in job, f"job {name} has no runner"
            steps = job.get("steps")
            assert steps, f"job {name} has no steps"
            for step in steps:
                assert "uses" in step or "run" in step, (
                    f"job {name} has a step with neither uses nor run"
                )

    def test_pipeline_ordering(self, workflow):
        jobs = workflow["jobs"]
        assert jobs["collect"]["needs"] == "lint"
        assert jobs["test"]["needs"] == "collect"
        # The instrumented leg branches off collect in parallel with the
        # matrix — it re-runs hammer tests, not the whole suite.
        assert jobs["lock-order"]["needs"] == "collect"
        assert jobs["bench-smoke"]["needs"] == "test"

    def test_python_version_matrix(self, workflow):
        matrix = workflow["jobs"]["test"]["strategy"]["matrix"]
        versions = [str(v) for v in matrix["python-version"]]
        assert versions == ["3.10", "3.11", "3.12"]

    def test_lint_job_runs_make_lint(self, workflow):
        run_lines = [
            step.get("run", "")
            for step in workflow["jobs"]["lint"]["steps"]
        ]
        assert any("make lint" in line for line in run_lines)
        assert any("ruff" in line for line in run_lines)

    def test_bench_smoke_uploads_report_artifacts(self, workflow):
        steps = workflow["jobs"]["bench-smoke"]["steps"]
        assert any(
            "make bench-smoke" in step.get("run", "") for step in steps
        )
        uploads = [
            step
            for step in steps
            if "upload-artifact" in step.get("uses", "")
        ]
        # Two artifacts: the smoke report and the perf trajectory.
        assert len(uploads) == 2
        paths = {step["with"]["path"] for step in uploads}
        assert paths == {".bench/smoke.json", ".bench/trajectory.json"}
        names = {step["with"]["name"] for step in uploads}
        assert names == {"bench-smoke-report", "bench-trajectory"}

    def test_bench_smoke_job_runs_the_warm_start_gate(self, workflow):
        # The warm-start benchmark is a hard gate: a restarted server
        # that rebuilds instead of decoding snapshots fails CI.
        run_lines = [
            step.get("run", "")
            for step in workflow["jobs"]["bench-smoke"]["steps"]
        ]
        assert any("make bench-warm" in line for line in run_lines)

    def test_bench_smoke_job_runs_the_streaming_gate(self, workflow):
        # Top-k cursor serving is a hard gate too: if limit=k cursors
        # stop beating full materialization >= 5x, CI fails.
        run_lines = [
            step.get("run", "")
            for step in workflow["jobs"]["bench-smoke"]["steps"]
        ]
        assert any("make bench-stream" in line for line in run_lines)

    def test_bench_smoke_job_runs_the_shared_scan_gate(self, workflow):
        # Shared-scan batching is a hard gate: if open_batch stops
        # beating request-at-a-time cursors >= 3x on the prefix-sharing
        # workload, CI fails.
        run_lines = [
            step.get("run", "")
            for step in workflow["jobs"]["bench-smoke"]["steps"]
        ]
        assert any("make bench-batch" in line for line in run_lines)

    def test_bench_smoke_job_runs_the_resharding_gate(self, workflow):
        # The elastic-split benchmark is a hard gate: if splitting one
        # hot shard stops beating a full reshard, CI fails.
        run_lines = [
            step.get("run", "")
            for step in workflow["jobs"]["bench-smoke"]["steps"]
        ]
        assert any("make bench-reshard" in line for line in run_lines)

    def test_bench_smoke_job_runs_the_adaptive_tuning_gate(self, workflow):
        # The closed-loop gate: if the AdaptiveTuner stops beating the
        # static τ it started from on the skew-shifting stream, CI fails.
        run_lines = [
            step.get("run", "")
            for step in workflow["jobs"]["bench-smoke"]["steps"]
        ]
        assert any("make bench-adapt" in line for line in run_lines)

    def test_bench_smoke_job_runs_the_columnar_kernel_gate(self, workflow):
        # The columnar-kernel benchmark is a hard gate: if the compiled
        # layout path stops beating tuple-at-a-time enumeration >= 3x on
        # the mixed serving workload, CI fails.
        run_lines = [
            step.get("run", "")
            for step in workflow["jobs"]["bench-smoke"]["steps"]
        ]
        assert any("make bench-kernel" in line for line in run_lines)

    def test_test_matrix_has_a_pure_kernel_leg(self, workflow):
        # One matrix leg must run the whole suite with the kernel's
        # numpy backend disabled, proving the optional extra really is
        # optional (parity tests included).
        job = workflow["jobs"]["test"]
        matrix = job["strategy"]["matrix"]
        assert matrix.get("kernel") == ["numpy"]
        includes = matrix.get("include", [])
        assert any(
            entry.get("kernel") == "pure" for entry in includes
        ), "no pure-kernel matrix leg"
        test_steps = [
            step for step in job["steps"] if "make test" in step.get("run", "")
        ]
        assert test_steps, "test job never runs make test"
        env = test_steps[0].get("env", {})
        assert "REPRO_KERNEL_NO_NUMPY" in env, (
            "make test step does not thread REPRO_KERNEL_NO_NUMPY"
        )

    def test_lint_job_runs_the_docs_link_check(self, workflow):
        # Broken relative links in README/docs fail the cheapest job,
        # before any test matrix spins up.
        run_lines = [
            step.get("run", "")
            for step in workflow["jobs"]["lint"]["steps"]
        ]
        assert any("make docs-check" in line for line in run_lines)

    def test_lint_job_runs_the_deep_static_analysis(self, workflow):
        # The repo-specific rules (lock discipline, restart stability,
        # exception hygiene, shared aliasing, parity surface) gate the
        # same cheap job as ruff.
        run_lines = [
            step.get("run", "")
            for step in workflow["jobs"]["lint"]["steps"]
        ]
        assert any("make lint-deep" in line for line in run_lines)

    def test_lock_order_job_runs_the_instrumented_leg(self, workflow):
        # The dynamic deadlock detector: hammer tests re-run with every
        # engine lock wrapped, failing on acquisition-graph cycles.
        run_lines = [
            step.get("run", "")
            for step in workflow["jobs"]["lock-order"]["steps"]
        ]
        assert any("make test-lock-order" in line for line in run_lines)

    def test_bench_smoke_job_runs_the_dynamic_serving_gate(self, workflow):
        # The dynamic-serving benchmark is a hard gate: if delta-aware
        # serving stops beating rebuild-per-update >= 2x on the mixed
        # update+query stream, CI fails.
        run_lines = [
            step.get("run", "")
            for step in workflow["jobs"]["bench-smoke"]["steps"]
        ]
        assert any("make bench-dynamic" in line for line in run_lines)

    def test_bench_smoke_job_runs_the_trajectory_gate(self, workflow):
        # The trajectory gate runs after every speedup gate recorded its
        # measurement, folding them into the uploaded artifact.
        run_lines = [
            step.get("run", "")
            for step in workflow["jobs"]["bench-smoke"]["steps"]
        ]
        trend = [
            i for i, line in enumerate(run_lines) if "make bench-trend" in line
        ]
        assert trend, "bench-smoke job never runs make bench-trend"
        gates = [
            i
            for i, line in enumerate(run_lines)
            if re.search(
                r"make bench-(smoke|warm|stream|batch|reshard|adapt|kernel"
                r"|dynamic)\b",
                line,
            )
        ]
        assert gates and max(gates) < trend[0], (
            "bench-trend must run after every recording gate"
        )

    def test_workflow_cancels_superseded_runs(self, workflow):
        # A push to the same ref must cancel the stale run instead of
        # queueing behind it.
        concurrency = workflow.get("concurrency")
        assert isinstance(concurrency, dict), "no top-level concurrency block"
        group = str(concurrency.get("group", ""))
        assert "github.ref" in group
        # Main pushes group by run id so every main commit keeps its
        # verdict (and its trajectory artifact) instead of being
        # cancelled by the next merge.
        assert "github.run_id" in group
        assert concurrency.get("cancel-in-progress") is True

    def test_every_job_has_a_timeout(self, workflow):
        # A hung benchmark or a wedged pip must not hold a runner for the
        # default six hours.
        for name, job in workflow["jobs"].items():
            minutes = job.get("timeout-minutes")
            assert isinstance(minutes, int) and 0 < minutes <= 60, (
                f"job {name} has no sane timeout-minutes"
            )

    def test_every_setup_python_step_caches_pip(self, workflow):
        for name, job in workflow["jobs"].items():
            setups = [
                step
                for step in job["steps"]
                if "setup-python" in step.get("uses", "")
            ]
            assert setups, f"job {name} never sets up python"
            for step in setups:
                config = step.get("with", {})
                assert config.get("cache") == "pip", (
                    f"job {name}: setup-python step without pip caching"
                )
                assert config.get("cache-dependency-path") == (
                    "requirements-dev.txt"
                ), f"job {name}: pip cache not keyed on requirements-dev.txt"


class TestMakefileContract:
    def test_targets_the_workflow_relies_on_exist(self, make_targets):
        assert {
            "lint",
            "collect",
            "test",
            "bench-smoke",
            "bench-warm",
            "bench-stream",
        } <= make_targets

    def test_bench_smoke_writes_and_checks_the_report(self):
        text = MAKEFILE.read_text()
        assert "--benchmark-json" in text
        assert "check_smoke_report.py" in text

    def test_bench_warm_runs_the_snapshot_benchmark(self):
        # `make bench-warm` and the CI step must keep pointing at the
        # benchmark whose assertions actually gate warm-start behavior.
        text = MAKEFILE.read_text()
        target = text[text.index("bench-warm:"):]
        target = target[: target.index("\n\n")]
        assert "bench_snapshot_warmstart.py" in target
        assert "REPRO_BENCH_SMOKE=1" in target

    def test_bench_stream_runs_the_streaming_benchmark(self):
        # `make bench-stream` and the CI step must keep pointing at the
        # benchmark whose assertions gate top-k cursor serving.
        text = MAKEFILE.read_text()
        target = text[text.index("bench-stream:"):]
        target = target[: target.index("\n\n")]
        assert "bench_streaming_topk.py" in target
        assert "REPRO_BENCH_SMOKE=1" in target

    def test_targets_the_new_gates_rely_on_exist(self, make_targets):
        assert {
            "bench-batch",
            "bench-reshard",
            "bench-trend",
            "bench-adapt",
            "bench-kernel",
            "bench-dynamic",
            "docs-check",
            "lint-deep",
            "test-lock-order",
        } <= make_targets

    def test_bench_batch_runs_the_shared_scan_benchmark(self):
        text = MAKEFILE.read_text()
        target = text[text.index("bench-batch:"):]
        target = target[: target.index("\n\n")]
        assert "bench_shared_scan.py" in target
        assert "REPRO_BENCH_SMOKE=1" in target

    def test_bench_reshard_runs_the_resharding_benchmark(self):
        text = MAKEFILE.read_text()
        target = text[text.index("bench-reshard:"):]
        target = target[: target.index("\n\n")]
        assert "bench_resharding.py" in target
        assert "REPRO_BENCH_SMOKE=1" in target

    def test_bench_trend_runs_the_trajectory_checker(self):
        # The trend target must keep pointing at the checker and demand
        # all nine gates' records, or a silently skipped gate passes CI.
        text = MAKEFILE.read_text()
        target = text[text.index("bench-trend:"):]
        target = target[: target.index("\n\n")]
        assert "check_trend.py" in target
        assert re.search(r"GATE_COUNT\s*\?=\s*9\b", text)

    def test_bench_adapt_runs_the_adaptive_tuning_benchmark(self):
        text = MAKEFILE.read_text()
        target = text[text.index("bench-adapt:"):]
        target = target[: target.index("\n\n")]
        assert "bench_adaptive_tuning.py" in target
        assert "REPRO_BENCH_SMOKE=1" in target

    def test_bench_kernel_runs_the_columnar_kernel_benchmark(self):
        text = MAKEFILE.read_text()
        target = text[text.index("bench-kernel:"):]
        target = target[: target.index("\n\n")]
        assert "bench_columnar_kernel.py" in target
        assert "REPRO_BENCH_SMOKE=1" in target

    def test_bench_dynamic_runs_the_dynamic_serving_benchmark(self):
        text = MAKEFILE.read_text()
        target = text[text.index("bench-dynamic:"):]
        target = target[: target.index("\n\n")]
        assert "bench_dynamic_serving.py" in target
        assert "REPRO_BENCH_SMOKE=1" in target

    def test_docs_check_runs_the_link_checker(self):
        text = MAKEFILE.read_text()
        target = text[text.index("docs-check:"):]
        target = target[: target.index("\n\n")]
        assert "check_docs_links.py" in target

    def test_docs_check_runs_the_metric_inventory_checker(self):
        # Metric-name drift between code and docs/OPERATIONS.md fails
        # the same gate as broken links.
        text = MAKEFILE.read_text()
        target = text[text.index("docs-check:"):]
        target = target[: target.index("\n\n")]
        assert "check_metric_docs.py" in target

    def test_lint_deep_runs_the_analysis_module(self):
        text = MAKEFILE.read_text()
        target = text[text.index("lint-deep:"):]
        target = target[: target.index("\n\n")]
        assert "-m repro.analysis" in target
        assert "src/repro" in target

    def test_lock_order_target_gates_on_the_env_flag(self):
        # REPRO_LOCK_ORDER=1 is what arms the conftest fixture; the
        # target must set it and include the concurrency hammer files
        # plus the detector's own suite.
        text = MAKEFILE.read_text()
        target = text[text.index("test-lock-order:"):]
        target = target[: target.index("\n\n")]
        assert "REPRO_LOCK_ORDER=1" in target
        for hammer in (
            "test_engine.py",
            "test_async_engine.py",
            "test_sharding.py",
            "test_elastic.py",
            "test_parallel_builds.py",
            "test_telemetry.py",
            "test_lock_order.py",
        ):
            assert hammer in target

    def test_ruff_is_configured(self):
        pyproject = (REPO / "pyproject.toml").read_text()
        assert "[tool.ruff]" in pyproject
        assert "[tool.ruff.format]" in pyproject


class TestSmokeReportGate:
    def test_accepts_a_healthy_report(self, tmp_path):
        report = tmp_path / "smoke.json"
        report.write_text(
            json.dumps(
                {
                    "benchmarks": [
                        {"name": "test_a", "stats": {"mean": 0.1}},
                        {"name": "test_b", "stats": {"mean": 0.2}},
                    ]
                }
            )
        )
        assert check_smoke_report(str(report), 2) == 0

    def test_rejects_missing_empty_and_errored_reports(self, tmp_path):
        assert check_smoke_report(str(tmp_path / "absent.json")) == 1
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"benchmarks": []}))
        assert check_smoke_report(str(empty)) == 1
        errored = tmp_path / "errored.json"
        errored.write_text(
            json.dumps({"benchmarks": [{"name": "test_a", "stats": {}}]})
        )
        assert check_smoke_report(str(errored)) == 1

    def test_gate_runs_as_a_script(self, tmp_path):
        report = tmp_path / "smoke.json"
        report.write_text(
            json.dumps({"benchmarks": [{"name": "t", "stats": {"mean": 1}}]})
        )
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO / "benchmarks" / "check_smoke_report.py"),
                str(report),
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


def _write_gate(bench_dir, gate, speedup, threshold, **extra):
    bench_dir.mkdir(parents=True, exist_ok=True)
    payload = {"gate": gate, "speedup": speedup, "threshold": threshold}
    payload.update(extra)
    (bench_dir / f"gate-{gate}.json").write_text(json.dumps(payload))


class TestTrajectoryGate:
    """The perf-trajectory artifact: schema pinned, floors enforced."""

    GATES = (
        ("engine-cache", 12.0, 5.0),
        ("async-sharded", 3.1, 0.0),
        ("warm-start", 18.0, 5.0),
        ("streaming-topk", 40.0, 5.0),
        ("shared-scan-batch", 4.0, 3.0),
        ("resharding", 1.9, 1.3),
        ("adaptive-tuning", 1.9, 1.2),
        ("columnar-kernel", 4.0, 3.0),
        ("dynamic-serving", 8.0, 2.0),
    )

    def _write_all(self, bench_dir):
        for gate, speedup, threshold in self.GATES:
            _write_gate(bench_dir, gate, speedup, threshold, requests=7)

    def test_accepts_gates_above_their_floors_and_pins_the_schema(
        self, tmp_path
    ):
        bench = tmp_path / "bench"
        out = tmp_path / "trajectory.json"
        self._write_all(bench)
        assert check_trend(str(bench), str(out), 9) == 0
        trajectory = json.loads(out.read_text())
        # The schema CI consumers (and future PRs' diffs) rely on.
        assert set(trajectory) == {"schema", "commit", "gates"}
        assert trajectory["schema"] == 1
        assert isinstance(trajectory["commit"], str) and trajectory["commit"]
        gates = trajectory["gates"]
        assert [g["gate"] for g in gates] == sorted(
            name for name, _, _ in self.GATES
        )
        for record in gates:
            assert {"gate", "speedup", "threshold", "floor"} <= set(record)
            assert isinstance(record["speedup"], (int, float))
            assert isinstance(record["threshold"], (int, float))
            assert isinstance(record["floor"], (int, float))
        # Extra per-gate facts ride along untouched.
        assert all(record.get("requests") == 7 for record in gates)

    def test_fails_when_a_gate_drops_below_its_floor(self, tmp_path):
        bench = tmp_path / "bench"
        out = tmp_path / "trajectory.json"
        self._write_all(bench)
        _write_gate(bench, "shared-scan-batch", 2.4, 3.0)
        assert check_trend(str(bench), str(out), 9) == 1
        # The artifact is still written — it IS the diagnosis.
        assert json.loads(out.read_text())["gates"]

    def test_fails_when_a_gate_is_missing_or_malformed(self, tmp_path):
        bench = tmp_path / "bench"
        out = tmp_path / "trajectory.json"
        self._write_all(bench)
        (bench / "gate-warm-start.json").unlink()
        assert check_trend(str(bench), str(out), 9) == 1
        self._write_all(bench)
        (bench / "gate-warm-start.json").write_text('{"speedup": 1.0}')
        assert check_trend(str(bench), str(out), 9) == 1
        (bench / "gate-warm-start.json").write_text("not json")
        assert check_trend(str(bench), str(out), 9) == 1

    def test_fresh_checkout_seeds_floors_then_enforces_them(self, tmp_path):
        # First run, no prior trajectory: floors seed from the current
        # gate set (floor == static threshold) and the run still passes —
        # never a vacuous pass, never a missing-baseline failure.
        bench = tmp_path / "bench"
        out = tmp_path / "trajectory.json"
        self._write_all(bench)
        assert not out.exists()
        assert check_trend(str(bench), str(out), 9) == 0
        seeded = json.loads(out.read_text())["gates"]
        assert all(g["floor"] == g["threshold"] for g in seeded)
        # Second run against the seeded baseline: the same records still
        # pass, and the floors persist unchanged.
        assert check_trend(str(bench), str(out), 9) == 0
        again = json.loads(out.read_text())["gates"]
        assert [g["floor"] for g in again] == [g["floor"] for g in seeded]

    def test_floors_ratchet_and_catch_a_quiet_regression(self, tmp_path):
        # A prior trajectory that established a higher floor wins over
        # the record's static threshold: a gate that once cleared 3.5x
        # cannot quietly regress to its 3.0x threshold.
        bench = tmp_path / "bench"
        out = tmp_path / "trajectory.json"
        self._write_all(bench)
        prior = {
            "schema": 1,
            "commit": "deadbeef",
            "gates": [
                {"gate": "shared-scan-batch", "speedup": 3.6,
                 "threshold": 3.0, "floor": 3.5},
            ],
        }
        out.write_text(json.dumps(prior))
        _write_gate(bench, "shared-scan-batch", 3.2, 3.0)
        assert check_trend(str(bench), str(out), 9) == 1
        record = next(
            g
            for g in json.loads(out.read_text())["gates"]
            if g["gate"] == "shared-scan-batch"
        )
        assert record["floor"] == 3.5
        # Clearing the ratcheted floor passes again.
        _write_gate(bench, "shared-scan-batch", 3.7, 3.0)
        assert check_trend(str(bench), str(out), 9) == 0

    def test_malformed_baseline_reseeds_instead_of_crashing(self, tmp_path):
        bench = tmp_path / "bench"
        out = tmp_path / "trajectory.json"
        self._write_all(bench)
        for garbage in ("not json", "[]", '{"gates": [{"floor": "x"}]}'):
            out.write_text(garbage)
            assert check_trend(str(bench), str(out), 9) == 0
            assert json.loads(out.read_text())["gates"]

    def test_gate_records_are_written_by_the_bench_helper(
        self, tmp_path, monkeypatch
    ):
        import bench_reporting

        monkeypatch.setattr(bench_reporting, "BENCH_DIR", tmp_path / "b")
        path = bench_reporting.bench_record_gate(
            "engine-cache", 11.5, 5.0, requests=30
        )
        record = json.loads(path.read_text())
        assert record == {
            "gate": "engine-cache",
            "speedup": 11.5,
            "threshold": 5.0,
            "requests": 30,
        }

    def test_trend_checker_runs_as_a_script(self, tmp_path):
        bench = tmp_path / "bench"
        out = tmp_path / "trajectory.json"
        self._write_all(bench)
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO / "benchmarks" / "check_trend.py"),
                str(bench),
                str(out),
                "9",
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert out.exists()
