"""Unit tests for atoms, conjunctive queries, and adorned views."""

import pytest

from repro.exceptions import QueryError
from repro.query.atoms import Atom, Constant, Variable
from repro.query.adorned import AdornedView
from repro.query.conjunctive import ConjunctiveQuery

x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")


class TestAtom:
    def test_variables_in_first_occurrence_order(self):
        atom = Atom("R", (y, x, y))
        assert atom.variables() == (y, x)

    def test_variable_positions(self):
        atom = Atom("R", (y, x, y))
        assert atom.variable_positions(y) == (0, 2)
        assert atom.variable_positions(x) == (1,)

    def test_constants(self):
        atom = Atom("R", (x, Constant(5), Constant("a")))
        assert atom.constants() == ((1, 5), (2, "a"))

    def test_is_natural(self):
        assert Atom("R", (x, y)).is_natural()
        assert not Atom("R", (x, x)).is_natural()
        assert not Atom("R", (x, Constant(1))).is_natural()

    def test_bad_term_rejected(self):
        with pytest.raises(QueryError):
            Atom("R", (x, "oops"))

    def test_equality(self):
        assert Atom("R", (x, y)) == Atom("R", (x, y))
        assert Atom("R", (x, y)) != Atom("R", (y, x))


class TestConjunctiveQuery:
    def test_body_variables_order(self):
        q = ConjunctiveQuery("Q", (x, y, z), [Atom("R", (y, x)), Atom("S", (x, z))])
        assert q.body_variables() == (y, x, z)

    def test_full_query(self):
        q = ConjunctiveQuery("Q", (x, y), [Atom("R", (x, y))])
        assert q.is_full
        assert q.is_natural_join()

    def test_non_full_query(self):
        q = ConjunctiveQuery("Q", (x,), [Atom("R", (x, y))])
        assert not q.is_full

    def test_boolean_query(self):
        q = ConjunctiveQuery("Q", (), [Atom("R", (x, y))])
        assert q.is_boolean

    def test_head_variable_must_be_in_body(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery("Q", (z,), [Atom("R", (x, y))])

    def test_duplicate_head_variable_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery("Q", (x, x), [Atom("R", (x, y))])

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery("Q", (), [])

    def test_atoms_for(self):
        q = ConjunctiveQuery("Q", (x, y, z), [Atom("R", (x, y)), Atom("S", (y, z))])
        assert q.atoms_for(y) == (0, 1)
        assert q.atoms_for(x) == (0,)


class TestAdornedView:
    def _view(self, pattern="bbf"):
        q = ConjunctiveQuery(
            "Q", (x, y, z), [Atom("R", (x, y)), Atom("S", (y, z)), Atom("T", (z, x))]
        )
        return AdornedView(q, pattern)

    def test_bound_and_free_partition(self):
        v = self._view("bfb")
        assert v.bound_variables == (x, z)
        assert v.free_variables == (y,)

    def test_pattern_length_validation(self):
        q = ConjunctiveQuery("Q", (x, y), [Atom("R", (x, y))])
        with pytest.raises(QueryError):
            AdornedView(q, "b")

    def test_pattern_characters_validation(self):
        q = ConjunctiveQuery("Q", (x, y), [Atom("R", (x, y))])
        with pytest.raises(QueryError):
            AdornedView(q, "bx")

    def test_boolean_and_non_parametric(self):
        assert self._view("bbb").is_boolean
        assert self._view("fff").is_non_parametric
        assert self._view("fff").is_full_enumeration
        assert not self._view("bbf").is_boolean

    def test_binding(self):
        v = self._view("bfb")
        assert v.binding((1, 2)) == {x: 1, z: 2}

    def test_binding_arity_checked(self):
        with pytest.raises(QueryError):
            self._view("bfb").binding((1,))

    def test_head_tuple_roundtrip(self):
        v = self._view("bfb")
        head = v.head_tuple({x: 1, y: 2, z: 3})
        assert head == (1, 2, 3)
        bound, free = v.split_head_tuple(head)
        assert bound == (1, 3)
        assert free == (2,)

    def test_head_tuple_missing_binding(self):
        with pytest.raises(QueryError):
            self._view("bfb").head_tuple({x: 1})

    def test_is_natural_join(self):
        assert self._view().is_natural_join()
        q = ConjunctiveQuery("Q", (x, y), [Atom("R", (x, y, Constant(1)))])
        assert not AdornedView(q, "bf").is_natural_join()
