"""Tests for hypergraphs and fractional covers, pinning the paper's numbers."""

import math

import pytest

from repro.exceptions import QueryError
from repro.hypergraph.covers import (
    agm_bound,
    fractional_edge_cover,
    max_slack_cover,
    slack,
)
from repro.hypergraph.hypergraph import Hypergraph, hypergraph_of_view
from repro.query.atoms import Variable
from repro.query.parser import parse_view
from repro.workloads.queries import (
    loomis_whitney_view,
    running_example_view,
    star_view,
    triangle_view,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestHypergraph:
    def test_from_view(self):
        hg = hypergraph_of_view(triangle_view("bbf"))
        assert set(hg.vertices) == {x, y, z}
        assert len(hg.edges) == 3

    def test_self_join_edges_are_distinct(self):
        hg = hypergraph_of_view(
            parse_view("V^bfb(x, y, z) = R(x, y), R(y, z), R(z, x)")
        )
        assert len(hg.edges) == 3
        assert hg.labels == (0, 1, 2)

    def test_edges_containing(self):
        hg = hypergraph_of_view(triangle_view("bbf"))
        assert hg.edges_containing(y) == (0, 1)

    def test_edges_intersecting(self):
        hg = hypergraph_of_view(triangle_view("bbf"))
        assert set(hg.edges_intersecting({x})) == {0, 2}
        assert set(hg.edges_intersecting({x, y, z})) == {0, 1, 2}

    def test_induced(self):
        hg = hypergraph_of_view(triangle_view("bbf"))
        sub = hg.induced({x, y})
        assert set(sub.vertices) == {x, y}
        # Edge 1 = S(y,z) contributes {y}; edge 2 = T(z,x) contributes {x}.
        assert sub.edge(0) == frozenset({x, y})
        assert sub.edge(1) == frozenset({y})

    def test_primal_neighbors(self):
        hg = hypergraph_of_view(triangle_view("bbf"))
        assert hg.primal_neighbors()[x] == {y, z}

    def test_connectivity(self):
        hg = hypergraph_of_view(triangle_view("bbf"))
        assert hg.is_connected()
        disconnected = Hypergraph([x, y], [(0, {x}), (1, {y})])
        assert not disconnected.is_connected()

    def test_non_natural_query_rejected(self):
        view = parse_view("Q^bf(x, y) = R(x, x, y)")
        with pytest.raises(QueryError):
            hypergraph_of_view(view)


class TestCovers:
    def test_triangle_rho_star(self):
        hg = hypergraph_of_view(triangle_view("bbf"))
        cover = fractional_edge_cover(hg)
        assert cover.value == pytest.approx(1.5, abs=1e-6)

    def test_loomis_whitney_rho_star(self):
        """Example 6: ρ* = n/(n-1) with weight 1/(n-1) per edge."""
        for n in (3, 4, 5):
            hg = hypergraph_of_view(loomis_whitney_view(n))
            cover = fractional_edge_cover(hg)
            assert cover.value == pytest.approx(n / (n - 1), abs=1e-6)

    def test_star_rho_star(self):
        hg = hypergraph_of_view(star_view(4))
        assert fractional_edge_cover(hg).value == pytest.approx(4.0, abs=1e-6)

    def test_cover_of_subset(self):
        hg = hypergraph_of_view(triangle_view("bbf"))
        cover = fractional_edge_cover(hg, [x, y])
        assert cover.value == pytest.approx(1.0, abs=1e-6)

    def test_empty_target_is_free(self):
        hg = hypergraph_of_view(triangle_view("bbf"))
        assert fractional_edge_cover(hg, []).value == 0.0

    def test_slack_running_example(self):
        """Section 3.1: u = (1,1,1) has slack 2 on V_f = {x, y, z}."""
        view = running_example_view()
        hg = hypergraph_of_view(view)
        assert slack(hg, {0: 1, 1: 1, 2: 1}, view.free_variables) == pytest.approx(2.0)

    def test_slack_star(self):
        """Example 7: u = 1 everywhere has slack n on the free variable z."""
        view = star_view(4)
        hg = hypergraph_of_view(view)
        weights = {i: 1.0 for i in range(4)}
        assert slack(hg, weights, view.free_variables) == pytest.approx(4.0)

    def test_slack_of_empty_subset_is_infinite(self):
        hg = hypergraph_of_view(triangle_view("bbb"))
        assert math.isinf(slack(hg, {0: 1}, []))

    def test_slack_is_at_least_one_for_covers(self):
        hg = hypergraph_of_view(triangle_view("fff"))
        cover = fractional_edge_cover(hg)
        assert slack(hg, cover.weights, hg.vertices) >= 1.0 - 1e-9

    def test_agm_bound_triangle(self):
        """AGM: triangle with |R|=|S|=|T|=N has bound N^{3/2}."""
        hg = hypergraph_of_view(triangle_view("fff"))
        sizes = {0: 100, 1: 100, 2: 100}
        assert agm_bound(hg, sizes) == pytest.approx(100 ** 1.5, rel=1e-6)

    def test_agm_bound_uses_given_weights(self):
        hg = hypergraph_of_view(triangle_view("fff"))
        sizes = {0: 100, 1: 100, 2: 100}
        bound = agm_bound(hg, sizes, weights={0: 1.0, 1: 1.0, 2: 0.0})
        assert bound == pytest.approx(10000.0)

    def test_agm_bound_asymmetric_sizes(self):
        """The optimal bound exploits a small relation."""
        hg = hypergraph_of_view(triangle_view("fff"))
        sizes = {0: 4, 1: 10000, 2: 10000}
        assert agm_bound(hg, sizes) <= 4 * 10000 + 1e-6

    def test_max_slack_cover_star(self):
        """The slack-maximizing cover for the star keeps ρ = n, slack = n."""
        view = star_view(3)
        hg = hypergraph_of_view(view)
        cover, alpha = max_slack_cover(
            hg, view.free_variables, rho_budget=3.0
        )
        assert cover.value == pytest.approx(3.0, abs=1e-6)
        assert alpha == pytest.approx(3.0, abs=1e-6)

    def test_max_slack_cover_no_free(self):
        hg = hypergraph_of_view(triangle_view("bbb"))
        cover, alpha = max_slack_cover(hg, [])
        assert math.isinf(alpha)
        assert cover.value == pytest.approx(1.5, abs=1e-6)
