"""End-to-end property-based tests on randomly generated databases.

Hypothesis drives random relations through the full pipeline and checks
the compressed representations against the hash-join oracle — the
strongest single guard against regressions in the core machinery.
"""

from hypothesis import given, settings, strategies as st

from oracle import oracle_answer
from repro.core.decomposed import DecomposedRepresentation
from repro.core.structure import CompressedRepresentation
from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.joins.hash_join import evaluate_by_hash_join
from repro.query.parser import parse_view

SMALL = st.integers(0, 4)
EDGE = st.tuples(SMALL, SMALL)
EDGES = st.lists(EDGE, min_size=0, max_size=18)
TAU = st.sampled_from([1.0, 2.0, 5.0, 40.0])


def _all_accesses(view, db, width):
    values = set(range(5))
    import itertools

    return list(itertools.product(sorted(values), repeat=width))


@given(EDGES, EDGES, EDGES, TAU)
@settings(max_examples=60, deadline=None)
def test_triangle_bbf_matches_oracle(r, s, t, tau):
    view = parse_view("D^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)")
    db = Database(
        [Relation("R", 2, r), Relation("S", 2, s), Relation("T", 2, t)]
    )
    cr = CompressedRepresentation(view, db, tau=tau)
    for access in _all_accesses(view, db, 2):
        assert cr.answer(access) == oracle_answer(view, db, access)


@given(EDGES, EDGES, TAU)
@settings(max_examples=60, deadline=None)
def test_two_relation_self_pattern(r, s, tau):
    view = parse_view("Q^bff(x, y, z) = R(x, y), S(y, z)")
    db = Database([Relation("R", 2, r), Relation("S", 2, s)])
    cr = CompressedRepresentation(view, db, tau=tau)
    for access in _all_accesses(view, db, 1):
        answer = cr.answer(access)
        assert answer == oracle_answer(view, db, access)
        assert answer == sorted(answer)


@given(EDGES, TAU)
@settings(max_examples=50, deadline=None)
def test_self_join_two_copies(edges, tau):
    """Q(x,y,z) = R(x,y), R(y,z) with both ends of the pattern exercised."""
    view = parse_view("Q^fbf(x, y, z) = R(x, y), R(y, z)")
    db = Database([Relation("R", 2, edges)])
    cr = CompressedRepresentation(view, db, tau=tau)
    for access in _all_accesses(view, db, 1):
        assert cr.answer(access) == oracle_answer(view, db, access)


@given(EDGES, EDGES, EDGES)
@settings(max_examples=40, deadline=None)
def test_decomposed_path_matches_oracle(r1, r2, r3):
    view = parse_view(
        "P^bffb(x1, x2, x3, x4) = R1(x1, x2), R2(x2, x3), R3(x3, x4)"
    )
    db = Database(
        [Relation("R1", 2, r1), Relation("R2", 2, r2), Relation("R3", 2, r3)]
    )
    dr = DecomposedRepresentation(view, db)
    for access in _all_accesses(view, db, 2):
        assert sorted(dr.answer(access)) == oracle_answer(view, db, access)


@given(EDGES, EDGES, EDGES, TAU)
@settings(max_examples=40, deadline=None)
def test_full_enumeration_equals_flat_join(r, s, t, tau):
    view = parse_view("D^fff(x, y, z) = R(x, y), S(y, z), T(z, x)")
    db = Database(
        [Relation("R", 2, r), Relation("S", 2, s), Relation("T", 2, t)]
    )
    cr = CompressedRepresentation(view, db, tau=tau)
    expected = sorted(evaluate_by_hash_join(view.query, db))
    assert cr.answer(()) == expected


@given(EDGES, TAU)
@settings(max_examples=40, deadline=None)
def test_boolean_views_decide_membership(edges, tau):
    view = parse_view("Q^bb(x, y) = R(x, y), R(y, x)")
    db = Database([Relation("R", 2, edges)])
    cr = CompressedRepresentation(view, db, tau=tau)
    rel = db["R"]
    for access in _all_accesses(view, db, 2):
        expected = access in rel and (access[1], access[0]) in rel
        assert cr.exists(access) == expected
