"""Seek (enumerate_from) and the Section 3.2 projection extension."""

import pytest
from hypothesis import given, settings, strategies as st

from oracle import oracle_accesses, oracle_answer
from repro.core.projection import ProjectedRepresentation
from repro.core.structure import CompressedRepresentation
from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.exceptions import QueryError
from repro.joins.generic_join import JoinCounter
from repro.query.atoms import Variable
from repro.query.parser import parse_view
from repro.workloads.generators import star_database, triangle_database
from repro.workloads.queries import star_view, triangle_view


class TestEnumerateFrom:
    @pytest.fixture
    def setup(self):
        view = triangle_view("bff")
        db = triangle_database(15, 60, seed=31)
        cr = CompressedRepresentation(view, db, tau=3.0)
        accesses = oracle_accesses(view, db, limit=6)
        return view, db, cr, accesses

    def test_seek_matches_filtered_answer(self, setup):
        view, db, cr, accesses = setup
        for access in accesses:
            full = cr.answer(access)
            for start in [(0, 0), (3, 2), (7, 7), (100, 100)]:
                expected = [t for t in full if t >= start]
                got = list(cr.enumerate_from(access, start))
                assert got == expected, (access, start)

    def test_seek_from_existing_tuple_is_inclusive(self, setup):
        view, db, cr, accesses = setup
        for access in accesses:
            full = cr.answer(access)
            for row in full[:4]:
                got = list(cr.enumerate_from(access, row))
                assert got == [t for t in full if t >= row]

    def test_seek_beyond_domain_returns_nothing(self, setup):
        view, db, cr, accesses = setup
        for access in accesses[:3]:
            assert list(cr.enumerate_from(access, (10 ** 9, 0))) == []

    def test_seek_with_nonexistent_values_rounds_up(self, setup):
        view, db, cr, accesses = setup
        for access in accesses[:4]:
            full = cr.answer(access)
            got = list(cr.enumerate_from(access, (2.5, -1)))
            assert got == [t for t in full if t >= (2.5, -1)]

    def test_wrong_start_arity(self, setup):
        _, _, cr, accesses = setup
        with pytest.raises(QueryError):
            list(cr.enumerate_from(accesses[0], (1,)))

    @given(
        st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=20),
        st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=20),
        st.tuples(st.integers(-1, 5), st.integers(-1, 5)),
    )
    @settings(max_examples=60, deadline=None)
    def test_seek_property(self, r, s, start):
        view = parse_view("Q^bff(x, y, z) = R(x, y), S(y, z)")
        db = Database([Relation("R", 2, r), Relation("S", 2, s)])
        cr = CompressedRepresentation(view, db, tau=2.0)
        for access in [(v,) for v in range(5)]:
            full = cr.answer(access)
            got = list(cr.enumerate_from(access, start))
            assert got == [t for t in full if t >= start]


class TestProjection:
    def _oracle_distinct(self, view, db, access, keep_positions):
        rows = oracle_answer(view, db, access)
        return sorted({tuple(r[i] for i in keep_positions) for r in rows})

    def test_triangle_project_z(self):
        """V^bff(x, y, z), projecting z: distinct y values per x."""
        view = triangle_view("bff")
        db = triangle_database(15, 70, seed=33)
        z = Variable("z")
        pr = ProjectedRepresentation(view, db, tau=3.0, projected=[z])
        for access in oracle_accesses(view, db, limit=8):
            expected = self._oracle_distinct(view, db, access, [0])
            assert pr.answer(access) == expected

    def test_star_project_middle(self):
        """Star join projecting the center z: distinct () per access —
        the k-SetDisjointness view of Section 3.3."""
        view = star_view(2)
        db = star_database(2, 60, 10, seed=34)
        z = Variable("z")
        pr = ProjectedRepresentation(view, db, tau=4.0, projected=[z])
        for access in oracle_accesses(view, db, limit=8):
            rows = oracle_answer(view, db, access)
            assert pr.answer(access) == ([()] if rows else [])
            assert pr.exists(access) == bool(rows)

    def test_coauthor_projection(self):
        """The paper's V^bf(x, y) = R(x,p), R(y,p) — distinct co-authors."""
        view = parse_view("V^bff(x, y, p) = R(x, p), R(y, p)")
        from repro.workloads.scenarios import coauthor_database

        db = coauthor_database(n_authors=30, n_papers=40, seed=35)
        p = Variable("p")
        pr = ProjectedRepresentation(view, db, tau=4.0, projected=[p])
        for access in oracle_accesses(view, db, limit=6):
            expected = self._oracle_distinct(view, db, access, [0])
            assert pr.answer(access) == expected

    def test_projection_reorders_output_variables(self):
        """Projecting a middle variable: outputs keep head order."""
        view = parse_view("Q^bfff(w, x, y, z) = R(w, x), S(x, y), T(y, z)")
        db = Database(
            [
                Relation("R", 2, [(1, 2), (1, 3)]),
                Relation("S", 2, [(2, 5), (3, 5), (3, 6)]),
                Relation("T", 2, [(5, 7), (6, 8), (5, 9)]),
            ]
        )
        y = Variable("y")
        pr = ProjectedRepresentation(view, db, tau=2.0, projected=[y])
        # Full results for w=1: (x,y,z) in {(2,5,7),(2,5,9),(3,5,7),
        # (3,5,9),(3,6,8)}; distinct (x,z): sorted.
        assert pr.answer((1,)) == [(2, 7), (2, 9), (3, 7), (3, 8), (3, 9)]

    def test_projected_must_be_free(self):
        view = triangle_view("bff")
        db = triangle_database(10, 30, seed=36)
        with pytest.raises(QueryError):
            ProjectedRepresentation(
                view, db, tau=2.0, projected=[Variable("x")]
            )

    def test_no_projection_degenerates_to_plain(self):
        view = triangle_view("bff")
        db = triangle_database(12, 40, seed=37)
        pr = ProjectedRepresentation(view, db, tau=2.0, projected=[])
        cr = CompressedRepresentation(view, db, tau=2.0)
        for access in oracle_accesses(view, db, limit=5):
            assert pr.answer(access) == cr.answer(access)

    def test_distinct_output_cost_is_bounded(self):
        """The seek pattern: duplicates never surface and the per-output
        probes stay bounded even when each prefix has a huge block."""
        # One x value joined with many (y-block) suffixes.
        rows_r = [(1, k) for k in range(100)]
        rows_s = [(k, j) for k in range(100) for j in range(3)]
        view = parse_view("Q^bff(x, y, z) = R(x, y), S(y, z)")
        db = Database(
            [Relation("R", 2, rows_r), Relation("S", 2, rows_s)]
        )
        z = Variable("z")
        pr = ProjectedRepresentation(view, db, tau=4.0, projected=[z])
        counter = JoinCounter()
        result = list(pr.enumerate((1,), counter=counter))
        assert result == [(k,) for k in range(100)]
        assert counter.steps <= 60 * len(result)

    @given(
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=16),
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_projection_property(self, r, s):
        view = parse_view("Q^bff(x, y, z) = R(x, y), S(y, z)")
        db = Database([Relation("R", 2, r), Relation("S", 2, s)])
        z = Variable("z")
        pr = ProjectedRepresentation(view, db, tau=2.0, projected=[z])
        for access in [(v,) for v in range(4)]:
            expected = self._oracle_distinct(view, db, access, [0])
            assert pr.answer(access) == expected
