"""d-representation circuits: correctness, sharing, and size bounds."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.exceptions import QueryError
from repro.factorized.circuit import FactorizedCircuit
from repro.joins.hash_join import evaluate_by_hash_join
from repro.query.parser import parse_query
from repro.workloads.generators import path_database, triangle_database
from repro.workloads.queries import triangle_view


PATH = parse_query(
    "Q(x1, x2, x3, x4) = R1(x1, x2), R2(x2, x3), R3(x3, x4)"
)


class TestCorrectness:
    def test_path_matches_flat_join(self):
        db = path_database(3, 50, 9, seed=81)
        circuit = FactorizedCircuit(PATH, db)
        assert circuit.answer() == sorted(evaluate_by_hash_join(PATH, db))

    def test_triangle_matches_flat_join(self):
        view = triangle_view("fff")
        db = triangle_database(12, 45, seed=82)
        circuit = FactorizedCircuit(view, db)
        assert circuit.answer() == sorted(
            evaluate_by_hash_join(view.query, db)
        )

    def test_count_matches_enumeration(self):
        db = path_database(3, 50, 9, seed=83)
        circuit = FactorizedCircuit(PATH, db)
        assert circuit.count() == len(circuit.answer())

    def test_empty_result(self):
        db = Database(
            [
                Relation("R1", 2, [(1, 2)]),
                Relation("R2", 2, [(9, 9)]),
                Relation("R3", 2, [(3, 4)]),
            ]
        )
        circuit = FactorizedCircuit(PATH, db)
        assert circuit.is_empty()
        assert circuit.count() == 0
        assert circuit.answer() == []

    def test_partial_view_rejected(self):
        db = triangle_database(10, 30, seed=84)
        with pytest.raises(QueryError):
            FactorizedCircuit(triangle_view("bff"), db)

    @given(
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=14),
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=14),
    )
    @settings(max_examples=50, deadline=None)
    def test_two_hop_property(self, r, s):
        query = parse_query("Q(x, y, z) = R(x, y), S(y, z)")
        db = Database([Relation("R", 2, r), Relation("S", 2, s)])
        circuit = FactorizedCircuit(query, db)
        assert circuit.answer() == sorted(evaluate_by_hash_join(query, db))
        assert circuit.count() == len(evaluate_by_hash_join(query, db))


class TestSharing:
    def test_subcircuits_are_shared(self):
        """Many x1 values funnel through 2 middle values: the suffix
        circuits must be shared, keeping the DAG near-linear while the
        flat result is quadratic."""
        r1 = Relation("R1", 2, [(i, i % 2) for i in range(100)])
        r2 = Relation("R2", 2, [(0, 0), (0, 1), (1, 0), (1, 1)])
        r3 = Relation("R3", 2, [(i % 2, i) for i in range(100)])
        db = Database([r1, r2, r3])
        circuit = FactorizedCircuit(PATH, db)
        nodes, edges = circuit.size()
        flat = circuit.count()
        assert flat == 100 * 2 * 100 // 2 // 2 * 2  # 10000
        # The shared DAG is two orders of magnitude below the flat size.
        assert nodes < flat / 10
        assert edges < flat / 10

    def test_size_scales_linearly_for_acyclic(self):
        sizes = []
        for scale in (40, 80, 160):
            r1 = Relation("R1", 2, [(i, i % 2) for i in range(scale)])
            r2 = Relation("R2", 2, [(0, 0), (1, 1)])
            r3 = Relation("R3", 2, [(i % 2, i) for i in range(scale)])
            circuit = FactorizedCircuit(PATH, Database([r1, r2, r3]))
            sizes.append(circuit.size()[0])
        # Doubling the data roughly doubles the circuit (not squares it).
        assert sizes[2] <= 3 * sizes[1] <= 9 * sizes[0]

    def test_unit_and_empty_nodes(self):
        query = parse_query("Q(x) = R(x)")
        circuit = FactorizedCircuit(
            query, Database([Relation("R", 1, [(1,), (2,)])])
        )
        assert circuit.answer() == [(1,), (2,)]
        assert circuit.count() == 2
