"""Elastic topology: live hot-shard splits and snapshot-hydrated replicas.

The drain protocol in one paragraph: every cursor pins the routing-table
version it opened under; a split installs version+1 for new traffic
while pinned cursors keep answering against their own topology; when the
last pin on an old version drops, its no-longer-referenced shard servers
demote their cached structures and retire. Replicas are the other half
of elasticity: read-only :class:`~repro.engine.replica.ReplicaServer`
instances hydrate *purely* from snapshots shipped by a primary — a
missing snapshot is a fatal :class:`~repro.exceptions.SnapshotError`,
never a quiet local build — and the async front end balances request
batches across them with per-tenant admission control.
"""

from __future__ import annotations

import asyncio

import pytest

from oracle import oracle_answer
from repro.engine import (
    AsyncViewServer,
    ReplicaServer,
    ShardedViewServer,
    ViewServer,
    semijoin_reduce_database,
)
from repro.exceptions import ParameterError, SnapshotError
from repro.query.parser import parse_view
from repro.workloads import (
    productive_accesses,
    triangle_database,
    triangle_view,
)

TAU = 8.0
SHARD_KEY = {"R": 0, "T": 1}
SCATTER = "Rev^bbf(y, z, x) = R(x, y), S(y, z), T(z, x)"


@pytest.fixture
def setup():
    view = triangle_view("bbf")
    db = triangle_database(nodes=25, edges=120, seed=5)
    return view, db


def _hot_shard(server, keys):
    table = server.topology
    counts = {shard: 0 for shard in table.shard_ids}
    for key in keys:
        counts[table.shard_for(key[0])] += 1
    return max(counts, key=lambda shard: (counts[shard], shard))


class TestSplitShard:
    def test_split_report_and_key_movement(self, setup):
        view, db = setup
        server = ShardedViewServer(db, 3, SHARD_KEY)
        name = server.register(view, tau=TAU)
        keys = productive_accesses(view, db)
        hot = _hot_shard(server, keys)
        values = sorted(
            {row[col] for rel, col in SHARD_KEY.items() for row in db[rel].rows},
            key=repr,
        )
        before = {v: server.topology.shard_for(v) for v in values}
        try:
            report = server.split_shard(hot)
            after = {v: server.topology.shard_for(v) for v in values}
            assert report.shard_id == hot
            assert report.children == (f"{hot}.0", f"{hot}.1")
            assert report.version_after == report.version_before + 1
            assert report.retired_immediately  # nothing was pinned
            assert report.moved_rows > 0
            assert name in report.warmed_views
            # Only the hot shard's keys moved, and only into its children.
            for value in values:
                if before[value] == hot:
                    assert after[value] in report.children
                else:
                    assert after[value] == before[value]
            # Post-split answers stay oracle-identical.
            for access in keys:
                assert server.answer(name, access) == oracle_answer(
                    view, db, access
                )
        finally:
            server.close()

    def test_split_of_unknown_shard_fails(self, setup):
        view, db = setup
        server = ShardedViewServer(db, 2, SHARD_KEY)
        server.register(view, tau=TAU)
        try:
            with pytest.raises(ParameterError, match="not a live shard"):
                server.split_shard("9")
        finally:
            server.close()

    def test_registrations_survive_recursive_splits(self, setup):
        view, db = setup
        scatter_view = parse_view(SCATTER)
        server = ShardedViewServer(db, 2, SHARD_KEY)
        name = server.register(view, tau=TAU)
        scatter_name = server.register(scatter_view, tau=TAU)
        keys = productive_accesses(view, db)
        scatter_keys = productive_accesses(scatter_view, db)
        try:
            first = server.split_shard(_hot_shard(server, keys))
            second = server.split_shard(first.children[0])
            assert server.topology.version == second.version_after == 3
            for access in keys[:10]:
                assert server.answer(name, access) == oracle_answer(
                    view, db, access
                )
            for access in scatter_keys[:10]:
                assert server.answer(scatter_name, access) == oracle_answer(
                    scatter_view, db, access
                )
        finally:
            server.close()


class TestDrainProtocol:
    def test_inflight_cursors_pin_their_version_until_drained(self, setup):
        view, db = setup
        server = ShardedViewServer(db, 3, SHARD_KEY)
        name = server.register(view, tau=TAU)
        keys = [
            key
            for key in productive_accesses(view, db)
            if len(oracle_answer(view, db, key)) >= 2
        ]
        assert keys, "workload has no multi-answer accesses"
        try:
            v1 = server.topology.version
            cursors = [server.open(name, access) for access in keys[:4]]
            # Partially drain one cursor so the scan is genuinely live.
            first_row = cursors[0].fetchmany(1)
            assert first_row
            server.split_shard(_hot_shard(server, keys))
            v2 = server.topology.version
            assert server.live_versions() == (v1, v2)
            assert server.version_pins(v1) == len(cursors)
            # Pre-split cursors drain to oracle-identical answers.
            for access, cursor in zip(keys[:4], cursors):
                rows = (first_row if cursor is cursors[0] else []) + (
                    cursor.fetchall()
                )
                assert rows == oracle_answer(view, db, access)
                cursor.close()
            # Last pin dropped: the old topology retired outright.
            assert server.live_versions() == (v2,)
            with pytest.raises(ParameterError, match="not live"):
                server.version_pins(v1)
        finally:
            server.close()

    def test_new_requests_take_the_new_table_immediately(self, setup):
        view, db = setup
        server = ShardedViewServer(db, 3, SHARD_KEY)
        name = server.register(view, tau=TAU)
        keys = productive_accesses(view, db)
        try:
            held = server.open(name, keys[0])
            report = server.split_shard(_hot_shard(server, keys))
            assert not report.retired_immediately
            # A request routed after the split resolves against the new
            # table: hot keys land on a child shard id, not the parent.
            hot_key = next(
                key
                for key in keys
                if server.topology.shard_for(key[0]) in report.children
            )
            assert server.answer(name, hot_key) == oracle_answer(
                view, db, hot_key
            )
            held.close()
            assert server.live_versions() == (report.version_after,)
        finally:
            server.close()


class TestSemijoinReduction:
    def test_reduction_shrinks_replicated_relations_safely(self, setup):
        view, db = setup
        table_server = ShardedViewServer(db, 3, SHARD_KEY)
        try:
            shard_db = table_server.databases[0]
            reduced = semijoin_reduce_database(shard_db, view, SHARD_KEY)
            # S is replicated; its reduced copy only keeps rows that can
            # join this shard's slice, and never grows.
            assert set(reduced["S"].rows) <= set(shard_db["S"].rows)
            # The shard's own database is untouched (shared across views).
            assert table_server.databases[0]["S"].rows == shard_db["S"].rows
        finally:
            table_server.close()

    def test_sharded_answers_match_oracle_with_reduction_on(self, setup):
        view, db = setup
        server = ShardedViewServer(db, 3, SHARD_KEY)
        name = server.register(view, tau=TAU)
        try:
            for access in productive_accesses(view, db):
                assert server.answer(name, access) == oracle_answer(
                    view, db, access
                )
        finally:
            server.close()


class TestReplicaServer:
    def test_replica_requires_a_snapshot_dir(self, setup):
        _, db = setup
        with pytest.raises(ParameterError, match="snapshot"):
            ReplicaServer(db, snapshot_dir=None)

    def test_replica_serves_from_shipped_snapshots_without_building(
        self, setup, tmp_path
    ):
        view, db = setup
        primary = ViewServer(db, snapshot_dir=tmp_path)
        name = primary.register(view, tau=TAU)
        primary.representation(name)
        primary.cache.demote_all()
        primary.close()

        replica = ReplicaServer(db, snapshot_dir=tmp_path)
        try:
            assert replica.register(view, tau=TAU) == name
            assert replica.hydrate() == 1
            assert replica.total_builds() == 0
            assert replica.builder is None  # never a process build pool
            for access in productive_accesses(view, db)[:10]:
                assert replica.answer(name, access) == oracle_answer(
                    view, db, access
                )
            # A replica never writes snapshots back.
            assert replica.cache_stats.disk_writes == 0
            assert replica.total_builds() == 0
        finally:
            replica.close()

    def test_replica_refuseses_to_build_unshipped_views(self, setup, tmp_path):
        view, db = setup
        replica = ReplicaServer(db, snapshot_dir=tmp_path)
        try:
            name = replica.register(view, tau=TAU)
            with pytest.raises(SnapshotError, match="refuses to build"):
                replica.representation(name)
            # And the error is fatal for serving too — never a fallback.
            with pytest.raises(SnapshotError):
                replica.answer(name, productive_accesses(view, db)[0])
            assert replica.total_builds() == 0
        finally:
            replica.close()

    def test_replica_rejects_stale_snapshots(self, setup, tmp_path):
        view, db = setup
        primary = ViewServer(db, snapshot_dir=tmp_path)
        name = primary.register(view, tau=TAU)
        primary.representation(name)
        primary.cache.demote_all()
        primary.close()
        # A replica over *different* data must not hydrate those files.
        other = triangle_database(nodes=25, edges=120, seed=99)
        replica = ReplicaServer(other, snapshot_dir=tmp_path)
        try:
            replica.register(view, name=name, tau=TAU)
            with pytest.raises(SnapshotError):
                replica.hydrate()
        finally:
            replica.close()


class TestAsyncReplicas:
    def _hydrated_replicas(self, view, db, snapshot_dir, n=2):
        primary = ViewServer(db, snapshot_dir=snapshot_dir)
        name = primary.register(view, tau=TAU)
        primary.representation(name)
        primary.cache.demote_all()
        replicas = []
        for _ in range(n):
            replica = ReplicaServer(db, snapshot_dir=snapshot_dir)
            replica.register(view, name=name, tau=TAU)
            replica.hydrate()
            replicas.append(replica)
        return primary, name, replicas

    def test_replicas_reject_a_sharded_backend(self, setup):
        view, db = setup
        sharded = ShardedViewServer(db, 2, SHARD_KEY)
        extra = ViewServer(db)
        try:
            with pytest.raises(ParameterError, match="sharded"):
                AsyncViewServer(sharded, replicas=[extra])
        finally:
            extra.close()
            sharded.close()

    def test_balancer_name_is_validated(self, setup):
        _, db = setup
        backend = ViewServer(db)
        try:
            with pytest.raises(ParameterError, match="balancer"):
                AsyncViewServer(backend, balancer="fastest")
        finally:
            backend.close()

    def test_round_robin_spreads_batches_and_primary_stays_cold(
        self, setup, tmp_path
    ):
        view, db = setup
        primary, name, replicas = self._hydrated_replicas(
            view, db, tmp_path, n=2
        )
        keys = productive_accesses(view, db)
        served_before = [r.requests_served for r in replicas]

        async def drive():
            server = AsyncViewServer(
                primary, replicas=replicas, max_workers=2
            )
            try:
                results = []
                for start in range(0, 8, 2):
                    results.append(
                        await server.serve(name, keys[start:start + 2])
                    )
                return results
            finally:
                await asyncio.get_running_loop().run_in_executor(
                    None, server._executor.shutdown
                )

        results = asyncio.run(drive())
        try:
            assert [r.replica for r in results] == [0, 1, 0, 1]
            for result in results:
                for access, rows in zip(
                    result.result.accesses, result.result.answers
                ):
                    assert rows == oracle_answer(view, db, access)
            # Replicas did the serving; no replica built anything.
            for replica, before in zip(replicas, served_before):
                assert replica.requests_served > before
                assert replica.total_builds() == 0
        finally:
            for replica in replicas:
                replica.close()
            primary.close()

    def test_least_pending_prefers_the_idle_replica(self, setup, tmp_path):
        view, db = setup
        primary, name, replicas = self._hydrated_replicas(
            view, db, tmp_path, n=3
        )
        keys = productive_accesses(view, db)

        async def drive():
            server = AsyncViewServer(
                primary,
                replicas=replicas,
                balancer="least-pending",
                max_workers=3,
            )
            try:
                results = await asyncio.gather(
                    *(server.serve(name, keys[i:i + 2]) for i in range(6))
                )
                return [r.replica for r in results]
            finally:
                await asyncio.get_running_loop().run_in_executor(
                    None, server._executor.shutdown
                )

        picks = asyncio.run(drive())
        try:
            assert all(pick in (0, 1, 2) for pick in picks)
            # Load never piles onto one replica while another is idle:
            # 6 concurrent batches over 3 replicas spread 2/2/2.
            counts = [picks.count(i) for i in range(3)]
            assert max(counts) - min(counts) <= 2
            assert all(count >= 1 for count in counts)
        finally:
            for replica in replicas:
                replica.close()
            primary.close()

    def test_per_tenant_admission_control_serializes_one_tenant(self, setup):
        view, db = setup
        backend = ViewServer(db)
        name = backend.register(view, tau=TAU)
        keys = productive_accesses(view, db)
        active = {"now": 0, "max": 0}
        real_answer_batch = backend.answer_batch

        def spying_answer_batch(*args, **kwargs):
            active["now"] += 1
            active["max"] = max(active["max"], active["now"])
            try:
                return real_answer_batch(*args, **kwargs)
            finally:
                active["now"] -= 1

        backend.answer_batch = spying_answer_batch

        async def drive():
            server = AsyncViewServer(
                backend, max_workers=4, max_pending_per_tenant=1
            )
            try:
                await asyncio.gather(
                    *(
                        server.serve(name, keys[i:i + 2], tenant="acme")
                        for i in range(4)
                    )
                )
            finally:
                await asyncio.get_running_loop().run_in_executor(
                    None, server._executor.shutdown
                )

        asyncio.run(drive())
        try:
            assert active["max"] == 1  # one tenant never runs 2 at once
        finally:
            backend.close()

    def test_tenant_knob_is_validated(self, setup):
        _, db = setup
        backend = ViewServer(db)
        try:
            with pytest.raises(ParameterError):
                AsyncViewServer(backend, max_pending_per_tenant=0)
        finally:
            backend.close()
