"""Proposition 2: factorized (d-representation) full enumeration."""

import pytest

from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.exceptions import QueryError
from repro.factorized.drep import FactorizedRepresentation
from repro.joins.hash_join import evaluate_by_hash_join
from repro.query.parser import parse_query
from repro.workloads.generators import path_database, triangle_database
from repro.workloads.queries import triangle_view


class TestCorrectness:
    def test_path_full_enumeration(self):
        query = parse_query(
            "Q(x1, x2, x3, x4) = R1(x1, x2), R2(x2, x3), R3(x3, x4)"
        )
        db = path_database(3, 60, 10, seed=1)
        fr = FactorizedRepresentation(query, db)
        assert sorted(fr.answer()) == sorted(
            evaluate_by_hash_join(query, db)
        )

    def test_triangle_full_enumeration(self):
        view = triangle_view("fff")
        db = triangle_database(14, 55, seed=2)
        fr = FactorizedRepresentation(view, db)
        assert sorted(fr.answer()) == sorted(
            evaluate_by_hash_join(view.query, db)
        )

    def test_count_and_empty(self):
        query = parse_query("Q(x, y) = R(x, y)")
        db = Database([Relation("R", 2, [(1, 2), (3, 4)])])
        fr = FactorizedRepresentation(query, db)
        assert fr.count() == 2
        assert not fr.is_empty()
        empty = FactorizedRepresentation(
            query, Database([Relation("R", 2)])
        )
        assert empty.is_empty()
        assert empty.count() == 0

    def test_partially_bound_view_rejected(self):
        view = triangle_view("bff")
        db = triangle_database(10, 30, seed=3)
        with pytest.raises(QueryError):
            FactorizedRepresentation(view, db)


class TestCompression:
    def test_acyclic_factorization_beats_flat_output(self):
        """Proposition 2: acyclic queries factorize to linear size, far
        below the materialized output when the join explodes."""
        query = parse_query(
            "Q(x1, x2, x3, x4) = R1(x1, x2), R2(x2, x3), R3(x3, x4)"
        )
        # A 2-layer blowup: few middle values, many endpoints.
        r1 = Relation("R1", 2, [(i, i % 3) for i in range(60)])
        r2 = Relation("R2", 2, [(i, j) for i in range(3) for j in range(3)])
        r3 = Relation("R3", 2, [(i % 3, i) for i in range(60)])
        db = Database([r1, r2, r3])
        fr = FactorizedRepresentation(query, db)
        flat = len(evaluate_by_hash_join(query, db))
        factorized_cells = fr.space_report().structure_cells
        assert flat > 5 * factorized_cells

    def test_width_reported_for_acyclic(self):
        query = parse_query("Q(x, y, z) = R(x, y), S(y, z)")
        db = Database(
            [
                Relation("R", 2, [(1, 2), (2, 2)]),
                Relation("S", 2, [(2, 5)]),
            ]
        )
        fr = FactorizedRepresentation(query, db)
        assert fr.width == pytest.approx(1.0, abs=1e-6)
