"""Section 6: MinDelayCover, MinSpaceCover, and the Theorem 2 planner."""

import math

import pytest

from repro.exceptions import ParameterError
from repro.hypergraph.hypergraph import hypergraph_of_view
from repro.hypergraph.width import connex_fhw
from repro.optimizer.min_delay import min_delay_cover
from repro.optimizer.min_space import min_space_cover
from repro.optimizer.planner import plan_decomposition
from repro.workloads.queries import (
    path_view,
    star_view,
    triangle_view,
)

N = 10_000


class TestMinDelayCover:
    def test_star_tradeoff_curve(self):
        """Example 7 / §3.3: with space N^k/τ^k, the optimal delay is
        τ = N / Σ^{1/k}: log τ = log N − (log Σ)/k."""
        k = 2
        view = star_view(k)
        sizes = {i: N for i in range(k)}
        for budget_exp in (1.2, 1.5, 1.8):
            budget = N ** budget_exp
            result = min_delay_cover(view, sizes, budget)
            expected_log_tau = max(
                0.0, math.log(N) - math.log(budget) / k
            )
            assert result.log_tau == pytest.approx(
                expected_log_tau, abs=0.05
            )
            assert result.alpha == pytest.approx(k, abs=0.05)

    def test_huge_budget_means_constant_delay(self):
        view = triangle_view("bbf")
        sizes = {i: N for i in range(3)}
        result = min_delay_cover(view, sizes, N ** 3)
        assert result.tau == pytest.approx(1.0, abs=1e-6)

    def test_linear_budget_triangle(self):
        """Proposition 3 shape: triangle at linear space has τ ≈ N^{1/2}
        with the ρ* = 3/2 cover and slack 1 (or better with slack)."""
        view = triangle_view("bbf")
        sizes = {i: N for i in range(3)}
        result = min_delay_cover(view, sizes, N * 2)
        # The space term Π|R|^u / τ^α must meet the budget.
        assert result.predicted_space(sizes) <= N * 2 * 1.01
        assert result.log_tau <= math.log(N)  # never worse than lazy

    def test_all_bound_view_is_free(self):
        view = triangle_view("bbb")
        sizes = {i: N for i in range(3)}
        result = min_delay_cover(view, sizes, N * 2)
        assert result.tau == 1.0

    def test_weights_form_a_cover(self):
        view = triangle_view("bbf")
        sizes = {i: N for i in range(3)}
        result = min_delay_cover(view, sizes, N * 10)
        hg = hypergraph_of_view(view)
        for var in view.head:
            coverage = sum(
                result.weights.get(label, 0.0)
                for label in hg.edges_containing(var)
            )
            assert coverage >= 1.0 - 1e-6

    def test_bad_budget_rejected(self):
        view = triangle_view("bbf")
        with pytest.raises(ParameterError):
            min_delay_cover(view, {i: N for i in range(3)}, 0.5)


class TestMinSpaceCover:
    def test_roundtrip_with_min_delay(self):
        """Proposition 12: the space found supports the requested delay."""
        view = star_view(2)
        sizes = {i: N for i in range(2)}
        for delay in (10.0, 100.0, 1000.0):
            result = min_space_cover(view, sizes, delay)
            assert result.inner.log_tau <= math.log(delay) + 1e-6
            # Tightness: 10% less space must force more delay.
            tighter = min_delay_cover(view, sizes, result.space * 0.5)
            assert tighter.log_tau >= result.inner.log_tau - 1e-6

    def test_space_decreases_with_delay_budget(self):
        view = star_view(2)
        sizes = {i: N for i in range(2)}
        spaces = [
            min_space_cover(view, sizes, delay).space
            for delay in (2.0, 50.0, 5000.0)
        ]
        assert spaces[0] >= spaces[1] >= spaces[2]

    def test_delay_one_needs_materialization_scale_space(self):
        """τ = 1 forces space near the AGM bound (full materialization)."""
        view = star_view(2)
        sizes = {i: N for i in range(2)}
        result = min_space_cover(view, sizes, 1.0)
        assert math.log(result.space) >= 2 * math.log(N) * 0.9

    def test_invalid_delay_rejected(self):
        with pytest.raises(ParameterError):
            min_space_cover(star_view(2), {0: N, 1: N}, 0.5)


class TestPlanner:
    def test_plan_path_decomposition(self):
        view = path_view(4)
        hg = hypergraph_of_view(view)
        _, decomposition = connex_fhw(hg, frozenset(view.bound_variables))
        sizes = {i: N for i in range(4)}
        plan = plan_decomposition(view, hg, decomposition, sizes, N ** 1.5)
        assert plan.delta_height >= 0.0
        assert set(plan.bag_taus) == set(decomposition.non_root_nodes())
        for node in decomposition.non_root_nodes():
            assert plan.assignment.of(node) >= 0.0

    def test_bigger_budget_means_lower_height(self):
        view = path_view(4)
        hg = hypergraph_of_view(view)
        _, decomposition = connex_fhw(hg, frozenset(view.bound_variables))
        sizes = {i: N for i in range(4)}
        generous = plan_decomposition(view, hg, decomposition, sizes, N ** 3)
        tight = plan_decomposition(view, hg, decomposition, sizes, N ** 1.1)
        assert generous.delta_height <= tight.delta_height + 1e-9

    def test_predicted_delay(self):
        view = path_view(3)
        hg = hypergraph_of_view(view)
        _, decomposition = connex_fhw(hg, frozenset(view.bound_variables))
        sizes = {i: N for i in range(3)}
        plan = plan_decomposition(view, hg, decomposition, sizes, N ** 2)
        assert plan.predicted_delay(4 * N) >= 1.0
