"""Sharded serving: partitioning, routing, scatter-gather, aggregation."""

import threading
import zlib

import pytest

from oracle import oracle_accesses, oracle_answer
from repro.core.snapshot import database_state
from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.engine import (
    RoutingTable,
    ShardedViewServer,
    infer_shard_key,
    merge_delay_stats,
    partition_database,
    stable_hash,
)
from repro.exceptions import ParameterError, SchemaError
from repro.measure.delay import DelayStats
from repro.query.parser import parse_view
from repro.workloads import (
    mutual_friend_view,
    request_stream,
    triangle_database,
    triangle_view,
)

SHARD_KEY = {"R": 0, "T": 1}  # the triangle's x: R(x, y), T(z, x)


@pytest.fixture
def triangle_setup():
    view = triangle_view("bbf")
    db = triangle_database(nodes=25, edges=120, seed=5)
    return view, db


def scatter_view():
    """x is free: every request fans out to all shards."""
    return parse_view("Rev^bbf(y, z, x) = R(x, y), S(y, z), T(z, x)")


class TestStableHash:
    def test_salted_types_use_crc32(self):
        assert stable_hash("alice") == zlib.crc32(b"alice")
        assert stable_hash(b"x") == zlib.crc32(b"x")
        assert stable_hash(bytearray(b"x")) == stable_hash(b"x")

    def test_equal_tuples_of_mixed_numeric_types_agree(self):
        assert stable_hash((1, 2)) == stable_hash((1.0, 2.0))
        assert stable_hash((1, 2)) != stable_hash((2, 1))
        assert stable_hash(()) != stable_hash((0,))

    def test_numbers_use_the_unsalted_numeric_hash(self):
        for value in (0, 17, -3, 2.5):
            assert stable_hash(value) == hash(value) & 0xFFFFFFFF

    def test_value_hashed_user_types_route_by_equality(self):
        # Address-based repr must not split equal values across shards.
        class Key:
            def __init__(self, v):
                self.v = v

            def __eq__(self, other):
                return isinstance(other, Key) and self.v == other.v

            def __hash__(self):
                return hash(("Key", self.v))

        assert stable_hash(Key(7)) == stable_hash(Key(7))

    def test_equal_numbers_route_together(self):
        # 1 == 1.0 == True answer identically on an unsharded server, so
        # they must pin the same shard.
        assert stable_hash(1) == stable_hash(1.0) == stable_hash(True)

    def test_number_and_its_string_hash_apart(self):
        assert stable_hash(1) != stable_hash("1")


class TestPartitionDatabase:
    def test_slices_partition_the_key_relations(self, triangle_setup):
        _, db = triangle_setup
        table = RoutingTable.fresh(4)
        shards = partition_database(db, SHARD_KEY, table)
        assert len(shards) == 4
        for name, column in SHARD_KEY.items():
            rows = [row for shard in shards for row in shard[name]]
            assert sorted(rows) == sorted(db[name])
            for index, shard in enumerate(shards):
                for row in shard[name]:
                    assert table.index_for(row[column]) == index

    def test_unlisted_relations_are_copied_per_shard(self, triangle_setup):
        # Sharing by reference would alias every shard (and any replica)
        # to the same Relation object: a delta applied through one
        # shard's database would silently bleed into its siblings.
        _, db = triangle_setup
        shards = partition_database(db, SHARD_KEY, 3)
        for shard in shards:
            assert shard["S"] is not db["S"]
            assert shard["S"].rows == db["S"].rows
        seen = {id(shard["S"]) for shard in shards}
        assert len(seen) == len(shards)

    def test_mutating_one_shard_leaves_siblings_byte_identical(
        self, triangle_setup
    ):
        _, db = triangle_setup
        shards = partition_database(db, SHARD_KEY, 3)
        before = [database_state(shard) for shard in shards]
        # Simulate a delta applied through shard 0's database: swap its
        # replicated relation for a mutated copy via the sanctioned
        # Database.replace path AND mutate the relation object in place
        # (the hazard the reference-sharing bug exposed).
        victim = shards[0]["S"]
        object.__setattr__(
            victim, "_rows", frozenset(list(victim.rows)[:1])
        )
        after = [database_state(shard) for shard in shards[1:]]
        assert after == before[1:]

    def test_empty_slices_are_kept(self):
        db = Database([Relation("R", 2, [(1, 2)]), Relation("S", 2, [(2, 3)])])
        shards = partition_database(db, {"R": 0}, 8)
        assert len(shards) == 8
        assert sum(len(shard["R"]) for shard in shards) == 1

    def test_parameter_validation(self, triangle_setup):
        _, db = triangle_setup
        with pytest.raises(ParameterError):
            partition_database(db, SHARD_KEY, 0)
        with pytest.raises(ParameterError):
            partition_database(db, {}, 2)
        with pytest.raises(ParameterError):
            partition_database(db, {"R": 9}, 2)
        with pytest.raises(SchemaError):
            partition_database(db, {"Nope": 0}, 2)


class TestInferShardKey:
    def test_prefers_the_first_bound_variable(self):
        assert infer_shard_key(triangle_view("bbf")) == {"R": 0, "T": 1}
        # Rev binds (y, z); y sits at R.1 and S.0.
        assert infer_shard_key(scatter_view()) == {"R": 1, "S": 0}

    def test_falls_back_to_free_variables(self):
        # S^bbbf: z is free but consistently the second column everywhere.
        view = parse_view(
            "S^bbbf(x1, x2, x3, z) = R1(x1, z), R2(x2, z), R3(x3, z)"
        )
        # Bound x1 works already (R1 only); the point is it returns a key.
        key = infer_shard_key(view)
        assert key in ({"R1": 0}, {"R1": 0, "R2": 0, "R3": 0})

    def test_self_join_with_moving_variable_is_rejected(self):
        # V(x,y,z) = R(x,y), R(y,z), R(z,x): every variable changes column.
        with pytest.raises(SchemaError):
            infer_shard_key(mutual_friend_view())

    def test_self_join_key_column_held_by_another_variable_is_rejected(self):
        # x is column-consistent over the atoms that mention it, but the
        # second R atom puts y on the key column — the key would be
        # rejected at registration, so inference must not emit it.
        view = parse_view("V^bf(x, z) = R(x, y), R(y, z)")
        with pytest.raises(SchemaError):
            infer_shard_key(view)


class TestRoutingModes:
    def test_bound_key_variable_routes(self, triangle_setup):
        view, db = triangle_setup
        server = ShardedViewServer(db, 4, SHARD_KEY)
        name = server.register(view, tau=8.0)
        assert server.route(name) == ("routed", 0)
        for access in oracle_accesses(view, db, limit=6):
            shard = server.shard_of(name, access)
            assert shard == server.topology.index_for(access[0])

    def test_free_key_variable_scatters(self, triangle_setup):
        _, db = triangle_setup
        server = ShardedViewServer(db, 4, SHARD_KEY)
        name = server.register(scatter_view(), tau=8.0)
        assert server.route(name) == ("scatter", None)
        assert server.shard_of(name, (1, 2)) is None

    def test_unsharded_view_is_pinned_to_shard_zero(self, triangle_setup):
        _, db = triangle_setup
        server = ShardedViewServer(db, 4, SHARD_KEY)
        name = server.register(parse_view("W^bf(y, z) = S(y, z)"), tau=4.0)
        assert server.route(name) == ("pinned", 0)
        assert server.shard_of(name, (3,)) == 0

    def test_self_join_moving_the_key_column_is_rejected(self, triangle_setup):
        _, db = triangle_setup
        server = ShardedViewServer(db, 2, {"R": 0})
        with pytest.raises(SchemaError):
            server.register(mutual_friend_view(), tau=8.0)

    def test_projected_key_variable_is_rejected(self, triangle_setup):
        _, db = triangle_setup
        server = ShardedViewServer(db, 2, {"S": 1})  # S's z column
        with pytest.raises(SchemaError):
            server.register(parse_view("P^bf(x, y) = R(x, y), S(y, z)"))

    def test_constant_on_key_column_is_rejected(self, triangle_setup):
        _, db = triangle_setup
        server = ShardedViewServer(db, 2, {"S": 1})
        with pytest.raises(SchemaError):
            server.register(parse_view("C^bf(x, y) = R(x, y), S(y, 1)"))

    def test_unknown_view_raises(self, triangle_setup):
        _, db = triangle_setup
        server = ShardedViewServer(db, 2, SHARD_KEY)
        with pytest.raises(SchemaError):
            server.route("ghost")

    def test_failed_registration_rolls_back_all_shards(self, triangle_setup):
        view, db = triangle_setup
        server = ShardedViewServer(db, 3, SHARD_KEY)
        # Sabotage: the name is already taken on the last shard only.
        server.shards[2].register(view, tau=8.0)
        with pytest.raises(SchemaError):
            server.register(view, tau=8.0)
        # All-or-nothing: the earlier shards rolled their registration back
        # and the facade never learned the name.
        assert view.name not in server.shards[0].views()
        assert view.name not in server.shards[1].views()
        with pytest.raises(SchemaError):
            server.route(view.name)
        # Clearing the saboteur makes the same name registrable again.
        assert server.shards[2].unregister(view.name) is True
        name = server.register(view, tau=8.0)
        assert server.route(name) == ("routed", 0)


class TestShardedAnswers:
    def test_routed_batch_matches_oracle(self, triangle_setup):
        view, db = triangle_setup
        server = ShardedViewServer(db, 4, SHARD_KEY)
        name = server.register(view, tau=8.0)
        stream = request_stream(view, db, 50, seed=9, skew=1.0, miss_rate=0.2)
        result = server.answer_batch(name, stream)
        assert len(result.answers) == len(stream)
        for access, rows in zip(result.accesses, result.answers):
            assert list(rows) == oracle_answer(view, db, access)

    def test_scatter_batch_matches_oracle(self, triangle_setup):
        _, db = triangle_setup
        view = scatter_view()
        server = ShardedViewServer(db, 4, SHARD_KEY)
        name = server.register(view, tau=8.0)
        stream = request_stream(view, db, 40, seed=2, skew=1.0, miss_rate=0.2)
        result = server.answer_batch(name, stream)
        for access, rows in zip(result.accesses, result.answers):
            assert list(rows) == oracle_answer(view, db, access)

    def test_scatter_answers_stay_sorted_and_disjoint(self, triangle_setup):
        _, db = triangle_setup
        view = scatter_view()
        server = ShardedViewServer(db, 4, SHARD_KEY)
        name = server.register(view, tau=8.0)
        for access in oracle_accesses(view, db, limit=8):
            rows = server.answer(name, tuple(access))
            assert rows == sorted(rows)
            assert len(rows) == len(set(rows))

    def test_pinned_view_matches_oracle(self, triangle_setup):
        _, db = triangle_setup
        view = parse_view("W^bf(y, z) = S(y, z)")
        server = ShardedViewServer(db, 3, SHARD_KEY)
        name = server.register(view, tau=4.0)
        for access in oracle_accesses(view, db, limit=5):
            assert server.answer(name, access) == oracle_answer(
                view, db, access
            )
        # Only shard 0 ever built anything.
        assert server.shards[0].total_builds() == 1
        assert all(s.total_builds() == 0 for s in server.shards[1:])

    def test_more_shards_than_values_still_serves(self, triangle_setup):
        view, db = triangle_setup
        server = ShardedViewServer(db, 16, SHARD_KEY)
        name = server.register(view, tau=8.0)
        for access in oracle_accesses(view, db, limit=4):
            assert server.answer(name, access) == oracle_answer(
                view, db, access
            )

    def test_duplicates_share_within_shards(self, triangle_setup):
        view, db = triangle_setup
        server = ShardedViewServer(db, 4, SHARD_KEY)
        name = server.register(view, tau=8.0)
        batch = [(1, 2), (2, 3), (1, 2), (1, 2)]
        result = server.answer_batch(name, batch)
        assert result.unique_count == 2
        assert result.shared_count == 2
        assert result.answers[0] is result.answers[2]

    def test_measured_scatter_stats_merge(self, triangle_setup):
        _, db = triangle_setup
        view = scatter_view()
        server = ShardedViewServer(db, 3, SHARD_KEY)
        name = server.register(view, tau=8.0)
        accesses = oracle_accesses(view, db, limit=4)
        result = server.answer_batch(name, accesses, measure=True)
        for access in set(tuple(a) for a in accesses):
            stats = result.request_stats[access]
            assert stats.outputs == len(oracle_answer(view, db, access))


class TestMergeDelayStats:
    def test_sums_and_maxima(self):
        merged = merge_delay_stats(
            [
                DelayStats(outputs=3, wall_total=0.5, wall_max_gap=0.2,
                           step_total=30, step_max_gap=7),
                DelayStats(outputs=2, wall_total=0.25, wall_max_gap=0.4,
                           step_total=12, step_max_gap=3),
            ]
        )
        assert merged.outputs == 5
        assert merged.wall_total == pytest.approx(0.75)
        assert merged.wall_max_gap == pytest.approx(0.4)
        assert merged.step_total == 42
        assert merged.step_max_gap == 7

    def test_empty_merge_is_zero(self):
        merged = merge_delay_stats([])
        assert merged.outputs == 0
        assert merged.step_max_gap == 0


class TestAggregation:
    def test_serve_stream_report_aggregates_shards(self, triangle_setup):
        view, db = triangle_setup
        server = ShardedViewServer(db, 4, SHARD_KEY)
        name = server.register(view, tau=8.0)
        stream = request_stream(view, db, 30, seed=4, skew=1.5)
        report = server.serve_stream(name, stream, batch_size=8)
        assert report.requests == 30
        assert report.batches == 4
        assert report.outputs == sum(
            len(oracle_answer(view, db, access)) for access in stream
        )
        # One build per shard that saw traffic, and never more than shards.
        assert 1 <= report.builds <= 4
        assert report.builds == server.total_builds()

    def test_cache_stats_and_invalidate_sum_over_shards(self, triangle_setup):
        view, db = triangle_setup
        server = ShardedViewServer(db, 4, SHARD_KEY)
        name = server.register(view, tau=8.0)
        stream = request_stream(view, db, 20, seed=1)
        server.answer_batch(name, stream, measure=False)
        touched = sum(1 for s in server.shards if s.total_builds())
        assert server.cache_stats.insertions == touched
        assert server.total_cache_cells > 0
        assert server.invalidate(name) == touched
        assert server.total_cache_cells == 0

    def test_unregister_drops_every_shard_and_the_route(self, triangle_setup):
        view, db = triangle_setup
        server = ShardedViewServer(db, 3, SHARD_KEY)
        name = server.register(view, tau=8.0)
        server.answer_batch(name, [(1, 2)], measure=False)
        assert server.unregister(name) is True
        assert server.views() == ()
        assert server.total_cache_cells == 0
        assert all(name not in s.views() for s in server.shards)
        with pytest.raises(SchemaError):
            server.route(name)
        assert server.unregister(name) is False
        # The name is reusable after a clean unregister.
        again = server.register(view, tau=8.0)
        assert server.route(again) == ("routed", 0)

    def test_concurrent_unregister_is_single_winner(self, triangle_setup):
        view, db = triangle_setup
        server = ShardedViewServer(db, 2, SHARD_KEY)
        name = server.register(view, tau=8.0)
        barrier = threading.Barrier(4)
        outcomes = []

        def racer():
            barrier.wait()
            outcomes.append(server.unregister(name))

        threads = [threading.Thread(target=racer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(outcomes) == [False, False, False, True]
        assert server.views() == ()

    def test_requests_served_counts_facade_requests(self, triangle_setup):
        view, db = triangle_setup
        server = ShardedViewServer(db, 4, SHARD_KEY)
        name = server.register(view, tau=8.0)
        server.answer_batch(name, [(1, 2), (2, 3)], measure=False)
        assert server.requests_served == 2
        # A scattered request fans out to every shard but is still one
        # request at the facade.
        scatter = server.register(scatter_view(), tau=8.0)
        server.answer_batch(scatter, [(2, 3), (3, 1), (2, 3)], measure=False)
        assert server.requests_served == 5

    def test_per_shard_tau_budgets_resolve_independently(self, triangle_setup):
        view, db = triangle_setup
        server = ShardedViewServer(db, 2, SHARD_KEY)
        name = server.register(view, space_budget=3.0 * db.total_tuples())
        for shard in server.shards:
            registration = shard.registration(name)
            assert registration.policy == "space-budget"
            assert registration.tau >= 1.0
        for access in oracle_accesses(view, db, limit=4):
            assert server.answer(name, access) == oracle_answer(
                view, db, access
            )
