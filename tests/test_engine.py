"""The access-serving engine: cache, ViewServer, batching, concurrency."""

import random
import threading

import pytest

from oracle import oracle_accesses, oracle_answer
from repro.core.structure import CompressedRepresentation
from repro.engine import RepresentationCache, ViewServer, representation_cells
from repro.exceptions import ParameterError, SchemaError
from repro.optimizer.min_delay import min_delay_cover
from repro.query.parser import parse_view
from repro.workloads import request_stream, triangle_database, triangle_view


@pytest.fixture
def triangle_setup():
    view = triangle_view("bbf")
    db = triangle_database(nodes=25, edges=120, seed=5)
    return view, db


def _build(view, db, tau):
    return CompressedRepresentation(view, db, tau=tau)


class TestRepresentationCache:
    def test_hit_miss_accounting(self, triangle_setup):
        view, db = triangle_setup
        cache = RepresentationCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", _build(view, db, 8.0))
        assert cache.get("a") is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self, triangle_setup):
        view, db = triangle_setup
        cache = RepresentationCache(max_entries=2)
        cache.put("a", _build(view, db, 4.0))
        cache.put("b", _build(view, db, 8.0))
        assert cache.get("a") is not None  # refresh 'a'; 'b' is now LRU
        evicted = cache.put("c", _build(view, db, 16.0))
        assert evicted == ["b"]
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_cell_budget_eviction(self, triangle_setup):
        view, db = triangle_setup
        first = _build(view, db, 8.0)
        cells = representation_cells(first)
        assert cells > 0
        # Room for one structure but not two of this size.
        cache = RepresentationCache(max_cells=int(cells * 1.5))
        cache.put("a", first)
        assert cache.total_cells == cells
        cache.put("b", _build(view, db, 8.0))
        assert cache.keys() == ("b",)
        assert cache.stats.evictions == 1

    def test_oversized_singleton_is_admitted(self, triangle_setup):
        view, db = triangle_setup
        cache = RepresentationCache(max_cells=1)
        cache.put("a", _build(view, db, 8.0))
        assert "a" in cache  # better one oversized entry than rebuild loops
        assert len(cache) == 1

    def test_replacement_updates_cells(self, triangle_setup):
        view, db = triangle_setup
        cache = RepresentationCache()
        cache.put("a", _build(view, db, 2.0))
        before = cache.total_cells
        cache.put("a", _build(view, db, 64.0))  # larger tau, smaller tree
        assert len(cache) == 1
        assert cache.total_cells == cache.cells_of("a") <= before

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ParameterError):
            RepresentationCache(max_entries=0)
        with pytest.raises(ParameterError):
            RepresentationCache(max_cells=0)


class TestViewServer:
    def test_answers_match_oracle(self, triangle_setup):
        view, db = triangle_setup
        server = ViewServer(db)
        name = server.register(view, tau=8.0)
        for access in oracle_accesses(view, db):
            assert server.answer(name, access) == oracle_answer(
                view, db, access
            )

    def test_cache_hit_and_miss(self, triangle_setup):
        view, db = triangle_setup
        server = ViewServer(db)
        name = server.register(view, tau=8.0)
        server.answer(name, (1, 2))
        assert server.build_count(name) == 1
        assert server.cache_stats.misses == 1
        server.answer(name, (2, 3))
        assert server.build_count(name) == 1  # same structure reused
        assert server.cache_stats.hits == 1
        server.answer_batch(name, [(1, 2)], tau=32.0)
        assert server.build_count(name, tau=32.0) == 1  # distinct key

    def test_lru_eviction_forces_rebuild(self, triangle_setup):
        view, db = triangle_setup
        server = ViewServer(db, max_entries=2)
        name = server.register(view, tau=2.0)
        for tau in (2.0, 4.0, 8.0):  # third build evicts tau=2
            server.representation(name, tau)
        assert server.cache_stats.evictions == 1
        generation = server.registration(name).generation
        assert (name, 2.0, generation) not in server.cache
        server.representation(name, 2.0)
        assert server.build_count(name, tau=2.0) == 2

    def test_reregistration_is_a_new_generation(self, triangle_setup):
        view, db = triangle_setup
        server = ViewServer(db)
        name = server.register(view, tau=8.0)
        server.representation(name)
        first = server.registration(name).generation
        assert server.unregister(name) is True
        assert len(server.cache) == 0
        assert server.total_builds() == 1  # lifetime total stays monotonic
        name = server.register(view, tau=8.0)
        assert server.registration(name).generation > first
        server.representation(name)
        # The new generation has its own cache key and build counter, so
        # a structure from the old generation can never be served as it.
        assert server.build_count(name) == 1
        assert len(server.cache) == 1

    def test_duplicate_registration_rejected(self, triangle_setup):
        view, db = triangle_setup
        server = ViewServer(db)
        server.register(view)
        with pytest.raises(SchemaError):
            server.register(view)
        # A different name for the same view is fine.
        server.register(view, name="other")
        assert set(server.views()) == {view.name, "other"}

    def test_at_most_one_knob(self, triangle_setup):
        view, db = triangle_setup
        server = ViewServer(db)
        with pytest.raises(ParameterError):
            server.register(view, tau=8.0, space_budget=1000.0)

    def test_invalidate_drops_all_taus(self, triangle_setup):
        view, db = triangle_setup
        server = ViewServer(db)
        name = server.register(view)
        server.representation(name, 4.0)
        server.representation(name, 8.0)
        assert server.invalidate(name) == 2
        assert len(server.cache) == 0

    def test_normalized_view_served(self, tiny_db):
        # A constant in the body exercises the normalization path.
        view = parse_view("C^bf(x, y) = R(x, y), S(y, 1)")
        server = ViewServer(tiny_db)
        name = server.register(view, tau=4.0)
        for access in oracle_accesses(view, tiny_db, limit=4):
            assert server.answer(name, access) == oracle_answer(
                view, tiny_db, access
            )


class TestBatchedServing:
    def test_batch_matches_oracle_per_request(self, triangle_setup):
        view, db = triangle_setup
        server = ViewServer(db)
        name = server.register(view, tau=8.0)
        stream = request_stream(view, db, 40, seed=9, skew=1.0, miss_rate=0.2)
        result = server.answer_batch(name, stream)
        assert len(result.answers) == len(stream)
        for access, rows in zip(result.accesses, result.answers):
            assert list(rows) == oracle_answer(view, db, access)

    def test_duplicates_share_one_traversal(self, triangle_setup):
        view, db = triangle_setup
        server = ViewServer(db)
        name = server.register(view, tau=8.0)
        batch = [(1, 2), (2, 3), (1, 2), (1, 2)]
        result = server.answer_batch(name, batch)
        assert result.unique_count == 2
        assert result.shared_count == 2
        # Duplicate requests literally share the representative's answer.
        assert result.answers[0] is result.answers[2]
        assert result.answers[0] is result.answers[3]
        assert set(result.request_stats) == {(1, 2), (2, 3)}

    def test_per_request_delay_stats(self, triangle_setup):
        view, db = triangle_setup
        server = ViewServer(db)
        name = server.register(view, tau=8.0)
        accesses = oracle_accesses(view, db, limit=6)
        result = server.answer_batch(name, accesses)
        for access in set(tuple(a) for a in accesses):
            stats = result.request_stats[access]
            assert stats.outputs == len(oracle_answer(view, db, access))
            assert stats.step_max_gap >= 0
        assert result.max_step_gap == max(
            s.step_max_gap for s in result.request_stats.values()
        )

    def test_serve_stream_report(self, triangle_setup):
        view, db = triangle_setup
        server = ViewServer(db)
        name = server.register(view, tau=8.0)
        stream = request_stream(view, db, 30, seed=4, skew=1.5)
        report = server.serve_stream(name, stream, batch_size=8)
        assert report.requests == 30
        assert report.batches == 4
        assert report.builds == 1
        assert report.unique_requests + report.shared_requests == 30
        assert report.outputs == sum(
            len(oracle_answer(view, db, access)) for access in stream
        )
        assert report.requests_per_second > 0

    def test_serve_stream_reports_per_stream_deltas(self, triangle_setup):
        view, db = triangle_setup
        server = ViewServer(db)
        name = server.register(view, tau=8.0)
        stream = request_stream(view, db, 10, seed=6)
        cold = server.serve_stream(name, stream, batch_size=4)
        warm = server.serve_stream(name, stream, batch_size=4)
        assert cold.builds == 1 and cold.cache.misses == 1
        assert warm.builds == 0 and warm.cache.misses == 0
        assert warm.cache.hits == warm.batches


class TestTauAutoSelection:
    def test_space_budget_respected(self, triangle_setup):
        view, db = triangle_setup
        budget = 3.0 * db.total_tuples()
        server = ViewServer(db)
        name = server.register(view, space_budget=budget)
        registration = server.registration(name)
        assert registration.policy == "space-budget"
        optimum = min_delay_cover(
            registration.natural_view, registration.sizes, budget
        )
        assert registration.tau == pytest.approx(max(1.0, optimum.tau))
        assert optimum.predicted_space(registration.sizes) <= budget * 1.01
        # The budget-selected structure still answers correctly.
        for access in oracle_accesses(view, db, limit=4):
            assert server.answer(name, access) == oracle_answer(
                view, db, access
            )

    def test_budget_cover_is_reused_by_the_build(self, triangle_setup):
        # Regression: the built structure must realize the optimized
        # tradeoff point, not fall back to the default max-slack cover.
        view, db = triangle_setup
        server = ViewServer(db)
        name = server.register(
            view, space_budget=1.5 * db.total_tuples()
        )
        registration = server.registration(name)
        built = server.representation(name)
        assert built.tau == registration.tau
        assert built.weights == pytest.approx(registration.weights)

    def test_tighter_space_budget_means_larger_tau(self, triangle_setup):
        view, db = triangle_setup
        n = db.total_tuples()
        server = ViewServer(db)
        tight = server.register(view, space_budget=1.5 * n, name="tight")
        loose = server.register(view, space_budget=20.0 * n, name="loose")
        assert (
            server.registration(tight).tau >= server.registration(loose).tau
        )

    def test_delay_budget_respected(self, triangle_setup):
        view, db = triangle_setup
        server = ViewServer(db)
        name = server.register(view, delay_budget=16.0)
        registration = server.registration(name)
        assert registration.policy == "delay-budget"
        assert registration.tau <= 16.0 * 1.01
        for access in oracle_accesses(view, db, limit=4):
            assert server.answer(name, access) == oracle_answer(
                view, db, access
            )


class TestCacheConcurrency:
    """Regression: eviction racing an in-flight build must not skew cells."""

    def _assert_accounting_exact(self, cache):
        residents = sum(
            representation_cells(cache.peek(key)) for key in cache.keys()
        )
        assert cache.total_cells == residents

    def test_get_or_build_hammer_keeps_accounting_exact(self):
        view = triangle_view("bbf")
        db = triangle_database(nodes=10, edges=35, seed=3)
        taus = [2.0, 4.0, 8.0, 16.0, 32.0]
        # A budget small enough that almost every publish evicts someone,
        # so evictions constantly race builds in flight.
        probe = _build(view, db, 8.0)
        cache = RepresentationCache(
            max_entries=3, max_cells=2 * representation_cells(probe)
        )
        errors = []

        def worker(seed):
            rng = random.Random(seed)
            try:
                for _ in range(15):
                    tau = rng.choice(taus)
                    built = cache.get_or_build(
                        ("V", tau), lambda tau=tau: _build(view, db, tau)
                    )
                    assert built.tau == tau
                    if rng.random() < 0.3:
                        cache.invalidate(("V", rng.choice(taus)))
            except Exception as error:  # propagate to the main thread
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        self._assert_accounting_exact(cache)
        stats = cache.stats
        assert stats.insertions >= 1
        assert stats.evictions >= 1  # the race under test actually happened

    def test_single_build_per_key_under_contention(self, triangle_setup):
        view, db = triangle_setup
        cache = RepresentationCache(max_entries=4)
        calls = []
        barrier = threading.Barrier(6)
        results = []

        def factory():
            calls.append(threading.get_ident())
            return _build(view, db, 8.0)

        def reader():
            barrier.wait()
            results.append(cache.get_or_build("k", factory))

        threads = [threading.Thread(target=reader) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1
        assert len(set(id(r) for r in results)) == 1
        # One call is one request — a wait-then-hit caller records its
        # miss only, a late-scheduled caller a plain hit.
        assert cache.stats.requests == 6
        assert cache.stats.misses >= 1
        self._assert_accounting_exact(cache)

    def test_failed_build_releases_the_key(self, triangle_setup):
        view, db = triangle_setup
        cache = RepresentationCache(max_entries=4)

        def broken():
            raise RuntimeError("flaky build")

        with pytest.raises(RuntimeError):
            cache.get_or_build("k", broken)
        # The key is not wedged: the next caller builds successfully.
        built = cache.get_or_build("k", lambda: _build(view, db, 8.0))
        assert built is cache.peek("k")
        self._assert_accounting_exact(cache)

    def test_invalidate_racing_publish_keeps_accounting_exact(
        self, triangle_setup
    ):
        view, db = triangle_setup
        cache = RepresentationCache(max_entries=4)
        release = threading.Event()
        mid_build = threading.Event()

        def slow_factory():
            mid_build.set()
            release.wait(timeout=5.0)
            return _build(view, db, 8.0)

        builder = threading.Thread(
            target=lambda: cache.get_or_build("k", slow_factory)
        )
        builder.start()
        mid_build.wait(timeout=5.0)
        # Invalidating a key whose build is in flight is a no-op drop …
        assert cache.invalidate("k") is False
        release.set()
        builder.join()
        # … and the publish lands with exact accounting.
        assert "k" in cache
        self._assert_accounting_exact(cache)


class TestConcurrency:
    def test_many_readers_one_build(self, triangle_setup):
        view, db = triangle_setup
        server = ViewServer(db)
        name = server.register(view, tau=8.0)
        accesses = oracle_accesses(view, db, limit=6)
        expected = {
            tuple(a): oracle_answer(view, db, a) for a in accesses
        }
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        failures = []

        def reader(thread_index):
            barrier.wait()  # maximize build contention on the cold cache
            for access in accesses:
                rows = server.answer(name, access)
                if rows != expected[tuple(access)]:
                    failures.append((thread_index, access))

        threads = [
            threading.Thread(target=reader, args=(i,))
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert server.build_count(name) == 1
        assert len(server.cache) == 1
        assert server.requests_served == n_threads * len(accesses)
