"""View-context internals and enumeration-order guarantees."""

import pytest

from oracle import oracle_accesses, oracle_answer
from repro.core.context import ViewContext
from repro.core.decomposed import DecomposedRepresentation
from repro.core.projection import ProjectedRepresentation
from repro.core.structure import CompressedRepresentation
from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.exceptions import QueryError
from repro.query.atoms import Variable
from repro.query.parser import parse_view
from repro.workloads.generators import path_database, triangle_database
from repro.workloads.queries import (
    path_view,
    running_example_database,
    running_example_view,
    triangle_view,
)


class TestViewContext:
    @pytest.fixture
    def ctx(self):
        return ViewContext(running_example_view(), running_example_database())

    def test_orders_follow_head(self, ctx):
        assert [v.name for v in ctx.free_order] == ["x", "y", "z"]
        assert [v.name for v in ctx.bound_order] == ["w1", "w2", "w3"]

    def test_atom_variable_split(self, ctx):
        r1 = ctx.atoms[0]
        assert [v.name for v in r1.bound_vars] == ["w1"]
        assert [v.name for v in r1.free_vars] == ["x", "y"]
        assert r1.bound_access_positions == (0,)
        assert r1.free_coordinates == (0, 1)

    def test_subtrie_descends_bound_values(self, ctx):
        r1 = ctx.atoms[0]
        node = r1.subtrie((1, 9, 9))  # only w1 = 1 matters for R1
        assert node is not None
        assert node.count == 3
        assert r1.subtrie((7, 9, 9)) is None

    def test_contains_assembles_keys(self, ctx):
        r1 = ctx.atoms[0]
        assert r1.contains((1, 0, 0), (1, 1, 999))  # (w1,x,y) = (1,1,1)
        assert not r1.contains((1, 0, 0), (2, 2, 999))

    def test_beta_matches_joins_all_atoms(self, ctx):
        # (w1,w2,w3) = (1,1,1) with (x,y,z) = (1,2,1): R1(1,1,2) ✓,
        # R2(1,2,1) ✓, R3(1,1,1) ✓.
        assert ctx.beta_matches((1, 1, 1), (1, 2, 1))
        assert not ctx.beta_matches((1, 1, 1), (2, 2, 2))

    def test_free_ranges_skip_unrestricted(self, ctx):
        from repro.core.intervals import FBox, ScalarInterval

        box = FBox.canonical(ctx.space, (0,), ScalarInterval(0, 0))
        ranges = ctx.free_ranges_of_box(box)
        names = {v.name for v in ranges}
        assert names == {"x", "y"}  # z spans its whole domain

    def test_rejects_non_full_views(self):
        view = parse_view("Q^bf(x, y) = R(x, y), S(y, z)")
        db = Database(
            [Relation("R", 2, [(1, 2)]), Relation("S", 2, [(2, 3)])]
        )
        with pytest.raises(QueryError):
            ViewContext(view, db)

    def test_rejects_arity_mismatch(self):
        view = parse_view("Q^bf(x, y) = R(x, y)")
        db = Database([Relation("R", 3, [(1, 2, 3)])])
        with pytest.raises(QueryError):
            ViewContext(view, db)


class TestEnumerationOrder:
    def test_decomposed_per_bag_lexicographic(self):
        """Theorem 2's order: lexicographic within each bag's free vars,
        nested by the pre-order — verified as 'grouped and sorted by the
        decomposition order' on the output."""
        view = path_view(3)
        db = path_database(3, 50, 9, seed=71)
        dr = DecomposedRepresentation(view, db)
        # Decomposition variable order: concatenate bag free vars in
        # pre-order; results must be sorted under that permutation.
        order = []
        for node in dr._preorder:
            order.extend(dr.bags[node].free_vars)
        positions = [dr.view.free_variables.index(v) for v in order]
        for access in oracle_accesses(view, db, limit=6):
            rows = list(dr.enumerate(access))
            permuted = [tuple(row[p] for p in positions) for row in rows]
            assert permuted == sorted(permuted)

    def test_projection_output_sorted(self):
        view = triangle_view("bff")
        db = triangle_database(14, 55, seed=72)
        pr = ProjectedRepresentation(
            view, db, tau=3.0, projected=[Variable("z")]
        )
        for access in oracle_accesses(view, db, limit=6):
            rows = pr.answer(access)
            assert rows == sorted(set(rows))

    def test_boolean_projection_example2(self):
        """Example 2's third adornment: ∆^b(x) = R(x,y), S(y,z), T(z,x) —
        'does some triangle contain x?' — via projecting y and z."""
        view = triangle_view("bff")
        db = triangle_database(14, 60, seed=73)
        pr = ProjectedRepresentation(
            view, db, tau=4.0, projected=[Variable("y"), Variable("z")]
        )
        for x in range(14):
            expected = bool(oracle_answer(view, db, (x,)))
            assert pr.exists((x,)) == expected
            assert pr.answer((x,)) == ([()] if expected else [])


class TestStructureRobustness:
    def test_heterogeneous_relation_sizes(self):
        view = parse_view("Q^bff(x, y, z) = R(x, y), S(y, z)")
        db = Database(
            [
                Relation("R", 2, [(1, k) for k in range(50)]),
                Relation("S", 2, [(0, 0), (1, 1)]),
            ]
        )
        for tau in (1.0, 8.0):
            cr = CompressedRepresentation(view, db, tau=tau)
            for access in [(1,), (0,), (9,)]:
                assert cr.answer(access) == oracle_answer(view, db, access)

    def test_single_atom_view(self):
        view = parse_view("Q^bf(x, y) = R(x, y)")
        db = Database([Relation("R", 2, [(1, 5), (1, 3), (2, 4)])])
        cr = CompressedRepresentation(view, db, tau=1.0)
        assert cr.answer((1,)) == [(3,), (5,)]
        assert cr.answer((2,)) == [(4,)]
        assert cr.answer((3,)) == []

    def test_wide_atom(self):
        view = parse_view(
            "Q^bbff(a, b, c, d) = R(a, b, c, d), S(c, d)"
        )
        db = Database(
            [
                Relation(
                    "R",
                    4,
                    [(1, 2, 3, 4), (1, 2, 3, 5), (1, 2, 6, 7), (8, 9, 3, 4)],
                ),
                Relation("S", 2, [(3, 4), (6, 7)]),
            ]
        )
        cr = CompressedRepresentation(view, db, tau=2.0)
        assert cr.answer((1, 2)) == [(3, 4), (6, 7)]
        assert cr.answer((8, 9)) == [(3, 4)]

    def test_string_valued_domains(self):
        """Domains are any mutually comparable values, not just ints."""
        view = parse_view("Q^bf(x, y) = R(x, y), S(y)")
        db = Database(
            [
                Relation(
                    "R", 2, [("ann", "bob"), ("ann", "cat"), ("dan", "eve")]
                ),
                Relation("S", 1, [("bob",), ("eve",)]),
            ]
        )
        cr = CompressedRepresentation(view, db, tau=1.0)
        assert cr.answer(("ann",)) == [("bob",)]
        assert cr.answer(("dan",)) == [("eve",)]
        assert cr.answer(("zoe",)) == []

    def test_tau_float_and_int_equivalent(self):
        view = triangle_view("bbf")
        db = triangle_database(12, 45, seed=74)
        a = CompressedRepresentation(view, db, tau=4)
        b = CompressedRepresentation(view, db, tau=4.0)
        for access in oracle_accesses(view, db, limit=5):
            assert a.answer(access) == b.answer(access)
