"""Rendezvous routing tables: placement stability is the whole contract.

Three properties carry the elastic topology:

* **restart stability** — ``stable_hash`` (and therefore every routing
  decision) must not depend on ``PYTHONHASHSEED``, or a restarted
  server would route the same keys to different shards than the one
  that built the snapshots. Verified in real subprocesses.
* **equality consistency** — values that compare equal (``1``, ``1.0``,
  ``True``) must hash alike, since relations dedupe rows by equality.
* **minimal movement** — splitting one leaf of ``n`` re-rendezvouses
  only that leaf's keys between its two children; every other shard's
  key set is bit-identical before and after. Hierarchical rendezvous
  gives this by construction; the tests pin it.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.engine.topology import (
    RoutingTable,
    assignment_of,
    rendezvous_choice,
    stable_hash,
)
from repro.exceptions import ParameterError

KEYS = [
    *range(200),
    *(f"user-{i}" for i in range(50)),
    *((i, f"k{i}") for i in range(50)),
]


def _run_seeded(script: str, hash_seed: str) -> str:
    """Run ``script`` in a fresh interpreter under one PYTHONHASHSEED."""
    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src, env.get("PYTHONPATH", "")) if part
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestStableHash:
    def test_equal_values_hash_alike(self):
        assert stable_hash(1) == stable_hash(1.0) == stable_hash(True)
        assert stable_hash((1,)) == stable_hash((1.0,))
        assert stable_hash((1, "a")) == stable_hash((1.0, "a"))

    def test_distinct_values_spread(self):
        hashes = {stable_hash(key) for key in KEYS}
        assert len(hashes) > len(KEYS) * 0.95

    def test_restart_stable_across_hash_seeds(self):
        """The satellite contract, verified in real interpreters.

        ``PYTHONHASHSEED`` randomizes ``hash(str)`` per process; a
        placement function built on it would scatter a restarted
        server's keys. Two subprocesses with different seeds must agree
        on every hash — including the equality-consistency edge cases
        ``1`` vs ``1.0`` and ``(1,)`` vs ``(1.0,)``.
        """
        script = (
            "import json, sys\n"
            "from repro.engine.topology import stable_hash\n"
            "probes = [\n"
            "    'a', 'user-17', b'bytes', 0, 1, -1, 2**40,\n"
            "    (1, 'a'), ('x', ('y', 3)), (), None,\n"
            "    1.0, (1.0,), (1,), True,\n"
            "]\n"
            "print(json.dumps([stable_hash(p) for p in probes]))\n"
            "assert stable_hash(1) == stable_hash(1.0)\n"
            "assert stable_hash((1,)) == stable_hash((1.0,))\n"
        )
        outputs = [
            json.loads(_run_seeded(script, seed)) for seed in ("0", "42")
        ]
        assert outputs[0] == outputs[1]

    def test_routing_table_placement_is_restart_stable(self):
        """Whole-table placement agrees across differently-seeded runs."""
        script = (
            "import json\n"
            "from repro.engine.topology import RoutingTable\n"
            "table = RoutingTable.fresh(5).split('2').split('2.1')\n"
            "keys = [*range(100), *(f'user-{i}' for i in range(25))]\n"
            "print(json.dumps({str(k): table.shard_for(k) for k in keys}))\n"
        )
        outputs = [
            json.loads(_run_seeded(script, seed)) for seed in ("1", "7777")
        ]
        assert outputs[0] == outputs[1]


class TestRendezvousChoice:
    def test_deterministic_and_total(self):
        candidates = ("0", "1", "2", "3")
        for key in KEYS:
            first = rendezvous_choice(candidates, stable_hash(key))
            assert first in candidates
            assert first == rendezvous_choice(candidates, stable_hash(key))

    def test_reasonably_balanced(self):
        candidates = ("0", "1", "2", "3")
        counts = {c: 0 for c in candidates}
        for key in KEYS:
            counts[rendezvous_choice(candidates, stable_hash(key))] += 1
        assert min(counts.values()) > 0
        assert max(counts.values()) < len(KEYS) * 0.6


class TestRoutingTable:
    def test_fresh_table_shape(self):
        table = RoutingTable.fresh(4)
        assert table.version == 1
        assert table.n_shards == 4
        assert table.shard_ids == ("0", "1", "2", "3")
        assert all(table.is_leaf(s) for s in table.shard_ids)

    def test_validation_errors(self):
        with pytest.raises(ParameterError):
            RoutingTable.fresh(0)
        with pytest.raises(ParameterError):
            RoutingTable([], {})
        with pytest.raises(ParameterError):
            RoutingTable(["0", "0"], {})
        with pytest.raises(ParameterError):
            RoutingTable(["0"], {}, version=0)
        with pytest.raises(ParameterError):
            RoutingTable(["0"], {"0": ["0.0"]})  # one child
        with pytest.raises(ParameterError):
            RoutingTable(["0"], {"9": ["9.0", "9.1"]})  # unknown parent
        with pytest.raises(ParameterError):
            RoutingTable.fresh(2).split("7")  # not a live shard

    def test_split_bumps_version_and_replaces_the_leaf(self):
        table = RoutingTable.fresh(3)
        split = table.split("1")
        assert split.version == table.version + 1
        assert table.shard_ids == ("0", "1", "2")  # original untouched
        assert split.shard_ids == ("0", "1.0", "1.1", "2")
        assert not split.is_leaf("1")
        assert split.children("1") == ("1.0", "1.1")

    def test_split_moves_only_the_split_shards_keys(self):
        table = RoutingTable.fresh(4)
        before = assignment_of(table, KEYS)
        split = table.split("2")
        after = assignment_of(split, KEYS)
        for shard in ("0", "1", "3"):
            assert after[shard] == before[shard]
        rehomed = set(after["2.0"]) | set(after["2.1"])
        assert rehomed == set(before["2"])
        # At most 1/n of all keys move (exactly the split shard's keys).
        moved = sum(
            1 for key in KEYS if table.shard_for(key) != split.shard_for(key)
        )
        assert moved == len(before["2"])
        assert moved <= len(KEYS)  # sanity: and typically ~ len/4

    def test_recursive_splits_stay_minimal(self):
        table = RoutingTable.fresh(3).split("0")
        before = assignment_of(table, KEYS)
        deeper = table.split("0.1")
        after = assignment_of(deeper, KEYS)
        for shard in ("0.0", "1", "2"):
            assert after[shard] == before[shard]
        assert set(after["0.1.0"]) | set(after["0.1.1"]) == set(before["0.1"])

    def test_serialization_round_trip(self):
        table = RoutingTable.fresh(5).split("3").split("3.0")
        clone = RoutingTable.from_json(table.to_json())
        assert clone == table
        assert clone.version == table.version
        assert clone.shard_ids == table.shard_ids
        assert [clone.shard_for(k) for k in KEYS] == [
            table.shard_for(k) for k in KEYS
        ]
        state = table.to_state()
        assert json.loads(table.to_json()) == json.loads(
            json.dumps(state, sort_keys=True)
        )
        assert RoutingTable.from_state(state) == table

    def test_index_for_matches_shard_for(self):
        table = RoutingTable.fresh(4).split("1")
        for key in KEYS[:50]:
            assert (
                table.shard_ids[table.index_for(key)] == table.shard_for(key)
            )

    def test_equality_and_hash(self):
        a = RoutingTable.fresh(3)
        b = RoutingTable.fresh(3)
        assert a == b and hash(a) == hash(b)
        assert a != a.split("0")
        assert a != "not a table"
