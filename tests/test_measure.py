"""Measurement utilities: space accounting, delay probes, sweeps."""


from repro.joins.generic_join import JoinCounter
from repro.measure.delay import measure_enumeration
from repro.measure.space import SpaceReport
from repro.measure.tradeoff import format_table, sweep_tau, tradeoff_rows
from repro.workloads.generators import triangle_database
from repro.workloads.queries import triangle_view
from oracle import oracle_accesses


class TestSpaceReport:
    def test_component_sums(self):
        report = SpaceReport(
            base_tuples=10,
            index_cells=20,
            tree_nodes=5,
            dictionary_entries=7,
            materialized_tuples=3,
        )
        assert report.structure_cells == 15
        assert report.total_cells == 45

    def test_addition(self):
        a = SpaceReport(base_tuples=1, tree_nodes=2)
        b = SpaceReport(base_tuples=3, dictionary_entries=4)
        c = a + b
        assert c.base_tuples == 4
        assert c.tree_nodes == 2
        assert c.dictionary_entries == 4


class TestDelayMeasurement:
    def test_counts_outputs_and_gaps(self):
        def slow_iter(counter):
            for i in range(5):
                counter.steps += i + 1
                yield i

        counter = JoinCounter()
        stats = measure_enumeration(
            slow_iter(counter), counter=counter, keep_gaps=True
        )
        assert stats.outputs == 5
        assert stats.step_total == 15
        assert stats.step_max_gap == 5
        # Five output gaps plus the exhaustion gap.
        assert len(stats.step_gaps) == 6

    def test_empty_enumeration(self):
        stats = measure_enumeration(iter(()))
        assert stats.outputs == 0
        assert stats.wall_total >= 0
        assert stats.wall_first >= 0

    def test_wall_clock_monotone(self):
        stats = measure_enumeration(iter(range(100)))
        assert stats.wall_total >= stats.wall_max_gap >= 0


class TestSweep:
    def test_sweep_shapes(self):
        view = triangle_view("bbf")
        db = triangle_database(14, 50, seed=1)
        accesses = oracle_accesses(view, db, limit=4)
        points = sweep_tau(view, db, taus=(2.0, 16.0), accesses=accesses)
        assert len(points) == 2
        assert points[0].tau == 2.0
        # Space decreases (weakly) with tau.
        assert (
            points[0].space.structure_cells
            >= points[1].space.structure_cells
        )
        rows = tradeoff_rows(points)
        assert len(rows) == 2

    def test_format_table(self):
        text = format_table(
            [(1, 2.5, "x")], headers=("a", "b", "c"), title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1]
        assert "2.500" in lines[3]
