"""The Cohen-Porat set intersection special case (Section 3.1)."""

import pytest

from repro.exceptions import ParameterError
from repro.joins.generic_join import JoinCounter
from repro.setintersection.cohen_porat import (
    SetIntersectionIndex,
    k_set_intersection_view,
)
from repro.workloads.generators import set_family


class TestView:
    def test_view_shape(self):
        view = k_set_intersection_view(3)
        assert view.pattern == "bbbf"
        assert len(view.atoms) == 3
        assert all(atom.relation == "R" for atom in view.atoms)

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            k_set_intersection_view(0)


class TestIntersection:
    @pytest.fixture
    def family(self):
        return {
            "a": [1, 2, 3, 4, 5],
            "b": [4, 5, 6, 7],
            "c": [5, 7, 9],
            "d": [],
        }

    def test_pairwise_intersections(self, family):
        index = SetIntersectionIndex(family, tau=2.0)
        for left in family:
            for right in family:
                expected = sorted(set(family[left]) & set(family[right]))
                assert index.intersection(left, right) == expected

    def test_sorted_output(self, family):
        index = SetIntersectionIndex(family, tau=2.0)
        result = index.intersection("a", "b")
        assert result == sorted(result)

    def test_disjointness(self, family):
        index = SetIntersectionIndex(family, tau=2.0)
        assert index.are_disjoint("a", "d")
        assert index.are_disjoint("c", "d")
        assert not index.are_disjoint("a", "b")

    def test_three_way(self, family):
        index = SetIntersectionIndex(family, tau=2.0, k=3)
        assert index.intersection("a", "b", "c") == [5]
        assert index.intersection("a", "b", "d") == []

    def test_wrong_arity_rejected(self, family):
        index = SetIntersectionIndex(family, tau=2.0, k=2)
        with pytest.raises(ParameterError):
            index.intersection("a", "b", "c")

    def test_self_intersection(self, family):
        index = SetIntersectionIndex(family, tau=2.0)
        assert index.intersection("a", "a") == sorted(family["a"])


class TestTradeoff:
    def test_random_families_all_pairs(self):
        family = set_family(8, universe=40, mean_size=12, seed=3, skew=0.8)
        for tau in (1.0, 4.0, 32.0):
            index = SetIntersectionIndex(family, tau=tau)
            for left in family:
                for right in family:
                    expected = sorted(
                        set(family[left]) & set(family[right])
                    )
                    assert index.intersection(left, right) == expected

    def test_space_decreases_with_tau(self):
        family = set_family(12, universe=60, mean_size=20, seed=4, skew=1.0)
        cells = [
            SetIntersectionIndex(family, tau=tau)
            .space_report()
            .structure_cells
            for tau in (1.0, 4.0, 16.0, 64.0)
        ]
        assert cells == sorted(cells, reverse=True)

    def test_delay_bounded_by_tau_scale(self):
        """Probes between outputs stay O(τ · polylog)."""
        family = set_family(10, universe=50, mean_size=18, seed=5, skew=1.0)
        index = SetIntersectionIndex(family, tau=4.0)
        depth = max(1, index.representation.tree.depth())
        ids = index.set_ids()
        for left in ids[:5]:
            for right in ids[:5]:
                counter = JoinCounter()
                last = 0
                worst_gap = 0
                for _ in index.intersect(left, right, counter=counter):
                    worst_gap = max(worst_gap, counter.steps - last)
                    last = counter.steps
                worst_gap = max(worst_gap, counter.steps - last)
                assert worst_gap <= 24 * 4.0 * depth
