"""Collection must stay clean — the conftest-collision class of bug.

The seed suite failed at *collection*: test modules did ``from conftest
import …`` and pytest resolved that against ``benchmarks/conftest.py``,
so every module errored before a single test ran. This test invokes
collection in a fresh subprocess from the repo root — exactly what the
tier-1 command does — and fails loudly if any collection error returns.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _collect(*extra_args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "--collect-only",
            "-q",
            "-p",
            "no:cacheprovider",
            *extra_args,
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_tier1_collection_has_no_errors():
    result = _collect()
    assert result.returncode == 0, (
        f"collection failed (exit {result.returncode}):\n"
        f"{result.stdout}\n{result.stderr}"
    )
    assert _no_error_markers(result.stdout), result.stdout
    # The seed suite had 457 tests; collection must never shrink below it.
    summary = result.stdout.strip().splitlines()[-1]
    collected = int(summary.split()[0])
    assert collected >= 457, summary


def _no_error_markers(stdout: str) -> bool:
    """No pytest error report in the output (test *ids* may contain 'error').

    Collection failures surface as ``ERROR`` lines and an ``N errors``
    summary; both are checked, neither matches a test id.
    """
    if "ERROR" in stdout:
        return False
    summary = stdout.strip().splitlines()[-1] if stdout.strip() else ""
    return "error" not in summary


def test_benchmark_collection_has_no_errors():
    result = _collect("benchmarks/")
    assert result.returncode == 0, (
        f"benchmark collection failed (exit {result.returncode}):\n"
        f"{result.stdout}\n{result.stderr}"
    )
    assert _no_error_markers(result.stdout), result.stdout
