"""Process-parallel builds: workers build + snapshot, the parent decodes.

The contract under test: a structure built in a worker process is
bit-identical (answers, delay steps, space) to one built in-process; the
builder falls back gracefully — and permanently — when the pool is
unusable; and the engine layers (``ViewServer``, ``ShardedViewServer``,
``AsyncViewServer``) wire the builder through without changing any
serving semantics.
"""

from __future__ import annotations

import asyncio

import pytest

from oracle import oracle_answer
from repro import (
    AsyncViewServer,
    CompressedRepresentation,
    ShardedViewServer,
    ViewServer,
)
from repro.core.snapshot import database_state, decode_snapshot, view_state
from repro.engine.parallel import ParallelBuilder, build_snapshot_blob
from repro.workloads import triangle_database, triangle_view
from repro.workloads.streams import productive_accesses


@pytest.fixture(scope="module")
def workload():
    view = triangle_view("bbf")
    db = triangle_database(nodes=25, edges=130, seed=9)
    return view, db


def _same_structure(a, b, view, db):
    accesses = productive_accesses(view, db)[:6] + [(-1, -1)]
    for access in accesses:
        assert a.answer(access) == b.answer(access)
    assert a.space_report().total_cells == b.space_report().total_cells
    assert sorted(a.dictionary.items()) == sorted(b.dictionary.items())


class TestWorkerFunction:
    def test_build_snapshot_blob_round_trips(self, workload):
        view, db = workload
        blob = build_snapshot_blob(
            view_state(view), database_state(db), 8.0, None
        )
        built = decode_snapshot(blob)
        reference = CompressedRepresentation(view, db, tau=8.0)
        _same_structure(built, reference, view, db)

    def test_weights_ride_along(self, workload):
        view, db = workload
        reference = CompressedRepresentation(view, db, tau=8.0)
        items = tuple(sorted(reference.weights.items()))
        built = decode_snapshot(
            build_snapshot_blob(view_state(view), database_state(db), 8.0, items)
        )
        assert built.weights == reference.weights


class TestParallelBuilder:
    def test_process_build_matches_inprocess(self, workload):
        view, db = workload
        with ParallelBuilder(max_workers=2) as builder:
            built = builder.build(view, db, tau=8.0)
            assert builder.process_builds == 1
            assert builder.fallback_builds == 0
        reference = CompressedRepresentation(view, db, tau=8.0)
        _same_structure(built, reference, view, db)

    def test_broken_pool_falls_back_in_process(self, workload):
        view, db = workload
        builder = ParallelBuilder(max_workers=1)
        builder._mark_broken()
        built = builder.build(view, db, tau=8.0)
        assert builder.is_broken
        assert builder.fallback_builds == 1
        assert builder.process_builds == 0
        _same_structure(
            built, CompressedRepresentation(view, db, tau=8.0), view, db
        )

    def test_closed_builder_keeps_building(self, workload):
        view, db = workload
        builder = ParallelBuilder(max_workers=1)
        builder.close()
        built = builder.build(view, db, tau=8.0)
        assert builder.fallback_builds == 1
        assert built.answer((3, 7)) == CompressedRepresentation(
            view, db, tau=8.0
        ).answer((3, 7))

    def test_worker_errors_propagate_not_swallowed(self, workload):
        view, db = workload
        from repro.exceptions import ReproError

        with ParallelBuilder(max_workers=1) as builder:
            with pytest.raises(ReproError):
                builder.build(view, db, tau=-1.0)  # invalid tau everywhere
            # The pool is still healthy after an application error.
            assert not builder.is_broken
            built = builder.build(view, db, tau=8.0)
            assert builder.process_builds == 1
        assert built is not None


class TestEngineWiring:
    def test_view_server_build_workers(self, workload):
        view, db = workload
        server = ViewServer(db, build_workers=2)
        try:
            name = server.register(view, tau=8.0)
            representation = server.representation(name)
            assert server.total_builds() == 1
            assert server.builder.process_builds == 1
            for access in productive_accesses(view, db)[:5]:
                assert representation.answer(access) == oracle_answer(
                    view, db, access
                )
        finally:
            server.close()

    def test_sharded_prebuild_uses_one_shared_pool(self, workload):
        view, db = workload
        shard_key = {"R": 0, "T": 1}
        parallel = ShardedViewServer(db, 3, shard_key, build_workers=2)
        try:
            name = parallel.register(view, tau=8.0)
            representations = parallel.prebuild(name)
            assert len(representations) == 3
            assert parallel.total_builds() == 3
            assert parallel.builder.process_builds == 3
            for server in parallel.shards:
                assert server.builder is parallel.builder
            # Prebuilt structures serve without further builds.
            baseline = ShardedViewServer(db, 3, shard_key)
            ref = baseline.register(view, tau=8.0)
            accesses = productive_accesses(view, db)[:8]
            got = parallel.answer_batch(name, accesses, measure=False)
            expected = baseline.answer_batch(ref, accesses, measure=False)
            assert got.answers == expected.answers
            assert parallel.total_builds() == 3
        finally:
            parallel.close()

    def test_prebuild_unknown_view_fails_fast(self, workload):
        _, db = workload
        from repro.exceptions import SchemaError

        server = ShardedViewServer(db, 2, {"R": 0})
        with pytest.raises(SchemaError, match="unknown view"):
            server.prebuild("nope")

    def test_async_server_owns_its_backend_builder(self, workload):
        view, db = workload
        server = AsyncViewServer(db, build_workers=1)
        name = server.register(view, tau=8.0)

        async def drive():
            return await server.serve(
                name, productive_accesses(view, db)[:4], measure=False
            )

        result = asyncio.run(drive())
        assert server.backend.builder.process_builds == 1
        server.close()
        assert server.backend.builder.is_broken  # pool released with facade
        assert result.result.outputs > 0
