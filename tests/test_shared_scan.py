"""Shared-scan batch execution: one traversal, many cursors.

Covers the batch/cursor interaction across every backend: shared-scan
answers must equal per-request cursor answers on the plain, sharded
(routed and scatter) and async servers — with limit and resume-token
requests mixed into a shared group, duplicate requests sharing a lane,
and empty-prefix groups — plus the core merged descent's parity with
solo enumeration, its demand-driven pruning, and the prefix-sharing
workload generator.
"""

import asyncio

import pytest

from oracle import oracle_answer
from repro.core.context import SubtrieCache
from repro.core.decomposed import DecomposedRepresentation
from repro.core.dynamic import DynamicRepresentation
from repro.core.structure import CompressedRepresentation
from repro.engine import (
    AccessRequest,
    AsyncViewServer,
    ShardedViewServer,
    SharedScan,
    ViewServer,
    open_group,
)
from repro.exceptions import ParameterError, QueryError
from repro.joins.generic_join import JoinCounter
from repro.query.parser import parse_view
from repro.workloads.generators import triangle_database
from repro.workloads.queries import triangle_view
from repro.workloads.streams import prefix_batch_requests, productive_accesses

VIEW = triangle_view("bbf")
SCATTER_VIEW = parse_view("Rev^bbf(y, z, x) = R(x, y), S(y, z), T(z, x)")
SHARD_KEY = {"R": 0, "T": 1}
TAU = 6.0


@pytest.fixture(scope="module")
def db():
    return triangle_database(nodes=24, edges=140, seed=17)


@pytest.fixture(scope="module")
def server(db):
    server = ViewServer(db)
    server.register(VIEW, tau=TAU, name="V")
    return server


@pytest.fixture(scope="module")
def accesses(db):
    return productive_accesses(VIEW, db)


@pytest.fixture(scope="module")
def mixed_batch(db, accesses):
    """Duplicates, misses, limits and resume tokens in one shared group."""
    heavy = sorted(
        accesses, key=lambda a: len(oracle_answer(VIEW, db, a)), reverse=True
    )[:4]
    full = oracle_answer(VIEW, db, heavy[0])
    return [
        AccessRequest(view="V", access=heavy[0]),
        AccessRequest(view="V", access=heavy[1], limit=2),
        AccessRequest(view="V", access=heavy[0]),  # duplicate
        AccessRequest(view="V", access=heavy[0], start_after=full[0]),
        AccessRequest(view="V", access=(-1, -2)),  # guaranteed miss
        AccessRequest(view="V", access=heavy[2], limit=0),
        AccessRequest(view="V", access=heavy[3], start_after=full[-1]),
        AccessRequest(view="V", access=heavy[1], limit=2),  # duplicate w/ limit
    ]


def expected_answer(db, request):
    rows = oracle_answer(VIEW, db, request.access)
    if request.start_after is not None:
        token = tuple(request.start_after)
        rows = rows[rows.index(token) + 1:] if token in rows else [
            row for row in rows if row > token
        ]
    if request.limit is not None:
        rows = rows[: request.limit]
    return rows


class TestPlainBackendParity:
    def test_mixed_group_equals_per_request_cursors(
        self, db, server, mixed_batch
    ):
        shared = [c.fetchall() for c in server.open_batch(mixed_batch)]
        solo = [server.open(r).fetchall() for r in mixed_batch]
        assert shared == solo
        assert shared == [expected_answer(db, r) for r in mixed_batch]

    def test_full_productive_batch_matches_oracle(self, db, server, accesses):
        requests = [AccessRequest(view="V", access=a) for a in accesses]
        for request, cursor in zip(requests, server.open_batch(requests)):
            assert cursor.fetchall() == oracle_answer(VIEW, db, request.access)

    def test_duplicates_share_one_traversal_lane(self, server, accesses):
        batch = [AccessRequest(view="V", access=accesses[0])] * 5
        scan = SharedScan(server.representation("V"), batch)
        cursors = scan.cursors()
        answers = [c.fetchall() for c in cursors]
        assert all(rows == answers[0] for rows in answers)
        assert scan.stats().states == 1
        assert scan.stats().shared_requests == 4

    def test_empty_prefix_group_all_accesses_distinct(self, db, server, accesses):
        # No shared prefixes at all: the scan still answers correctly,
        # one state per distinct access.
        batch = [AccessRequest(view="V", access=a) for a in accesses[:6]]
        scan = SharedScan(server.representation("V"), batch)
        for request, cursor in zip(batch, scan.cursors()):
            assert cursor.fetchall() == oracle_answer(VIEW, db, request.access)
        assert scan.stats().states == len(batch)

    def test_group_of_empty_access_tuples(self, db):
        # A fully-free view's only access is (): the whole group is one
        # state however many requests ride it.
        free_view = triangle_view("fff")
        server = ViewServer(db)
        server.register(free_view, tau=TAU, name="F")
        batch = [
            AccessRequest(view="F", access=()),
            AccessRequest(view="F", access=(), limit=3),
            AccessRequest(view="F", access=()),
        ]
        cursors = server.open_batch(batch)
        full = oracle_answer(free_view, db, ())
        assert cursors[0].fetchall() == full
        assert cursors[1].fetchall() == full[:3]
        assert cursors[2].fetchall() == full
        scan = SharedScan(server.representation("F"), batch)
        [c.fetchall() for c in scan.cursors()]
        assert scan.stats().states == 1

    def test_mixed_views_group_by_view_and_tau(self, db, server, accesses):
        server2 = ViewServer(db)
        server2.register(VIEW, tau=TAU, name="V")
        batch = [
            AccessRequest(view="V", access=accesses[0]),
            AccessRequest(view="V", access=accesses[0], tau=12.0),
            AccessRequest(view="V", access=accesses[1]),
        ]
        cursors = server2.open_batch(batch)
        for request, cursor in zip(batch, cursors):
            assert cursor.fetchall() == oracle_answer(VIEW, db, request.access)
        # One build per distinct tau actually requested.
        assert server2.build_count("V") == 1
        assert server2.build_count("V", 12.0) == 1

    def test_answer_batch_rides_the_shared_scan(self, db, server, accesses):
        batch = [accesses[0], accesses[1], accesses[0], (-5, -6)]
        result = server.answer_batch("V", batch)
        assert result.unique_count == 3
        assert result.shared_count == 1
        assert result.answers[0] is result.answers[2]
        for access, rows in zip(result.accesses, result.answers):
            assert list(rows) == oracle_answer(VIEW, db, access)

    def test_measured_group_stats_match_solo_semantics(
        self, db, server, accesses
    ):
        heavy = max(accesses, key=lambda a: len(oracle_answer(VIEW, db, a)))
        with server.open("V", heavy, measure=True) as cursor:
            cursor.fetchall()
            solo = cursor.stats()
        batch = server.answer_batch("V", [heavy, accesses[0]], measure=True)
        stats = batch.request_stats[heavy]
        assert stats.outputs == solo.outputs
        assert stats.step_total == solo.step_total
        assert stats.step_max_gap == solo.step_max_gap

    def test_wrong_arity_access_raises_on_drain(self, server):
        cursors = server.open_batch(
            [AccessRequest(view="V", access=(1, 2, 3))]
        )
        with pytest.raises(QueryError):
            cursors[0].fetchall()


class TestShardedBackendParity:
    @pytest.fixture(scope="class")
    def routed(self, db):
        sharded = ShardedViewServer(db, 3, SHARD_KEY)
        sharded.register(VIEW, tau=TAU, name="V")
        assert sharded.route("V")[0] == "routed"
        return sharded

    @pytest.fixture(scope="class")
    def scatter(self, db):
        sharded = ShardedViewServer(db, 3, SHARD_KEY)
        sharded.register(SCATTER_VIEW, tau=TAU, name="V")
        assert sharded.route("V")[0] == "scatter"
        return sharded

    def test_routed_mixed_group_equals_per_request(
        self, db, routed, mixed_batch
    ):
        shared = [c.fetchall() for c in routed.open_batch(mixed_batch)]
        solo = [routed.open(r).fetchall() for r in mixed_batch]
        assert shared == solo
        assert shared == [expected_answer(db, r) for r in mixed_batch]

    def test_scatter_mixed_group_equals_per_request(self, db, scatter):
        accesses = productive_accesses(SCATTER_VIEW, db)
        heavy = sorted(
            accesses,
            key=lambda a: len(oracle_answer(SCATTER_VIEW, db, a)),
            reverse=True,
        )[:3]
        full = oracle_answer(SCATTER_VIEW, db, heavy[0])
        batch = [
            AccessRequest(view="V", access=heavy[0]),
            AccessRequest(view="V", access=heavy[0], limit=2),
            AccessRequest(view="V", access=heavy[1]),
            AccessRequest(view="V", access=heavy[0], start_after=full[0]),
            AccessRequest(view="V", access=heavy[2]),
            AccessRequest(view="V", access=heavy[1]),  # duplicate
        ]
        shared = [c.fetchall() for c in scatter.open_batch(batch)]
        solo = [scatter.open(r).fetchall() for r in batch]
        assert shared == solo
        for request, rows in zip(batch, shared):
            expected = oracle_answer(SCATTER_VIEW, db, request.access)
            if request.start_after is not None:
                token = tuple(request.start_after)
                expected = [row for row in expected if row > token]
            if request.limit is not None:
                expected = expected[: request.limit]
            assert rows == expected

    def test_scatter_cursors_expose_per_shard_parts(self, scatter, db):
        access = productive_accesses(SCATTER_VIEW, db)[0]
        (cursor,) = scatter.open_batch(
            [AccessRequest(view="V", access=access)]
        )
        assert len(cursor.parts) == scatter.n_shards
        cursor.close()

    def test_sharded_answer_batch_unchanged_by_the_rewire(
        self, db, routed, accesses
    ):
        batch = [accesses[0], accesses[1], accesses[0]]
        result = routed.answer_batch("V", batch)
        assert result.unique_count == 2
        for access, rows in zip(result.accesses, result.answers):
            assert list(rows) == oracle_answer(VIEW, db, access)


class TestAsyncBackendParity:
    def test_async_answer_requests_plain_backend(
        self, db, server, mixed_batch
    ):
        async def go():
            front = AsyncViewServer(server, max_workers=2)
            try:
                return await front.answer_requests(mixed_batch)
            finally:
                front._executor.shutdown(wait=True)

        answers = asyncio.run(go())
        assert answers == [expected_answer(db, r) for r in mixed_batch]

    def test_async_answer_requests_routed_backend(self, db, mixed_batch):
        routed = ShardedViewServer(db, 3, SHARD_KEY)
        routed.register(VIEW, tau=TAU, name="V")

        async def go():
            front = AsyncViewServer(routed, max_workers=3)
            try:
                return await front.answer_requests(mixed_batch)
            finally:
                front._executor.shutdown(wait=True)

        answers = asyncio.run(go())
        assert answers == [expected_answer(db, r) for r in mixed_batch]

    def test_async_answer_requests_scatter_backend(self, db):
        scatter = ShardedViewServer(db, 3, SHARD_KEY)
        scatter.register(SCATTER_VIEW, tau=TAU, name="V")
        accesses = productive_accesses(SCATTER_VIEW, db)[:3]
        batch = [AccessRequest(view="V", access=a) for a in accesses] + [
            AccessRequest(view="V", access=accesses[0], limit=1)
        ]

        async def go():
            front = AsyncViewServer(scatter, max_workers=3)
            try:
                return await front.answer_requests(batch)
            finally:
                front._executor.shutdown(wait=True)

        got = asyncio.run(go())
        for request, rows in zip(batch, got):
            expected = oracle_answer(SCATTER_VIEW, db, request.access)
            if request.limit is not None:
                expected = expected[: request.limit]
            assert rows == expected


class TestCoreSharedEnumerate:
    @pytest.fixture(scope="class")
    def representation(self, db):
        return CompressedRepresentation(VIEW, db, tau=TAU)

    def test_events_partition_into_solo_streams(
        self, db, representation, accesses
    ):
        group = accesses[:8] + [accesses[0]]
        streams = {slot: [] for slot in range(len(group))}
        for slot, row in representation.shared_enumerate(group):
            streams[slot].append(row)
        for slot, access in enumerate(group):
            assert streams[slot] == list(representation.enumerate(access))

    def test_starts_match_enumerate_from(self, db, representation, accesses):
        heavy = max(accesses, key=lambda a: len(oracle_answer(VIEW, db, a)))
        full = list(representation.enumerate(heavy))
        for split in range(len(full)):
            starts = [full[split], None]
            got = [[], []]
            for slot, row in representation.shared_enumerate(
                [heavy, heavy], starts=starts
            ):
                got[slot].append(row)
            assert got[0] == full[split:]
            assert got[1] == full

    def test_counters_match_solo_counters(self, db, representation, accesses):
        group = accesses[:5]
        counters = [JoinCounter() for _ in group]
        for _ in representation.shared_enumerate(group, counters=counters):
            pass
        for access, counter in zip(group, counters):
            solo = JoinCounter()
            for _ in representation.enumerate(access, counter=solo):
                pass
            assert counter.steps == solo.steps

    def test_alive_flags_prune_a_slot_mid_scan(
        self, db, representation, accesses
    ):
        heavy = max(accesses, key=lambda a: len(oracle_answer(VIEW, db, a)))
        full = len(oracle_answer(VIEW, db, heavy))
        assert full >= 3
        other = next(a for a in accesses if a != heavy)
        alive = [True, True]
        counts = [0, 0]
        for slot, _ in representation.shared_enumerate(
            [heavy, other], alive=alive
        ):
            counts[slot] += 1
            if counts[0] == 1:
                alive[0] = False  # cancel the heavy slot after one row
        # The cancelled slot stops at the next node boundary (a few rows
        # of the current node may still flush) while the peer completes.
        assert counts[0] < full
        assert counts[1] == len(oracle_answer(VIEW, db, other))

    def test_subtrie_cache_shares_prefix_descents(self, representation, accesses):
        prefix = accesses[0][0]
        group = [a for a in accesses if a[0] == prefix]
        if len(group) < 2:
            pytest.skip("workload has no shared prefix group")
        cache = SubtrieCache()
        for _ in representation.shared_enumerate(group, cache=cache):
            pass
        assert cache.hits > 0

    def test_decomposed_shared_enumerate_matches_solo(self, db, accesses):
        decomposed = DecomposedRepresentation(VIEW, db)
        group = accesses[:6] + [accesses[0]]  # duplicate included
        streams = {slot: [] for slot in range(len(group))}
        for slot, row in decomposed.shared_enumerate(group):
            streams[slot].append(row)
        for slot, access in enumerate(group):
            assert streams[slot] == list(decomposed.enumerate(access))

    def test_dynamic_representation_falls_back_to_direct_pump(
        self, db, accesses
    ):
        dynamic = DynamicRepresentation(VIEW, db, tau=TAU)
        assert not getattr(dynamic, "supports_shared_scan", False)
        requests = [
            AccessRequest(view="V", access=accesses[0]),
            AccessRequest(view="V", access=accesses[0], limit=1),
            AccessRequest(view="V", access=accesses[1]),
        ]
        cursors = open_group(dynamic, requests)
        assert cursors[0].fetchall() == list(dynamic.enumerate(accesses[0]))
        assert cursors[1].fetchall() == list(dynamic.enumerate(accesses[0]))[:1]
        assert cursors[2].fetchall() == list(dynamic.enumerate(accesses[1]))


class TestLimitPruning:
    def test_all_limited_cursors_stop_the_scan_early(self, db, server, accesses):
        heavy = max(accesses, key=lambda a: len(oracle_answer(VIEW, db, a)))
        full = len(oracle_answer(VIEW, db, heavy))
        assert full >= 3
        batch = [
            AccessRequest(view="V", access=heavy, limit=1, measure=True),
            AccessRequest(view="V", access=heavy, limit=1, measure=True),
        ]
        scan = SharedScan(server.representation("V"), batch)
        cursors = scan.cursors()
        # No explicit close(): reaching the limit alone must release the
        # lane (a limit-stopped cursor never pulls its source again, so
        # close() is the only other chance to free it).
        for cursor in cursors:
            assert cursor.fetchall() == oracle_answer(VIEW, db, heavy)[:1]
        assert not scan._alive[0]
        assert all(not lane.buffer for _, lane in scan._lanes)
        # Both lanes done after one row: the state died and the scan
        # stopped enumerating — far fewer steps than the full answer.
        unlimited = SharedScan(
            server.representation("V"),
            [AccessRequest(view="V", access=heavy, measure=True)],
        )
        (u,) = unlimited.cursors()
        u.fetchall()
        assert cursors[0].stats().step_total < u.stats().step_total

    def test_closing_one_duplicate_keeps_the_peer_streaming(
        self, db, server, accesses
    ):
        heavy = max(accesses, key=lambda a: len(oracle_answer(VIEW, db, a)))
        batch = [
            AccessRequest(view="V", access=heavy),
            AccessRequest(view="V", access=heavy),
        ]
        first, second = server.open_batch(batch)
        assert next(first) == oracle_answer(VIEW, db, heavy)[0]
        first.close()
        assert second.fetchall() == oracle_answer(VIEW, db, heavy)


class TestPrefixBatchRequests:
    def test_deterministic_and_prefix_grouped(self, db):
        one = prefix_batch_requests(VIEW, db, 50, seed=9, skew=1.5)
        two = prefix_batch_requests(VIEW, db, 50, seed=9, skew=1.5)
        assert one == two
        assert all(isinstance(r, AccessRequest) for r in one)
        productive = set(productive_accesses(VIEW, db))
        assert all(r.access in productive for r in one)

    def test_skew_concentrates_on_heavy_prefixes(self, db):
        flat = prefix_batch_requests(VIEW, db, 200, seed=9, skew=0.0)
        skewed = prefix_batch_requests(VIEW, db, 200, seed=9, skew=2.5)

        def top_share(requests):
            counts = {}
            for request in requests:
                key = request.access[:1]
                counts[key] = counts.get(key, 0) + 1
            return max(counts.values()) / len(requests)

        assert top_share(skewed) > top_share(flat)

    def test_limits_mix_and_name_override(self, db):
        requests = prefix_batch_requests(
            VIEW, db, 40, seed=2, limits=(1, None), name="X"
        )
        assert {r.view for r in requests} == {"X"}
        assert {r.limit for r in requests} == {1, None}

    def test_empty_prefix_len_is_one_group(self, db):
        requests = prefix_batch_requests(VIEW, db, 30, seed=4, prefix_len=0)
        assert len(requests) == 30

    def test_parameter_validation(self, db):
        with pytest.raises(ParameterError):
            prefix_batch_requests(VIEW, db, -1)
        with pytest.raises(ParameterError):
            prefix_batch_requests(VIEW, db, 5, skew=-0.1)
        with pytest.raises(ParameterError):
            prefix_batch_requests(VIEW, db, 5, prefix_len=9)
        with pytest.raises(ParameterError):
            prefix_batch_requests(VIEW, db, 5, limits=())
        with pytest.raises(ParameterError):
            prefix_batch_requests(VIEW, db, 5, limits=(-2,))
