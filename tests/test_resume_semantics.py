"""Resume-token semantics across every representation class and the shards.

The cross-class contract: for any access, ``enumerate()`` equals any
prefix concatenated with ``enumerate_after(access, last-of-prefix)`` —
at *every* split point — and paginating through resume tokens
reconstructs the independent hash-join oracle's answer exactly. Empty
pages and past-end tokens are legal (they yield nothing, never raise).
"""

import pytest

from oracle import oracle_accesses, oracle_answer
from repro.core.decomposed import DecomposedRepresentation
from repro.core.dynamic import DynamicRepresentation
from repro.core.structure import CompressedRepresentation
from repro.engine.api import AccessRequest, open_cursor
from repro.engine.sharding import ShardedViewServer
from repro.workloads.generators import path_database, triangle_database
from repro.workloads.queries import path_view, triangle_view

PAST_END = (10**9, 10**9, 10**9, 10**9)


def compressed_case():
    view = triangle_view("bff")
    db = triangle_database(16, 70, seed=21)
    return view, db, CompressedRepresentation(view, db, tau=6.0)


def decomposed_case():
    view = path_view(4)
    db = path_database(4, 40, 9, seed=22)
    return view, db, DecomposedRepresentation(view, db)


def dynamic_clean_case():
    view = triangle_view("bbf")
    db = triangle_database(14, 55, seed=23)
    return view, db, DynamicRepresentation(
        view, db, tau=4.0, rebuild_fraction=float("inf")
    )


def dynamic_dirty_case():
    view, db, dynamic = dynamic_clean_case()
    dynamic.insert("R", (0, 1))
    dynamic.insert("S", (1, 2))
    dynamic.insert("T", (2, 0))
    assert dynamic.is_dirty
    return view, db, dynamic


CASES = {
    "compressed": compressed_case,
    "decomposed": decomposed_case,
    "dynamic-clean": dynamic_clean_case,
    "dynamic-dirty": dynamic_dirty_case,
}


def productive(representation, view, db, limit=4):
    accesses = []
    for access in oracle_accesses(view, db, limit=limit + 4):
        if len(list(representation.enumerate(access))) > 1:
            accesses.append(access)
        if len(accesses) >= limit:
            break
    return accesses


@pytest.fixture(params=sorted(CASES), name="case")
def case_fixture(request):
    view, db, representation = CASES[request.param]()
    return request.param, view, db, representation


class TestCrossClassParity:
    def test_supports_resume_is_uniform(self, case):
        _, _, _, representation = case
        assert representation.supports_resume is True
        assert hasattr(representation, "enumerate_from")
        assert hasattr(representation, "enumerate_after")

    def test_enumerate_after_resumes_at_every_split(self, case):
        name, view, db, representation = case
        for access in productive(representation, view, db):
            full = list(representation.enumerate(access))
            for split in range(len(full)):
                resumed = list(
                    representation.enumerate_after(access, full[split])
                )
                assert resumed == full[split + 1:], (name, access, split)

    def test_enumerate_from_is_inclusive(self, case):
        name, view, db, representation = case
        for access in productive(representation, view, db):
            full = list(representation.enumerate(access))
            for split in range(len(full)):
                resumed = list(
                    representation.enumerate_from(access, full[split])
                )
                assert resumed == full[split:], (name, access, split)

    def test_pagination_reconstructs_the_oracle(self, case):
        name, view, db, representation = case
        if name == "dynamic-dirty":
            oracle_db = representation.current_database()
        else:
            oracle_db = db
        for access in productive(representation, view, db):
            pages, token = [], None
            for _ in range(1000):
                cursor = open_cursor(
                    representation,
                    AccessRequest(
                        view=view.name,
                        access=access,
                        limit=2,
                        start_after=token,
                    ),
                )
                rows = cursor.fetchall()
                token = cursor.resume_token()
                pages.extend(rows)
                if cursor.exhausted or not rows:
                    break
            # Decomposed enumeration order is the bag nesting, not head
            # order; concatenated pages equal the enumeration, and
            # sorted they equal the oracle for every class.
            assert pages == list(representation.enumerate(access))
            assert sorted(pages) == oracle_answer(view, oracle_db, access)

    def test_past_end_token_yields_an_empty_page(self, case):
        name, view, db, representation = case
        for access in productive(representation, view, db, limit=2):
            width = len(next(iter(representation.enumerate(access))))
            token = PAST_END[:width]
            assert list(representation.enumerate_after(access, token)) == []
            assert list(representation.enumerate_from(access, token)) == []

    def test_final_token_yields_an_empty_page(self, case):
        name, view, db, representation = case
        for access in productive(representation, view, db, limit=2):
            full = list(representation.enumerate(access))
            cursor = open_cursor(
                representation,
                AccessRequest(
                    view=view.name, access=access, start_after=full[-1]
                ),
            )
            assert cursor.fetchall() == []
            assert cursor.exhausted
            # An empty page round-trips its token unchanged.
            assert cursor.resume_token() == full[-1]

    def test_miss_access_resumes_empty(self, case):
        name, view, db, representation = case
        n_bound = sum(1 for ch in view.pattern if ch == "b")
        miss = tuple(-7 for _ in range(n_bound))
        assert list(representation.enumerate(miss)) == []
        width = len(view.pattern) - n_bound
        token = tuple(0 for _ in range(width))
        assert list(representation.enumerate_after(miss, token)) == []


class TestShardedResume:
    @pytest.fixture(scope="class")
    def sharded(self):
        view = triangle_view("bff")
        db = triangle_database(18, 90, seed=24)
        server = ShardedViewServer(db, 4, {"R": 0, "T": 1})
        scatter = ShardedViewServer(db, 4, {"S": 0})
        name = server.register(view, tau=6.0)
        scatter_name = scatter.register(view, tau=6.0)
        assert server.route(name)[0] == "routed"
        assert scatter.route(scatter_name)[0] == "scatter"
        return view, db, (server, name), (scatter, scatter_name)

    @pytest.mark.parametrize("which", ["routed", "scatter"])
    def test_paginated_merge_equals_oracle(self, sharded, which):
        view, db, routed, scatter = sharded
        server, name = routed if which == "routed" else scatter
        for access in oracle_accesses(view, db, limit=5):
            expected = oracle_answer(view, db, access)
            pages, token = [], None
            for _ in range(1000):
                with server.open(
                    name, access, limit=3, start_after=token
                ) as cursor:
                    rows = cursor.fetchall()
                    token = cursor.resume_token()
                    exhausted = cursor.exhausted
                pages.extend(rows)
                if exhausted or not rows:
                    break
            assert pages == expected, (which, access)

    def test_scatter_resume_skips_every_shards_prefix(self, sharded):
        view, db, _, (server, name) = sharded
        access = max(
            oracle_accesses(view, db, limit=5),
            key=lambda a: len(oracle_answer(view, db, a)),
        )
        full = oracle_answer(view, db, access)
        assert len(full) >= 3
        middle = full[len(full) // 2]
        with server.open(name, access, start_after=middle) as cursor:
            assert cursor.fetchall() == full[full.index(middle) + 1:]
