"""The two extremal baselines and their position in the tradeoff."""

import pytest

from oracle import oracle_accesses, oracle_answer
from repro.baselines.lazy import LazyView
from repro.baselines.materialized import MaterializedView
from repro.core.structure import CompressedRepresentation
from repro.exceptions import QueryError
from repro.joins.generic_join import JoinCounter
from repro.workloads.generators import triangle_database
from repro.workloads.queries import triangle_view


@pytest.fixture
def setup():
    view = triangle_view("bbf")
    db = triangle_database(16, 70, seed=1)
    return view, db, oracle_accesses(view, db, limit=8)


class TestMaterialized:
    def test_matches_oracle(self, setup):
        view, db, accesses = setup
        mv = MaterializedView(view, db)
        for access in accesses:
            assert mv.answer(access) == oracle_answer(view, db, access)

    def test_lexicographic(self, setup):
        view, db, accesses = setup
        mv = MaterializedView(view, db)
        for access in accesses:
            answer = mv.answer(access)
            assert answer == sorted(answer)

    def test_output_size(self, setup):
        view, db, _ = setup
        from repro.joins.hash_join import evaluate_by_hash_join

        mv = MaterializedView(view, db)
        assert mv.output_size() == len(evaluate_by_hash_join(view.query, db))

    def test_space_accounts_output(self, setup):
        view, db, _ = setup
        mv = MaterializedView(view, db)
        assert mv.space_report().materialized_tuples == mv.output_size()

    def test_wrong_arity(self, setup):
        view, db, _ = setup
        with pytest.raises(QueryError):
            list(MaterializedView(view, db).enumerate((1,)))


class TestLazy:
    def test_matches_oracle(self, setup):
        view, db, accesses = setup
        lv = LazyView(view, db)
        for access in accesses:
            assert lv.answer(access) == oracle_answer(view, db, access)

    def test_space_is_linear(self, setup):
        view, db, _ = setup
        lv = LazyView(view, db)
        report = lv.space_report()
        assert report.materialized_tuples == 0
        assert report.tree_nodes == 0
        assert report.dictionary_entries == 0

    def test_exists(self, setup):
        view, db, accesses = setup
        lv = LazyView(view, db)
        for access in accesses:
            assert lv.exists(access) == bool(oracle_answer(view, db, access))


class TestContinuum:
    def test_compressed_sits_between_extremes(self, setup):
        """Figure 1's continuum: CR structure-space between lazy (0) and
        materialized (|Q(D)|-ish); probes between materialized and lazy."""
        view, db, accesses = setup
        lv, mv = LazyView(view, db), MaterializedView(view, db)
        cr = CompressedRepresentation(view, db, tau=4.0)
        lazy_cells = lv.space_report().structure_cells
        cr_cells = cr.space_report().structure_cells
        assert lazy_cells == 0
        assert cr_cells > 0

        def max_probe(structure):
            worst = 0
            for access in accesses:
                counter = JoinCounter()
                list(structure.enumerate(access, counter=counter))
                worst = max(worst, counter.steps)
            return worst

        assert max_probe(mv) <= max_probe(cr) <= max_probe(lv) * 2
