"""The snapshot codec: round-trips, format safety, and the store.

Round-trips are property-style over the :mod:`repro.workloads.scenarios`
shapes the serving layer actually sees — skewed data, self-joins, empty
views, and views whose normalization rewrites constants away — asserting
that a decoded representation enumerates *identical* sorted answers with
*identical* logical delay statistics (step totals and worst gaps through
a :class:`~repro.joins.generic_join.JoinCounter`) to the original.

Safety is the satellite contract: malformed, truncated, corrupted,
version-mismatched and wrong-database snapshots all raise the typed
:class:`~repro.exceptions.SnapshotError`, never a raw unpickling error.
"""

from __future__ import annotations

import pickle

import pytest

from repro import (
    CompressedRepresentation,
    Database,
    DecomposedRepresentation,
    DynamicRepresentation,
    Relation,
    parse_view,
)
from repro.core.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    SnapshotStore,
    database_fingerprint,
    database_from_state,
    database_state,
    decode_snapshot,
    encode_snapshot,
    inspect_snapshot,
    inspect_snapshot_file,
    load_snapshot,
    save_snapshot,
    view_from_state,
    view_state,
)
from repro.exceptions import SnapshotError
from repro.joins.generic_join import JoinCounter
from repro.measure.delay import measure_enumeration
from repro.workloads import random_graph, triangle_database, triangle_view
from repro.workloads.scenarios import (
    coauthor_database,
    coauthor_view,
    mln_evidence_database,
    mln_rule_views,
    social_network_database,
)
from repro.workloads.streams import productive_accesses


def _scenarios():
    """(label, view, database) triples spanning the workload shapes."""
    coauthors = coauthor_database(n_authors=60, n_papers=80, seed=3)
    social = social_network_database(n_users=30, n_friendships=90, seed=5)
    mln = mln_evidence_database(n_entities=40, n_terms=25, density=150, seed=2)
    empty = Database(
        [
            random_graph("R", 20, 60, seed=1),
            Relation("S", 2, []),  # an empty relation empties the join
            random_graph("T", 20, 60, seed=2),
        ]
    )
    constants = parse_view("C^bf(x, y) = R(x, y), S(y, 3)")
    constant_db = Database(
        [
            random_graph("R", 15, 60, seed=4),
            Relation("S", 2, [(v, 3) for v in range(0, 15, 2)]),
        ]
    )
    return [
        ("skewed self-join", coauthor_view(), coauthors),
        (
            "mutual friends",
            parse_view("V^bfb(x, y, z) = R(x, y), R(y, z), R(z, x)"),
            social,
        ),
        ("mln rule", mln_rule_views()[2], mln),
        ("empty view", triangle_view("bbf"), empty),
        ("normalized constants", constants, constant_db),
    ]


def _accesses(view, db, limit=8):
    productive = productive_accesses(view, db)[:limit]
    miss = tuple(-1 for _ in view.bound_variables)
    return productive + [miss]


def _measured_answers(representation, accesses):
    measured = []
    for access in accesses:
        counter = JoinCounter()
        rows = []

        def collect(iterator):
            for row in iterator:
                rows.append(row)
                yield row

        stats = measure_enumeration(
            collect(representation.enumerate(access, counter=counter)),
            counter=counter,
            keep_gaps=True,
        )
        measured.append(
            (access, rows, counter.steps, stats.step_max_gap, stats.step_gaps)
        )
    return measured


class TestCompressedRoundTrips:
    @pytest.mark.parametrize(
        "label,view,db", _scenarios(), ids=lambda v: v if isinstance(v, str) else ""
    )
    @pytest.mark.parametrize("tau", [2.0, 16.0])
    def test_identical_answers_and_delay_stats(self, label, view, db, tau):
        original = CompressedRepresentation(view, db, tau=tau)
        restored = decode_snapshot(encode_snapshot(original))
        accesses = _accesses(view, db)
        before = _measured_answers(original, accesses)
        after = _measured_answers(restored, accesses)
        assert before == after
        # The restored enumeration is sorted exactly like the original.
        for _, rows, _, _, _ in after:
            assert rows == sorted(rows)

    @pytest.mark.parametrize(
        "label,view,db", _scenarios(), ids=lambda v: v if isinstance(v, str) else ""
    )
    def test_restored_parameters_and_space_match(self, label, view, db):
        original = CompressedRepresentation(view, db, tau=8.0)
        restored = decode_snapshot(encode_snapshot(original))
        assert restored.tau == original.tau
        assert restored.alpha == original.alpha
        assert restored.weights == original.weights
        assert len(restored.tree.nodes) == len(original.tree.nodes)
        assert restored.tree.depth() == original.tree.depth()
        assert sorted(restored.dictionary.items()) == sorted(
            original.dictionary.items()
        )
        assert (
            restored.space_report().total_cells
            == original.space_report().total_cells
        )
        assert restored.stats == original.stats

    def test_enumerate_from_agrees_after_restore(self):
        db = coauthor_database(n_authors=50, n_papers=70, seed=9)
        view = coauthor_view()
        original = CompressedRepresentation(view, db, tau=4.0)
        restored = decode_snapshot(encode_snapshot(original))
        access = productive_accesses(view, db)[0]
        rows = original.answer(access)
        assert len(rows) >= 2
        start = rows[len(rows) // 2]
        assert list(original.enumerate_from(access, start)) == list(
            restored.enumerate_from(access, start)
        )


class TestOtherKinds:
    def test_decomposed_round_trip(self):
        db = triangle_database(nodes=25, edges=120, seed=11)
        view = triangle_view("bbf")
        original = DecomposedRepresentation(view, db)
        restored = decode_snapshot(encode_snapshot(original))
        assert isinstance(restored, DecomposedRepresentation)
        assert restored.delta_height == original.delta_height
        for access in _accesses(view, db):
            assert restored.answer(access) == original.answer(access)
        assert (
            restored.space_report().total_cells
            == original.space_report().total_cells
        )

    def test_dynamic_round_trip_preserves_buffered_updates(self):
        db = triangle_database(nodes=25, edges=120, seed=11)
        view = triangle_view("bbf")
        original = DynamicRepresentation(
            view, db, tau=8.0, rebuild_fraction=float("inf")
        )
        original.insert("R", (900, 901))
        original.insert("S", (901, 902))
        original.insert("T", (902, 900))
        original.delete("R", next(iter(db["R"])))
        restored = decode_snapshot(encode_snapshot(original))
        assert isinstance(restored, DynamicRepresentation)
        assert restored.is_dirty
        assert restored.pending_updates == original.pending_updates
        assert restored.answer((900, 901)) == original.answer((900, 901))
        for access in _accesses(view, db, limit=4):
            assert restored.answer(access) == original.answer(access)
        # The restored instance keeps absorbing updates and rebuilding.
        restored.rebuild()
        assert not restored.is_dirty
        assert restored.answer((900, 901)) == [(902,)]


class TestViewAndDatabaseState:
    def test_view_state_round_trips_constants_and_self_joins(self):
        for view in [
            parse_view("C^bf(x, y) = R(x, y), S(y, 3)"),
            coauthor_view(),
            triangle_view("fbf"),
        ]:
            restored = view_from_state(view_state(view))
            assert repr(restored) == repr(view)

    def test_database_state_round_trips(self):
        db = triangle_database(nodes=10, edges=40, seed=1)
        restored = database_from_state(database_state(db))
        assert {r.name: r.rows for r in restored} == {
            r.name: r.rows for r in db
        }

    def test_fingerprint_is_order_insensitive_and_data_sensitive(self):
        rows = [(1, 2), (3, 4), (5, 6)]
        a = Database([Relation("R", 2, rows)])
        b = Database([Relation("R", 2, reversed(rows))])
        assert database_fingerprint(a) == database_fingerprint(b)
        c = Database([Relation("R", 2, rows + [(7, 8)])])
        assert database_fingerprint(a) != database_fingerprint(c)


@pytest.fixture(scope="module")
def sample_blob():
    db = triangle_database(nodes=15, edges=60, seed=3)
    view = triangle_view("bbf")
    return encode_snapshot(CompressedRepresentation(view, db, tau=8.0)), db


class TestFormatSafety:
    def test_rejects_non_snapshot_bytes(self):
        for junk in [b"", b"x", b"garbage garbage garbage", b"PK\x03\x04zip"]:
            with pytest.raises(SnapshotError):
                decode_snapshot(junk)

    def test_rejects_raw_pickles(self):
        # A plain pickle is the classic confusion: it must be refused as
        # "not a snapshot", not unpickled.
        with pytest.raises(SnapshotError, match="magic"):
            decode_snapshot(pickle.dumps({"kind": "compressed"}))

    def test_rejects_version_mismatch(self, sample_blob):
        blob, _ = sample_blob
        bumped = (
            SNAPSHOT_MAGIC
            + (SNAPSHOT_VERSION + 1).to_bytes(2, "big")
            + blob[len(SNAPSHOT_MAGIC) + 2:]
        )
        with pytest.raises(SnapshotError, match="version"):
            decode_snapshot(bumped)

    def test_rejects_truncation_at_every_prefix_length(self, sample_blob):
        blob, _ = sample_blob
        for cut in [3, 5, 9, 20, len(blob) // 2, len(blob) - 1]:
            with pytest.raises(SnapshotError):
                decode_snapshot(blob[:cut])

    def test_rejects_payload_corruption(self, sample_blob):
        blob, _ = sample_blob
        corrupted = bytearray(blob)
        corrupted[-10] ^= 0xFF
        with pytest.raises(SnapshotError, match="CRC"):
            decode_snapshot(bytes(corrupted))

    def test_unpickling_failures_become_snapshot_errors(
        self, sample_blob, monkeypatch
    ):
        import pickle

        blob, _ = sample_blob

        def exploding_loads(payload):
            raise pickle.UnpicklingError("bad opcode")

        monkeypatch.setattr(
            "repro.core.snapshot.pickle.loads", exploding_loads
        )
        with pytest.raises(SnapshotError, match="corrupted snapshot payload"):
            decode_snapshot(blob)

    def test_memory_error_propagates_instead_of_masquerading(
        self, sample_blob, monkeypatch
    ):
        # The decode catch is a *narrow* allowlist of unpickling
        # failures: an out-of-memory while decoding a huge payload is an
        # operational emergency, not a "corrupted snapshot" to be
        # swallowed (and possibly retried with a fresh build).
        blob, _ = sample_blob

        def oom_loads(payload):
            raise MemoryError("payload too large")

        monkeypatch.setattr("repro.core.snapshot.pickle.loads", oom_loads)
        with pytest.raises(MemoryError):
            decode_snapshot(blob)

    def test_keyboard_interrupt_propagates_from_decode(
        self, sample_blob, monkeypatch
    ):
        blob, _ = sample_blob

        def interrupted_loads(payload):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            "repro.core.snapshot.pickle.loads", interrupted_loads
        )
        with pytest.raises(KeyboardInterrupt):
            decode_snapshot(blob)

    def test_rejects_wrong_database_fingerprint(self, sample_blob):
        blob, db = sample_blob
        other = triangle_database(nodes=15, edges=60, seed=4)
        with pytest.raises(SnapshotError, match="different database"):
            decode_snapshot(
                blob, expected_fingerprint=database_fingerprint(other)
            )
        # The matching fingerprint decodes fine.
        decoded = decode_snapshot(
            blob, expected_fingerprint=database_fingerprint(db)
        )
        assert isinstance(decoded, CompressedRepresentation)

    def test_inspect_reads_headers_without_decoding(self, sample_blob):
        blob, db = sample_blob
        info = inspect_snapshot(blob)
        assert info["kind"] == "compressed"
        assert info["version"] == SNAPSHOT_VERSION
        assert info["fingerprint"] == database_fingerprint(db)
        assert info["complete"]
        # Truncated payloads are inspectable (header intact) but flagged.
        partial = inspect_snapshot(blob[:-5])
        assert not partial["complete"]

    def test_missing_file_raises_snapshot_error(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(tmp_path / "absent.snap")
        with pytest.raises(SnapshotError, match="cannot read"):
            inspect_snapshot_file(tmp_path / "absent.snap")


class TestSnapshotFilesAndStore:
    def test_save_and_load_file(self, tmp_path):
        db = triangle_database(nodes=15, edges=60, seed=3)
        rep = CompressedRepresentation(triangle_view("bbf"), db, tau=8.0)
        path = tmp_path / "view.snap"
        written = save_snapshot(path, rep)
        assert path.stat().st_size == written
        restored = load_snapshot(
            path, expected_fingerprint=database_fingerprint(db)
        )
        assert restored.answer((3, 7)) == rep.answer((3, 7))

    def test_store_round_trip_and_labels(self, tmp_path):
        db = triangle_database(nodes=15, edges=60, seed=3)
        rep = CompressedRepresentation(triangle_view("bbf"), db, tau=8.0)
        store = SnapshotStore(tmp_path, fingerprint=database_fingerprint(db))
        label = "Delta|abc123|tau=8.0|fixed|None"
        assert store.load(label) is None
        assert store.save(label, rep)
        assert label in store
        assert len(store.labels_on_disk()) == 1
        restored = store.load(label)
        assert restored.answer((3, 7)) == rep.answer((3, 7))
        # Same label, fresh store instance: restart-stable file naming.
        again = SnapshotStore(tmp_path, fingerprint=database_fingerprint(db))
        assert label in again
        assert again.remove(label)
        assert label not in again

    def test_store_refuses_other_databases_snapshots(self, tmp_path):
        db = triangle_database(nodes=15, edges=60, seed=3)
        rep = CompressedRepresentation(triangle_view("bbf"), db, tau=8.0)
        writer = SnapshotStore(tmp_path, fingerprint=database_fingerprint(db))
        assert writer.save("shared-label", rep)
        other = triangle_database(nodes=15, edges=60, seed=4)
        reader = SnapshotStore(
            tmp_path, fingerprint=database_fingerprint(other)
        )
        with pytest.raises(SnapshotError, match="different database"):
            reader.load("shared-label")

    def test_store_surfaces_corruption_as_snapshot_error(self, tmp_path):
        db = triangle_database(nodes=15, edges=60, seed=3)
        rep = CompressedRepresentation(triangle_view("bbf"), db, tau=8.0)
        store = SnapshotStore(tmp_path)
        store.save("x", rep)
        path = store.path_for("x")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(SnapshotError):
            store.load("x")
