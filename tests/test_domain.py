"""Tests for domains and the lexicographic tuple space."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.domain import Domain, TupleSpace
from repro.exceptions import ParameterError


class TestDomain:
    def test_sorted_and_deduplicated(self):
        d = Domain([3, 1, 2, 1])
        assert d.values == (1, 2, 3)
        assert len(d) == 3

    def test_index_roundtrip(self):
        d = Domain([10, 20, 30])
        assert d.index_of(20) == 1
        assert d.value_at(1) == 20
        assert d.index_of(25) is None

    def test_floor_and_ceil(self):
        d = Domain([10, 20, 30])
        assert d.floor_index(25) == 1
        assert d.ceil_index(25) == 2
        assert d.floor_index(5) is None
        assert d.ceil_index(35) is None
        assert d.floor_index(30) == 2
        assert d.ceil_index(10) == 0

    def test_bottom_top(self):
        d = Domain([5, 6, 7])
        assert d.bottom == 0
        assert d.top == 2


class TestTupleSpace:
    def _space(self):
        return TupleSpace([Domain([1, 2]), Domain([1, 2, 3])])

    def test_bottom_top(self):
        s = self._space()
        assert s.bottom() == (0, 0)
        assert s.top() == (1, 2)

    def test_successor_carries(self):
        s = self._space()
        assert s.successor((0, 2)) == (1, 0)
        assert s.successor((0, 1)) == (0, 2)
        assert s.successor((1, 2)) is None

    def test_predecessor_borrows(self):
        s = self._space()
        assert s.predecessor((1, 0)) == (0, 2)
        assert s.predecessor((0, 0)) is None

    def test_successor_predecessor_inverse(self):
        s = self._space()
        point = s.bottom()
        seen = [point]
        while (nxt := s.successor(point)) is not None:
            assert s.predecessor(nxt) == point
            point = nxt
            seen.append(point)
        assert len(seen) == s.size() == 6
        assert seen == sorted(seen)

    def test_values_and_indexes(self):
        s = self._space()
        assert s.values((1, 2)) == (2, 3)
        assert s.indexes((2, 3)) == (1, 2)
        assert s.indexes((2, 9)) is None

    def test_empty_product_space(self):
        s = TupleSpace([])
        assert s.bottom() == ()
        assert s.top() == ()
        assert s.size() == 1
        assert s.successor(()) is None
        assert s.predecessor(()) is None

    def test_empty_domain_space(self):
        s = TupleSpace([Domain([])])
        assert s.is_empty()
        with pytest.raises(ParameterError):
            s.bottom()

    @given(
        st.lists(
            st.integers(1, 4), min_size=1, max_size=3
        ).flatmap(
            lambda sizes: st.tuples(
                st.just(sizes),
                st.tuples(*[st.integers(0, size - 1) for size in sizes]),
            )
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_successor_is_next_lexicographic(self, data):
        sizes, point = data
        space = TupleSpace([Domain(range(size)) for size in sizes])
        nxt = space.successor(point)
        if nxt is None:
            assert point == space.top()
        else:
            assert nxt > point
            # Nothing strictly between point and nxt.
            assert space.predecessor(nxt) == point
