"""f-intervals, f-boxes and the box decomposition (Lemma 1, Examples 12-13)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.domain import Domain, TupleSpace
from repro.core.intervals import FBox, FInterval, ScalarInterval
from repro.exceptions import ParameterError


def space_of(*sizes):
    return TupleSpace([Domain(range(size)) for size in sizes])


class TestScalarInterval:
    def test_empty_and_unit(self):
        assert ScalarInterval(3, 2).is_empty()
        assert ScalarInterval(2, 2).is_unit()
        assert ScalarInterval(1, 3).width() == 3
        assert ScalarInterval(3, 2).width() == 0

    def test_contains(self):
        interval = ScalarInterval(1, 3)
        assert interval.contains(2)
        assert not interval.contains(0)


class TestFBox:
    def test_canonical_construction(self):
        s = space_of(3, 3, 3)
        box = FBox.canonical(s, (1,), ScalarInterval(0, 1))
        assert box.intervals == (
            ScalarInterval(1, 1),
            ScalarInterval(0, 1),
            ScalarInterval(0, 2),
        )
        assert box.is_canonical(s)
        assert box.unit_prefix_length(s) == 1

    def test_non_canonical_detected(self):
        s = space_of(3, 3)
        box = FBox((ScalarInterval(0, 1), ScalarInterval(0, 1)))
        assert not box.is_canonical(s)

    def test_size_and_iterate(self):
        s = space_of(3, 3)
        box = FBox.canonical(s, (), ScalarInterval(1, 2))
        assert box.size() == 6
        points = list(box.iterate())
        assert len(points) == 6
        assert points == sorted(points)

    def test_too_wide_rejected(self):
        s = space_of(2)
        with pytest.raises(ParameterError):
            FBox.canonical(s, (0, 1), ScalarInterval(0, 0))


class TestBoxDecomposition:
    def test_example12_shape(self):
        """Example 12 with domains 1..1000 (0-based indexes 0..999).

        I = (⟨10,50,100⟩, ⟨20,10,50⟩) open, i.e. closed
        [⟨10,50,101⟩, ⟨20,10,49⟩] in index space (values = indexes here).
        """
        s = space_of(1000, 1000, 1000)
        interval = FInterval((10, 50, 101), (20, 10, 49))
        boxes = interval.box_decomposition(s)
        assert boxes == [
            FBox.canonical(s, (10, 50), ScalarInterval(101, 999)),
            FBox.canonical(s, (10,), ScalarInterval(51, 999)),
            FBox.canonical(s, (), ScalarInterval(11, 19)),
            FBox.canonical(s, (20,), ScalarInterval(0, 9)),
            FBox.canonical(s, (20, 10), ScalarInterval(0, 49)),
        ]

    def test_example12_single_box_case(self):
        """I' = [⟨10,50,100⟩, ⟨10,50,200⟩) has a one-box decomposition."""
        s = space_of(1000, 1000, 1000)
        interval = FInterval((10, 50, 100), (10, 50, 199))
        boxes = interval.box_decomposition(s)
        assert boxes == [FBox.canonical(s, (10, 50), ScalarInterval(100, 199))]

    def test_example13_boxes(self):
        """Example 13's root decomposition over binary domains."""
        s = space_of(2, 2, 2)
        interval = FInterval((0, 0, 0), (1, 1, 1))
        boxes = interval.box_decomposition(s)
        assert boxes == [
            FBox.canonical(s, (0, 0), ScalarInterval(0, 1)),  # Bl3
            FBox.canonical(s, (0,), ScalarInterval(1, 1)),    # Bl2
            FBox.canonical(s, (1,), ScalarInterval(0, 0)),    # Br2
            FBox.canonical(s, (1, 1), ScalarInterval(0, 1)),  # Br3
        ]

    def test_unit_interval(self):
        s = space_of(3, 3)
        boxes = FInterval((1, 2), (1, 2)).box_decomposition(s)
        assert len(boxes) == 1
        assert boxes[0].is_unit()

    def test_width_zero_space(self):
        s = space_of()
        boxes = FInterval((), ()).box_decomposition(s)
        assert len(boxes) == 1

    @st.composite
    def _interval(draw):
        sizes = draw(st.lists(st.integers(1, 4), min_size=1, max_size=4))
        a = tuple(draw(st.integers(0, size - 1)) for size in sizes)
        b = tuple(draw(st.integers(0, size - 1)) for size in sizes)
        if a > b:
            a, b = b, a
        return sizes, a, b

    @given(_interval())
    @settings(max_examples=200, deadline=None)
    def test_lemma1_partition(self, data):
        """Lemma 1(2): the non-empty boxes partition the interval exactly."""
        sizes, a, b = data
        s = space_of(*sizes)
        interval = FInterval(a, b)
        boxes = interval.box_decomposition(s)
        covered = []
        for box in boxes:
            assert not box.is_empty()
            assert box.is_canonical(s)
            covered.extend(box.iterate())
        # Disjoint & complete: each interval point covered exactly once.
        assert len(covered) == len(set(covered))
        expected = set()
        point = a
        while point is not None and point <= b:
            expected.add(point)
            point = s.successor(point)
        assert set(covered) == expected

    @given(_interval())
    @settings(max_examples=200, deadline=None)
    def test_lemma1_ordering_and_count(self, data):
        """Lemma 1(1) and 1(3): boxes are lex-ordered; at most 2µ-1 of them."""
        sizes, a, b = data
        s = space_of(*sizes)
        boxes = FInterval(a, b).box_decomposition(s)
        assert len(boxes) <= 2 * len(sizes) - 1 or len(sizes) == 0
        flattened = []
        for box in boxes:
            flattened.extend(box.iterate())
        assert flattened == sorted(flattened)


class TestSplitAt:
    def test_split_middle(self):
        s = space_of(2, 2)
        interval = FInterval((0, 0), (1, 1))
        left, right = interval.split_at(s, (0, 1))
        assert left == FInterval((0, 0), (0, 0))
        assert right == FInterval((1, 0), (1, 1))

    def test_split_at_endpoints(self):
        s = space_of(2, 2)
        interval = FInterval((0, 0), (1, 1))
        left, right = interval.split_at(s, (0, 0))
        assert left is None
        assert right == FInterval((0, 1), (1, 1))
        left, right = interval.split_at(s, (1, 1))
        assert left == FInterval((0, 0), (1, 0))
        assert right is None

    def test_split_point_outside_rejected(self):
        s = space_of(2, 2)
        with pytest.raises(ParameterError):
            FInterval((0, 0), (0, 1)).split_at(s, (1, 1))

    def test_empty_interval_rejected(self):
        with pytest.raises(ParameterError):
            FInterval((1, 1), (0, 0))
