"""The dynamic lock-order detector: graph, tracked locks, seeded deadlocks.

The static lock-discipline rule (tests/test_analysis.py) proves guarded
attributes stay guarded; this suite covers the runtime half — that the
acquisition graph records real nesting, that a seeded inversion (the
classic latent deadlock) is detected *regardless of timing*, and that
the factory hook swaps tracked locks into real engine objects.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.lockorder import LockGraph, TrackedLock, tracking_factory
from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.engine import locking
from repro.engine.server import ViewServer


def _pair(graph):
    a = TrackedLock("a", graph)
    b = TrackedLock("b", graph)
    return a, b


class TestLockGraph:
    def test_nested_acquisition_records_edge(self):
        graph = LockGraph()
        a, b = _pair(graph)
        with a:
            with b:
                pass
        assert ("a", "b") in graph.edges()
        assert ("b", "a") not in graph.edges()
        assert graph.cycles() == []

    def test_seeded_inversion_is_detected(self):
        # The acceptance case: opposite nesting orders, observed in two
        # *sequential* runs — no actual contention needed. A timing-based
        # detector would miss this; the graph does not.
        graph = LockGraph()
        a, b = _pair(graph)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert graph.cycles() == [("a", "b")]
        report = graph.describe(graph.cycles())
        assert "a -> b -> a" in report

    def test_inversion_across_threads(self):
        graph = LockGraph()
        a, b = _pair(graph)

        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        # Run serially in two threads: held stacks are thread-local, so
        # the edges land in the shared graph without any deadlock risk.
        for target in (forward, backward):
            thread = threading.Thread(target=target)
            thread.start()
            thread.join()
        assert graph.cycles() == [("a", "b")]

    def test_three_cycle(self):
        graph = LockGraph()
        for held, acquired in (("a", "b"), ("b", "c"), ("c", "a")):
            graph.record(held, acquired)
        assert graph.cycles() == [("a", "b", "c")]

    def test_same_name_edges_ignored(self):
        # Two instances sharing a role (every Counter is "counter"):
        # name granularity cannot order them, so no self-loop FP.
        graph = LockGraph()
        first = TrackedLock("counter", graph)
        second = TrackedLock("counter", graph)
        with first:
            with second:
                pass
        assert graph.edges() == set()
        assert graph.cycles() == []

    def test_consistent_order_stays_clean(self):
        graph = LockGraph()
        a, b = _pair(graph)
        for _ in range(3):
            with a:
                with b:
                    pass
        assert graph.cycles() == []


class TestTrackedLock:
    def test_reentrant_reacquisition_records_nothing(self):
        graph = LockGraph()
        lock = TrackedLock("cache", graph, reentrant=True)
        with lock:
            with lock:
                pass
        assert graph.edges() == set()

    def test_non_blocking_acquire_failure_records_nothing(self):
        graph = LockGraph()
        a, b = _pair(graph)
        b._inner.acquire()  # simulate another holder
        try:
            with a:
                assert b.acquire(blocking=False) is False
            assert graph.edges() == set()
        finally:
            b._inner.release()

    def test_out_of_order_release_unwinds_correctly(self):
        graph = LockGraph()
        a, b = _pair(graph)
        a.acquire()
        b.acquire()
        a.release()  # legal, just unusual
        # b is still held: acquiring c now must record b -> c, not a -> c.
        c = TrackedLock("c", graph)
        c.acquire()
        c.release()
        b.release()
        assert ("b", "c") in graph.edges()
        assert ("a", "c") not in graph.edges()


class TestFactoryIntegration:
    @pytest.fixture
    def tracked(self):
        graph = LockGraph()
        previous = locking.set_lock_factory(tracking_factory(graph))
        try:
            yield graph
        finally:
            locking.set_lock_factory(previous)

    def test_named_lock_goes_through_factory(self, tracked):
        lock = locking.named_lock("x")
        assert isinstance(lock, TrackedLock)
        assert lock.name == "x"

    def test_reentrant_named_lock(self, tracked):
        lock = locking.named_lock("x", reentrant=True)
        with lock:
            with lock:  # must not deadlock
                pass

    def test_set_lock_factory_returns_previous(self):
        # Self-contained under any ambient factory (the REPRO_LOCK_ORDER
        # session installs one): swapping in and back must round-trip.
        graph = LockGraph()
        factory = tracking_factory(graph)
        previous = locking.set_lock_factory(factory)
        assert locking.set_lock_factory(previous) is factory

    def test_engine_serving_records_clean_graph(self, tracked):
        # A real server built under the tracking factory: its locks are
        # wrapped, serving works, and the observed orderings are acyclic.
        db = Database(
            [Relation("R", 2, [(1, 2), (2, 3)]), Relation("S", 2, [(2, 4), (3, 5)])]
        )
        server = ViewServer(db)
        name = server.register("Q^bff(x, y, z) = R(x, y), S(y, z)", tau=1.0)
        rows = list(server.answer(name, (2,)))
        assert rows
        assert tracked.cycles() == []

    def test_is_broken_reads_under_the_lock(self, tracked):
        # Regression: ParallelBuilder.is_broken used to read _broken
        # without the lock (lock-discipline finding). The tracked lock
        # proves the property acquires it now.
        from repro.engine.parallel import ParallelBuilder

        builder = ParallelBuilder(max_workers=1)
        before = len(tracked_acquisitions := [])

        class Spy(TrackedLock):
            def acquire(self, blocking=True, timeout=-1):
                tracked_acquisitions.append(self.name)
                return super().acquire(blocking, timeout)

        builder._lock = Spy("parallel.builder", tracked)
        assert builder.is_broken is False
        assert len(tracked_acquisitions) == before + 1
