"""Tests for the Example 3 normalization (constants and repeated variables)."""

import pytest

from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.exceptions import QueryError
from repro.joins.hash_join import evaluate_by_hash_join
from repro.query.parser import parse_view
from repro.query.rewriting import normalize_view


@pytest.fixture
def example3_db():
    """Database for Q^fb(x, z) = R(x, y, a), S(y, y, z) with a = 7."""
    r = Relation(
        "R", 3, [(1, 2, 7), (1, 3, 7), (2, 2, 5), (4, 2, 7)]
    )
    s = Relation(
        "S", 3, [(2, 2, 9), (2, 3, 9), (3, 3, 8), (2, 2, 5)]
    )
    return Database([r, s])


def test_example3_rewriting(example3_db):
    view = parse_view("Q^fbfb(x, y, z, u) = R(x, y, 7), S(y, y, z), T(z, u)")
    db = example3_db.replace(Relation("T", 2, [(9, 1), (8, 2)]))
    normalized = normalize_view(view, db)
    assert normalized.view.is_natural_join()
    # R got constant-selected and projected; S got the equality filter.
    assert set(normalized.derived) == {"R__n0", "S__n1"}
    r_prime = normalized.database["R__n0"]
    assert set(r_prime) == {(1, 2), (1, 3), (4, 2)}
    s_prime = normalized.database["S__n1"]
    assert set(s_prime) == {(2, 9), (3, 8), (2, 5)}


def test_rewriting_preserves_semantics(example3_db):
    db = example3_db.replace(Relation("T", 2, [(9, 1), (8, 2), (5, 3)]))
    view = parse_view("Q^fbfb(x, y, z, u) = R(x, y, 7), S(y, y, z), T(z, u)")
    normalized = normalize_view(view, db)
    original = evaluate_by_hash_join(view.query, db)
    rewritten = evaluate_by_hash_join(
        normalized.view.query, normalized.database
    )
    assert original == rewritten


def test_natural_atoms_pass_through(example3_db):
    view = parse_view("Q^bff(y, z, u) = S(y, z, u)")
    normalized = normalize_view(view, example3_db)
    assert normalized.derived == ()
    assert normalized.view.atoms == view.atoms
    assert set(normalized.database["S"]) == set(example3_db["S"])


def test_adornment_is_preserved(example3_db):
    view = parse_view("Q^bf(y, z) = S(y, y, z)")
    normalized = normalize_view(view, example3_db)
    assert normalized.view.pattern == "bf"
    assert normalized.view.head == view.head


def test_non_full_view_rejected(example3_db):
    view = parse_view("Q^b(y) = S(y, y, z)")
    with pytest.raises(QueryError):
        normalize_view(view, example3_db)


def test_arity_mismatch_detected(example3_db):
    view = parse_view("Q^bf(y, z) = S(y, z)")
    with pytest.raises(QueryError):
        normalize_view(view, example3_db)


def test_all_constants_atom():
    db = Database([Relation("R", 2, [(1, 2), (3, 4)]), Relation("S", 1, [(5,)])])
    view = parse_view("Q^f(x) = S(x), R(1, 2)")
    normalized = normalize_view(view, db)
    # R(1,2) becomes a zero-ary derived relation holding the empty tuple.
    derived = normalized.database["R__n1"]
    assert derived.arity == 0
    assert len(derived) == 1
