"""The static-analysis suite: rule corpus, framework contract, live tree.

Each rule gets a known-bad / known-good fixture corpus proving it fires
on the bug shape it was built from and stays quiet on the idioms the
codebase actually uses. The framework tests pin the baseline/suppression
contract (strict both ways), and the live-tree test is the same gate CI
runs: ``python -m repro.analysis src/repro`` must be clean against the
committed baseline.
"""

from __future__ import annotations

import json
from pathlib import Path
from textwrap import dedent

import pytest

from repro.analysis import (
    Analyzer,
    Baseline,
    ModuleInfo,
    RULES,
    active_rules,
)
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.findings import Finding, is_suppressed, parse_suppressions
from repro.analysis.metrics_inventory import (
    check_drift,
    code_metrics,
    describe,
    documented_metrics,
)

REPO = Path(__file__).resolve().parent.parent


def run_rule(rule_id, source, tmp_path, filename="module.py"):
    """Run one rule over a source snippet; returns its findings."""
    path = tmp_path / filename
    path.write_text(dedent(source), encoding="utf-8")
    (rule,) = active_rules([rule_id])
    return list(rule.check(ModuleInfo.parse(path)))


class TestRegistry:
    def test_at_least_five_rules_ship(self):
        assert len(active_rules()) >= 5

    def test_the_named_rules_exist(self):
        active_rules()  # force registration
        assert {
            "lock-discipline",
            "restart-stability",
            "exception-hygiene",
            "shared-aliasing",
            "parity-surface",
        } <= set(RULES)

    def test_unknown_rule_id_is_loud(self):
        with pytest.raises(ValueError, match="unknown rule ids"):
            active_rules(["no-such-rule"])


BAD_LOCK = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}

        def put(self, k, v):
            with self._lock:
                self._items[k] = v

        def peek(self):
            return self._items  # unguarded read of a guarded attribute
"""

GOOD_LOCK = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}
            self.config = {"mode": "fast"}

        def put(self, k, v):
            with self._lock:
                self._items[k] = v
                self._publish(k)

        def get(self, k):
            with self._lock:
                return self._items.get(k)

        def mode(self):
            # config is write-once (__init__ only): reads cannot race,
            # even though get_mode_locked touches it under the lock.
            return self.config["mode"]

        def get_mode_locked(self):
            return (self.config["mode"], len(self._items))

        def _publish(self, k):
            # private helper, only ever called under the lock: the
            # fixpoint qualifies it, so its unguarded access is fine.
            self._items[k] = self._items.get(k)

        def describe(self):
            # calling a sibling method unguarded is fine; methods never
            # rebind per-instance.
            return self.size()

        def size(self):
            with self._lock:
                return len(self._items)
"""


class TestLockDiscipline:
    def test_fires_on_the_unguarded_read(self, tmp_path):
        findings = run_rule("lock-discipline", BAD_LOCK, tmp_path)
        assert len(findings) == 1
        (finding,) = findings
        assert finding.scope == "Store.peek"
        assert finding.key == "Store.peek:_items"
        assert "_lock" in finding.message

    def test_quiet_on_the_disciplined_idioms(self, tmp_path):
        assert run_rule("lock-discipline", GOOD_LOCK, tmp_path) == []

    def test_wrong_lock_is_flagged(self, tmp_path):
        source = """
            import threading

            class Two:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._a:
                        self._n += 1

                def read(self):
                    with self._b:
                        return self._n
            """
        findings = run_rule("lock-discipline", source, tmp_path)
        assert [f.key for f in findings] == ["Two.read:_n"]
        assert "under _b only" in findings[0].message

    def test_locked_suffix_helper_is_exempt(self, tmp_path):
        source = """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, k, v):
                    with self._lock:
                        self._items[k] = v

                def evict_locked(self):
                    # caller-holds-the-lock convention
                    self._items.clear()
            """
        assert run_rule("lock-discipline", source, tmp_path) == []

    def test_inline_allow_suppresses(self, tmp_path):
        allow = "# analysis: allow[lock-discipline] benign race"
        source = BAD_LOCK.replace(
            "return self._items  # unguarded read of a guarded attribute",
            f"return self._items  {allow}",
        )
        path = tmp_path / "module.py"
        path.write_text(dedent(source), encoding="utf-8")
        analyzer = Analyzer(rules=active_rules(["lock-discipline"]))
        report = analyzer.run([path])
        assert report.findings == []
        assert len(report.suppressed) == 1
        assert report.ok


class TestRestartStability:
    def test_hash_in_topology_module_fires(self, tmp_path):
        source = """
            def route(value, n):
                return hash(value) % n
            """
        findings = run_rule(
            "restart-stability", source, tmp_path, filename="topology.py"
        )
        assert [f.key for f in findings] == ["route:hash:1"]

    def test_id_and_set_iteration_fire(self, tmp_path):
        source = """
            def snapshot_order(shards):
                tag = id(shards)
                out = []
                for shard in set(shards):
                    out.append((tag, shard))
                return out
            """
        findings = run_rule(
            "restart-stability", source, tmp_path, filename="snapshot_codec.py"
        )
        kinds = sorted(f.key for f in findings)
        assert kinds == [
            "snapshot_order:id:1",
            "snapshot_order:set-iteration:1",
        ]

    def test_other_modules_are_out_of_scope(self, tmp_path):
        source = """
            def anywhere(value):
                return hash(value)
            """
        assert (
            run_rule(
                "restart-stability", source, tmp_path, filename="engine.py"
            )
            == []
        )

    def test_dunder_hash_is_exempt(self, tmp_path):
        source = """
            class Key:
                def __hash__(self):
                    return hash(("Key", 1))
            """
        assert (
            run_rule(
                "restart-stability", source, tmp_path, filename="topology.py"
            )
            == []
        )


class TestExceptionHygiene:
    def test_bare_except_fires(self, tmp_path):
        source = """
            def load(path):
                try:
                    return open(path).read()
                except:
                    return None
            """
        findings = run_rule("exception-hygiene", source, tmp_path)
        assert len(findings) == 1
        assert "bare" in findings[0].message.lower()

    def test_swallowing_broad_except_fires(self, tmp_path):
        source = """
            def decode(blob):
                try:
                    return eval(blob)
                except Exception:
                    return None

            def decode2(blob):
                try:
                    return eval(blob)
                except (ValueError, BaseException):
                    return None
            """
        findings = run_rule("exception-hygiene", source, tmp_path)
        assert len(findings) == 2

    def test_reraising_broad_except_is_fine(self, tmp_path):
        source = """
            def guarded(blob):
                try:
                    return eval(blob)
                except Exception as exc:
                    raise RuntimeError("decode failed") from exc
            """
        assert run_rule("exception-hygiene", source, tmp_path) == []

    def test_narrow_except_is_fine(self, tmp_path):
        source = """
            def narrow(blob):
                try:
                    return int(blob)
                except (ValueError, TypeError):
                    return 0
            """
        assert run_rule("exception-hygiene", source, tmp_path) == []


class TestSharedAliasing:
    def test_state_method_leaking_mutable_attr_fires(self, tmp_path):
        source = """
            class Table:
                def __init__(self):
                    self._rows = []

                def to_state(self):
                    return {"rows": self._rows}
            """
        findings = run_rule("shared-aliasing", source, tmp_path)
        assert [f.key for f in findings] == ["Table.to_state:_rows"]

    def test_copied_state_is_fine(self, tmp_path):
        source = """
            class Table:
                def __init__(self):
                    self._rows = []

                def to_state(self):
                    return {"rows": list(self._rows)}
            """
        assert run_rule("shared-aliasing", source, tmp_path) == []

    def test_partition_broadcasting_one_object_fires(self, tmp_path):
        # The PR 6 bug shape: the same database object stored into
        # every shard's slot.
        source = """
            def partition_database(db, shards):
                out = {}
                for shard in shards:
                    out[shard] = db
                return out
            """
        findings = run_rule("shared-aliasing", source, tmp_path)
        assert len(findings) == 1
        assert "db" in findings[0].message

    def test_scattering_loop_values_is_fine(self, tmp_path):
        # Per-iteration loop targets are a fresh object each pass —
        # exactly how the real partition_database distributes rows.
        source = """
            def partition_rows(rows, key, n):
                out = {i: [] for i in range(n)}
                for row in rows:
                    out[key(row) % n].append(row)
                return out
            """
        assert run_rule("shared-aliasing", source, tmp_path) == []


KERNEL_CLASS_OK = """
    def kernel_enumerate(layout, access):
        yield ()

    class Repr:
        def enumerate(self, access, counter=None):
            if self.layout is not None:
                yield from kernel_enumerate(self.layout, access)
            else:
                yield from self._eval(access, counter)

        def enumerate_from(self, access, start_values, counter=None):
            if self.layout is not None:
                yield from kernel_enumerate(self.layout, access)
            else:
                yield from self._eval(access, counter)

        def enumerate_after(self, access, last, counter=None):
            yield from self.enumerate_from(access, last, counter=counter)
"""


class TestParitySurface:
    def test_the_dual_route_shape_is_clean(self, tmp_path):
        assert run_rule("parity-surface", KERNEL_CLASS_OK, tmp_path) == []

    def test_missing_reference_route_fires(self, tmp_path):
        source = """
            def kernel_enumerate(layout, access):
                yield ()

            class Repr:
                def enumerate_from(self, access, start_values, counter=None):
                    yield from kernel_enumerate(self.layout, access)
            """
        findings = run_rule("parity-surface", source, tmp_path)
        assert [f.key for f in findings] == [
            "Repr.enumerate_from:reference-route"
        ]

    def test_missing_kernel_route_fires(self, tmp_path):
        source = """
            def kernel_enumerate(layout, access):
                yield ()

            class Repr:
                def enumerate(self, access, counter=None):
                    yield from kernel_enumerate(self.layout, access)
                    yield from self._eval(access)

                def enumerate_from(self, access, start_values, counter=None):
                    yield from self._eval(access)
            """
        findings = run_rule("parity-surface", source, tmp_path)
        assert [f.key for f in findings] == [
            "Repr.enumerate_from:kernel-route"
        ]

    def test_signature_drift_fires(self, tmp_path):
        source = """
            class Repr:
                def enumerate_from(self, access, start, counter=None):
                    yield from self._eval(access)
            """
        findings = run_rule("parity-surface", source, tmp_path)
        assert [f.key for f in findings] == [
            "Repr.enumerate_from:signature"
        ]

    def test_non_kernel_class_only_checks_signatures(self, tmp_path):
        # The decomposed/dynamic wrappers: no kernel_* calls (a
        # kernel_ready property does not count), so no route demands.
        source = """
            class Wrapper:
                @property
                def kernel_ready(self):
                    return all(b.kernel_ready for b in self._bags)

                def enumerate_from(self, access, start_values, counter=None):
                    yield from self._walk(access)
            """
        assert run_rule("parity-surface", source, tmp_path) == []


class TestSuppressionsAndBaseline:
    def test_parse_suppressions_forms(self):
        source = (
            "a = 1  # analysis: allow[lock-discipline] reason\n"
            "b = 2  # analysis: allow[a-rule, b-rule] reason\n"
            "c = 3  # analysis: allow everything here\n"
            "d = 4\n"
        )
        waived = parse_suppressions(source)
        assert waived[1] == {"lock-discipline"}
        assert waived[2] == {"a-rule", "b-rule"}
        assert waived[3] == {"*"}
        assert 4 not in waived

    def test_is_suppressed_matches_rule_and_wildcard(self):
        finding = Finding(
            rule="lock-discipline",
            path=Path("x.py"),
            line=3,
            scope="s",
            key="k",
            message="m",
        )
        assert is_suppressed(finding, {3: {"lock-discipline"}})
        assert is_suppressed(finding, {3: {"*"}})
        assert not is_suppressed(finding, {3: {"other-rule"}})
        assert not is_suppressed(finding, {4: {"lock-discipline"}})

    def test_baseline_round_trip_and_staleness(self, tmp_path):
        baseline_file = tmp_path / "baseline.txt"
        baseline_file.write_text(
            "# justification\nrule-a\tmod.py\tScope:key\n", encoding="utf-8"
        )
        baseline = Baseline.load(baseline_file)
        hit = Finding(
            rule="rule-a",
            path=Path("mod.py"),
            line=1,
            scope="Scope",
            key="Scope:key",
            message="m",
        )
        assert baseline.contains(hit)
        assert baseline.stale([hit]) == []
        assert baseline.stale([]) == [("rule-a", "mod.py", "Scope:key")]

    def test_malformed_baseline_is_loud(self, tmp_path):
        bad = tmp_path / "baseline.txt"
        bad.write_text("rule-a only-two-fields\n", encoding="utf-8")
        with pytest.raises(ValueError, match="malformed baseline line"):
            Baseline.load(bad)

    def test_stale_baseline_entry_fails_the_run(self, tmp_path):
        source = "x = 1\n"
        (tmp_path / "clean.py").write_text(source, encoding="utf-8")
        baseline = Baseline(entries={("lock-discipline", "clean.py", "gone")})
        report = Analyzer(
            rules=active_rules(), baseline=baseline
        ).run([tmp_path])
        assert report.findings == []
        assert report.stale_baseline == [
            ("lock-discipline", "clean.py", "gone")
        ]
        assert not report.ok

    def test_baselined_finding_passes_but_is_counted(self, tmp_path):
        path = tmp_path / "store.py"
        path.write_text(dedent(BAD_LOCK), encoding="utf-8")
        baseline = Baseline(
            entries={("lock-discipline", "store.py", "Store.peek:_items")}
        )
        report = Analyzer(
            rules=active_rules(["lock-discipline"]), baseline=baseline
        ).run([path])
        assert report.ok
        assert len(report.baselined) == 1


class TestCli:
    def test_exit_one_on_findings_and_zero_with_baseline(
        self, tmp_path, capsys
    ):
        path = tmp_path / "store.py"
        path.write_text(dedent(BAD_LOCK), encoding="utf-8")
        baseline = tmp_path / "baseline.txt"
        assert analysis_main([str(path), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "lint-deep FAILED" in out
        assert "[lock-discipline]" in out
        baseline.write_text(
            "lock-discipline\tstore.py\tStore.peek:_items\n",
            encoding="utf-8",
        )
        assert analysis_main([str(path), "--baseline", str(baseline)]) == 0
        assert "lint-deep ok" in capsys.readouterr().out

    def test_update_baseline_writes_current_findings(self, tmp_path, capsys):
        path = tmp_path / "store.py"
        path.write_text(dedent(BAD_LOCK), encoding="utf-8")
        baseline = tmp_path / "baseline.txt"
        assert (
            analysis_main(
                [str(path), "--baseline", str(baseline), "--update-baseline"]
            )
            == 0
        )
        assert (
            "lock-discipline\tstore.py\tStore.peek:_items"
            in baseline.read_text()
        )
        assert analysis_main([str(path), "--baseline", str(baseline)]) == 0

    def test_json_output_shape(self, tmp_path, capsys):
        path = tmp_path / "store.py"
        path.write_text(dedent(BAD_LOCK), encoding="utf-8")
        analysis_main(
            [str(path), "--baseline", str(tmp_path / "nope.txt"), "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["files_scanned"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "lock-discipline"
        assert finding["key"] == "Store.peek:_items"

    def test_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "lock-discipline",
            "restart-stability",
            "exception-hygiene",
            "shared-aliasing",
            "parity-surface",
        ):
            assert rule_id in out


class TestLiveTree:
    def test_src_repro_is_clean_against_the_committed_baseline(self):
        # The exact gate `make lint-deep` runs in CI.
        analyzer = Analyzer(
            rules=active_rules(),
            baseline=Baseline.load(REPO / "analysis-baseline.txt"),
        )
        report = analyzer.run([REPO / "src" / "repro"])
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.ok, f"live-tree findings:\n{rendered}"

    def test_committed_baseline_stays_small_and_justified(self):
        text = (REPO / "analysis-baseline.txt").read_text(encoding="utf-8")
        entries = [
            line
            for line in text.splitlines()
            if line.strip() and not line.startswith("#")
        ]
        assert 0 < len(entries) <= 5
        assert "#" in text, "baseline entries need justification comments"


class TestMetricsInventory:
    def test_literal_and_fstring_extraction(self, tmp_path):
        path = tmp_path / "emitter.py"
        path.write_text(
            dedent(
                """
                def setup(telemetry, kind):
                    telemetry.counter("requests_total", view="v").inc()
                    telemetry.counter(f"cache_{kind}_total").inc()
                    telemetry.gauge("depth").set(1)
                    telemetry.histogram(name_variable)  # dynamic: skipped
                """
            ),
            encoding="utf-8",
        )
        uses = code_metrics([path])
        by_name = {(u.kind, u.name): u for u in uses}
        assert ("counter", "requests_total") in by_name
        assert by_name[("counter", "cache_*_total")].pattern
        assert ("gauge", "depth") in by_name
        assert len(uses) == 3

    def test_doc_table_parsing(self, tmp_path):
        doc = tmp_path / "OPERATIONS.md"
        doc.write_text(
            dedent(
                """
                ## Metric inventory

                ### Counters

                | Name | Labels |
                | --- | --- |
                | `requests_total` | `view` |
                | `cache_hits_total` | — |

                ### Gauges

                | Name | Labels |
                | --- | --- |
                | `depth` | — |

                ## Another section

                | `not_a_metric` | — |
                """
            ),
            encoding="utf-8",
        )
        documented = documented_metrics(doc)
        assert documented["counter"] == {"requests_total", "cache_hits_total"}
        assert documented["gauge"] == {"depth"}
        assert documented["histogram"] == set()

    def test_drift_both_directions(self, tmp_path):
        path = tmp_path / "emitter.py"
        path.write_text(
            't.counter("undocumented_total")\n', encoding="utf-8"
        )
        uses = code_metrics([path])
        documented = {
            "counter": {"ghost_total"},
            "gauge": set(),
            "histogram": set(),
        }
        drift = check_drift(uses, documented)
        assert not drift.ok
        assert [u.name for u in drift.undocumented] == ["undocumented_total"]
        assert drift.unemitted == [("counter", "ghost_total")]
        report = describe(drift)
        assert "undocumented_total" in report
        assert "ghost_total" in report

    def test_pattern_covers_documented_family(self, tmp_path):
        path = tmp_path / "emitter.py"
        path.write_text(
            'def f(t, k):\n    t.counter(f"cache_{k}_total")\n',
            encoding="utf-8",
        )
        uses = code_metrics([path])
        documented = {
            "counter": {"cache_hits_total", "cache_misses_total"},
            "gauge": set(),
            "histogram": set(),
        }
        assert check_drift(uses, documented).ok

    def test_live_inventory_is_in_sync(self):
        # The exact gate `make docs-check` runs in CI.
        uses = code_metrics([REPO / "src" / "repro"])
        documented = documented_metrics(REPO / "docs" / "OPERATIONS.md")
        drift = check_drift(uses, documented)
        assert drift.ok, describe(drift)
