"""Width computations: Figures 2 and 7, Examples 9, 16, 17.

These tests pin every width number the paper states.
"""

import pytest

from repro.exceptions import DecompositionError
from repro.hypergraph.connex import (
    all_connex_decompositions,
    connex_decomposition_from_order,
)
from repro.hypergraph.decomposition import TreeDecomposition
from repro.hypergraph.hypergraph import hypergraph_of_view
from repro.hypergraph.width import (
    DelayAssignment,
    bag_delta_cover,
    connex_fhw,
    decomposition_fhw,
    delta_height,
    delta_width,
    fhw,
)
from repro.query.atoms import Variable
from repro.query.parser import parse_view
from repro.workloads.queries import (
    figure2_view,
    figure7_view,
    loomis_whitney_view,
    path_view,
    triangle_view,
)


def v(name):
    return Variable(name)


class TestFhw:
    def test_acyclic_path_has_fhw_one(self):
        hg = hypergraph_of_view(path_view(4, pattern="fffff"))
        assert fhw(hg) == pytest.approx(1.0, abs=1e-6)

    def test_triangle_fhw(self):
        hg = hypergraph_of_view(triangle_view("fff"))
        assert fhw(hg) == pytest.approx(1.5, abs=1e-6)

    def test_loomis_whitney_fhw(self):
        hg = hypergraph_of_view(loomis_whitney_view(3, pattern="fff"))
        assert fhw(hg) == pytest.approx(1.5, abs=1e-6)

    def test_figure7_fhw_is_two(self):
        hg = hypergraph_of_view(figure7_view())
        assert fhw(hg) == pytest.approx(2.0, abs=1e-6)


class TestConnexFhw:
    def test_figure7_connex_width(self):
        """Example 17: fhw = 2 but fhw(H | {v1..v4}) = 3/2."""
        view = figure7_view()
        hg = hypergraph_of_view(view)
        width, decomposition = connex_fhw(
            hg, frozenset(view.bound_variables)
        )
        assert width == pytest.approx(1.5, abs=1e-6)
        decomposition.validate_connex(hg)

    def test_example16_inverse_situation(self):
        """Example 16: R(x,y), S(y,z) with V_b = {x,z} has connex width 2."""
        view = parse_view("Q^bfb(x, y, z) = R(x, y), S(y, z)")
        hg = hypergraph_of_view(view)
        width, _ = connex_fhw(hg, frozenset(view.bound_variables))
        assert width == pytest.approx(2.0, abs=1e-6)
        assert fhw(hg) == pytest.approx(1.0, abs=1e-6)

    def test_empty_connex_set_recovers_fhw(self):
        hg = hypergraph_of_view(triangle_view("fff"))
        width, _ = connex_fhw(hg, frozenset())
        assert width == pytest.approx(fhw(hg), abs=1e-6)

    def test_running_example_connex_width(self):
        """Section 3.2 discussion: the running example has δ-width 5/3 at
        δ = (1/3, 1/6) on Figure 2's right decomposition; at δ = 0 its
        connex width drives Theorem 2's space O(|D|^f)."""
        view = figure2_view()
        hg = hypergraph_of_view(view)
        width, _ = connex_fhw(hg, frozenset(view.bound_variables))
        assert width == pytest.approx(2.0, abs=1e-6)


class TestFigure2:
    def _decomposition(self):
        """The right-hand decomposition of Figure 2."""
        bags = {
            "tb": {v("v1"), v("v5"), v("v6")},
            "t1": {v("v2"), v("v4"), v("v1"), v("v5")},
            "t2": {v("v2"), v("v3"), v("v4")},
            "t3": {v("v6"), v("v7")},
        }
        edges = [("tb", "t1"), ("t1", "t2"), ("tb", "t3")]
        from repro.hypergraph.connex import ConnexDecomposition

        return ConnexDecomposition(
            bags, edges, "tb", {v("v1"), v("v5"), v("v6")}
        )

    def test_is_valid_for_the_path_hypergraph(self):
        hg = hypergraph_of_view(figure2_view())
        self._decomposition().validate(hg)

    def test_example9_delta_width(self):
        """Example 9: δ = (1/3, 1/6, 0) gives δ-width 5/3 and height 1/2."""
        hg = hypergraph_of_view(figure2_view())
        decomposition = self._decomposition()
        assignment = DelayAssignment({"t1": 1 / 3, "t2": 1 / 6, "t3": 0.0})
        assert delta_width(decomposition, hg, assignment) == pytest.approx(
            5 / 3, abs=1e-6
        )
        assert delta_height(decomposition, assignment) == pytest.approx(
            0.5, abs=1e-9
        )

    def test_example9_bag_covers(self):
        """Example 9's per-bag numbers: ρ+ = 5/3 for t1, t2; 1 for t3."""
        hg = hypergraph_of_view(figure2_view())
        decomposition = self._decomposition()
        t1 = bag_delta_cover(
            hg,
            decomposition.bags["t1"],
            decomposition.bag_free("t1"),
            1 / 3,
        )
        assert t1.rho_plus == pytest.approx(5 / 3, abs=1e-6)
        assert t1.u_plus == pytest.approx(2.0, abs=1e-6)
        t2 = bag_delta_cover(
            hg,
            decomposition.bags["t2"],
            decomposition.bag_free("t2"),
            1 / 6,
        )
        assert t2.rho_plus == pytest.approx(5 / 3, abs=1e-6)
        assert t2.u_plus == pytest.approx(2.0, abs=1e-6)
        t3 = bag_delta_cover(
            hg,
            decomposition.bags["t3"],
            decomposition.bag_free("t3"),
            0.0,
        )
        assert t3.rho_plus == pytest.approx(1.0, abs=1e-6)
        assert t3.u_plus == pytest.approx(1.0, abs=1e-6)

    def test_zero_delay_width_is_connex_fhw(self):
        hg = hypergraph_of_view(figure2_view())
        decomposition = self._decomposition()
        zero = DelayAssignment({})
        assert delta_width(decomposition, hg, zero) == pytest.approx(
            2.0, abs=1e-6
        )


class TestDecompositions:
    def test_validate_catches_missing_edge(self):
        hg = hypergraph_of_view(triangle_view("fff"))
        bad = TreeDecomposition(
            {0: {v("x"), v("y")}, 1: {v("y"), v("z")}}, [(0, 1)], 0
        )
        with pytest.raises(DecompositionError):
            bad.validate(hg)

    def test_validate_catches_disconnected_variable(self):
        hg = hypergraph_of_view(path_view(3, pattern="ffff"))
        bad = TreeDecomposition(
            {
                0: {v("x1"), v("x2")},
                1: {v("x2"), v("x3")},
                2: {v("x3"), v("x4"), v("x1")},
            },
            [(0, 1), (1, 2)],
            0,
        )
        # x1 appears in bags 0 and 2 but not 1: running intersection fails.
        with pytest.raises(DecompositionError):
            bad.validate(hg)

    def test_elimination_orders_yield_valid_decompositions(self):
        view = figure7_view()
        hg = hypergraph_of_view(view)
        connex = frozenset(view.bound_variables)
        count = 0
        for decomposition in all_connex_decompositions(hg, connex):
            decomposition.validate_connex(hg)
            count += 1
        assert count == 1  # one free vertex => one order

    def test_bag_bound_and_free(self):
        view = figure2_view()
        hg = hypergraph_of_view(view)
        connex = frozenset(view.bound_variables)
        order = [v("v3"), v("v2"), v("v4"), v("v7")]
        decomposition = connex_decomposition_from_order(hg, connex, order)
        decomposition.validate_connex(hg)
        for node in decomposition.non_root_nodes():
            bound = decomposition.bag_bound(node)
            free = decomposition.bag_free(node)
            assert bound | free == decomposition.bags[node]
            assert not bound & free

    def test_decomposition_fhw_excludes_root(self):
        view = figure7_view()
        hg = hypergraph_of_view(view)
        _, decomposition = connex_fhw(hg, frozenset(view.bound_variables))
        with_root = decomposition_fhw(decomposition, hg)
        without_root = decomposition_fhw(
            decomposition, hg, exclude=[decomposition.root]
        )
        assert with_root == pytest.approx(2.0, abs=1e-6)
        assert without_root == pytest.approx(1.5, abs=1e-6)
