"""The delay-balanced tree: Figure 3's exact shape and Lemma 4's bounds."""

import math

import pytest

from repro.core.balanced_tree import build_delay_balanced_tree
from repro.core.context import ViewContext
from repro.core.cost import CostModel
from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.exceptions import ParameterError
from repro.workloads.generators import triangle_database
from repro.workloads.queries import (
    running_example_database,
    running_example_view,
    triangle_view,
)

UNIT_WEIGHTS = {0: 1.0, 1: 1.0, 2: 1.0}


@pytest.fixture
def model():
    ctx = ViewContext(running_example_view(), running_example_database())
    return CostModel(ctx, UNIT_WEIGHTS, alpha=2.0)


class TestFigure3:
    def test_exact_tree_shape(self, model):
        """The tree of Figure 3 for τ = 4, α = 2."""
        tree = build_delay_balanced_tree(model, tau=4.0, alpha=2.0)
        space = model.ctx.space
        root = tree.root
        assert space.values(root.interval.low) == (1, 1, 1)
        assert space.values(root.interval.high) == (2, 2, 2)
        assert space.values(root.beta) == (1, 1, 2)
        # Left child rl: the unit interval [⟨1,1,1⟩, ⟨1,1,1⟩], a leaf.
        rl = root.left
        assert rl.is_leaf
        assert space.values(rl.interval.low) == (1, 1, 1)
        assert space.values(rl.interval.high) == (1, 1, 1)
        # Right child rr: [⟨1,2,1⟩, ⟨2,2,2⟩] split at (1,2,2).
        rr = root.right
        assert space.values(rr.interval.low) == (1, 2, 1)
        assert space.values(rr.interval.high) == (2, 2, 2)
        assert space.values(rr.beta) == (1, 2, 2)
        # Grandchildren rrl, rrr are leaves with the paper's intervals.
        rrl, rrr = rr.left, rr.right
        assert rrl.is_leaf and rrr.is_leaf
        assert space.values(rrl.interval.low) == (1, 2, 1)
        assert space.values(rrl.interval.high) == (1, 2, 1)
        assert space.values(rrr.interval.low) == (2, 1, 1)
        assert space.values(rrr.interval.high) == (2, 2, 2)
        assert len(tree.nodes) == 5

    def test_leaf_costs_below_thresholds(self, model):
        """Example 14: T(rl) ≈ 2.449 < τ_1 ≈ 2.83; leaf costs < τ_2 = 2."""
        tree = build_delay_balanced_tree(model, tau=4.0, alpha=2.0)
        assert tree.threshold(1) == pytest.approx(4 / math.sqrt(2), abs=1e-9)
        assert tree.threshold(2) == pytest.approx(2.0, abs=1e-9)
        rl = tree.root.left
        assert rl.cost == pytest.approx(math.sqrt(6), abs=1e-9)
        assert rl.cost < tree.threshold(rl.level)
        for leaf in tree.leaves():
            assert (
                leaf.cost < tree.threshold(leaf.level)
                or leaf.interval.is_unit()
            )


class TestTreeProperties:
    def test_cost_halves_along_edges(self, model):
        """Lemma 4(1): every child's cost is at most half its parent's."""
        tree = build_delay_balanced_tree(model, tau=1.0, alpha=2.0)
        for node in tree.nodes:
            for child in (node.left, node.right):
                if child is not None:
                    assert child.cost <= node.cost / 2 + 1e-9

    def test_large_tau_gives_single_leaf(self, model):
        tree = build_delay_balanced_tree(model, tau=100.0, alpha=2.0)
        assert len(tree.nodes) == 1
        assert tree.root.is_leaf

    def test_smaller_tau_gives_larger_tree(self):
        view = triangle_view("bbf")
        db = triangle_database(25, 120, seed=4)
        ctx = ViewContext(view, db)
        sizes = []
        for tau in (64.0, 8.0, 1.0):
            model = CostModel(ctx, {0: 0.5, 1: 0.5, 2: 0.5}, alpha=1.0)
            tree = build_delay_balanced_tree(model, tau=tau, alpha=1.0)
            sizes.append(len(tree.nodes))
        assert sizes[0] <= sizes[1] <= sizes[2]

    def test_tree_size_bound(self, model):
        """Lemma 4(2): |T| = O(Π|R_F|^{u_F}/τ^α) — check the 4x constant."""
        for tau in (2.0, 4.0, 8.0):
            tree = build_delay_balanced_tree(model, tau=tau, alpha=2.0)
            agm = 5.0 ** 3  # |R1||R2||R3| with unit weights
            assert len(tree.nodes) <= max(1, 4 * agm / tau ** 2)

    def test_intervals_partition_space(self, model):
        """Leaf intervals plus split points tile the whole tuple space."""
        tree = build_delay_balanced_tree(model, tau=1.0, alpha=2.0)
        space = model.ctx.space
        covered = set()

        def visit(node):
            if node is None:
                return
            if node.is_leaf:
                point = node.interval.low
                while point is not None and point <= node.interval.high:
                    covered.add(point)
                    point = space.successor(point)
                return
            visit(node.left)
            covered.add(node.beta)
            visit(node.right)

        visit(tree.root)
        # Pruned zero-cost regions are allowed to be missing; everything
        # covered must be distinct and within the space.
        assert len(covered) == len(set(covered))
        total = space.size()
        assert len(covered) <= total

    def test_empty_space_yields_empty_tree(self):
        view = running_example_view()
        db = Database(
            [Relation("R1", 3), Relation("R2", 3), Relation("R3", 3)]
        )
        ctx = ViewContext(view, db)
        model = CostModel(ctx, UNIT_WEIGHTS, alpha=2.0)
        tree = build_delay_balanced_tree(model, tau=4.0, alpha=2.0)
        assert tree.root is None
        assert len(tree.nodes) == 0

    def test_invalid_tau_rejected(self, model):
        with pytest.raises(ParameterError):
            build_delay_balanced_tree(model, tau=0.0, alpha=2.0)

    def test_infinite_alpha_thresholds(self, model):
        tree = build_delay_balanced_tree(model, tau=4.0, alpha=math.inf)
        assert tree.threshold(2) == pytest.approx(1.0)
