"""The representation cache's disk tier and cost-aware eviction.

Disk tier: ``get_or_build`` must prefer decoding a snapshot over running
the factory, write snapshots after fresh builds, demote evicted entries
instead of discarding them, and treat corrupt or wrong-database files as
plain misses. Invalidation (unlike eviction) drops the disk copy too.

Cost policy: with ``policy="cost"`` the eviction victim is the resident
with the smallest ``build_seconds × cells`` — the cheapest entry to
lose — with recency only as the tie-break, exercised on a mixed
two-view workload through the server layer.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import CompressedRepresentation, ViewServer, parse_view
from repro.core.snapshot import SnapshotStore, database_fingerprint
from repro.engine.cache import CacheStats, RepresentationCache
from repro.exceptions import ParameterError
from repro.workloads import triangle_database, triangle_view
from repro.workloads.scenarios import coauthor_database


@pytest.fixture(scope="module")
def workload():
    view = triangle_view("bbf")
    db = triangle_database(nodes=20, edges=90, seed=5)
    return view, db


def _build(view, db, tau, build_seconds=None):
    representation = CompressedRepresentation(view, db, tau=tau)
    if build_seconds is not None:
        # BuildStats is frozen; tests pin the measured wall time to make
        # cost-policy ordering deterministic.
        representation.stats = replace(
            representation.stats, build_seconds=build_seconds
        )
    return representation


def _store(tmp_path, db):
    return SnapshotStore(tmp_path, fingerprint=database_fingerprint(db))


class TestDiskTier:
    def test_get_or_build_writes_then_warm_loads(self, workload, tmp_path):
        view, db = workload
        store = _store(tmp_path, db)
        cache = RepresentationCache(snapshot_store=store)
        built = cache.get_or_build("k", lambda: _build(view, db, 8.0))
        assert cache.stats.disk_writes == 1
        assert cache.stats.disk_hits == 0

        # A "restarted" cache over the same directory decodes instead of
        # building: the factory must never run.
        def explode():
            raise AssertionError("warm start ran the factory")

        rebooted = RepresentationCache(snapshot_store=_store(tmp_path, db))
        restored = rebooted.get_or_build("k", explode)
        assert rebooted.stats.disk_hits == 1
        assert rebooted.stats.misses == 1  # memory tier still missed
        assert restored.answer((3, 7)) == built.answer((3, 7))

    def test_custom_labels_decouple_keys_from_files(self, workload, tmp_path):
        view, db = workload
        cache = RepresentationCache(snapshot_store=_store(tmp_path, db))
        cache.get_or_build(
            ("name", 8.0, 1), lambda: _build(view, db, 8.0),
            snapshot_label="stable-label",
        )
        # A different key (a restarted server's new generation) with the
        # same label warm-loads.
        rebooted = RepresentationCache(snapshot_store=_store(tmp_path, db))
        rebooted.get_or_build(
            ("name", 8.0, 7),
            lambda: pytest.fail("label should have warm-loaded"),
            snapshot_label="stable-label",
        )
        assert rebooted.stats.disk_hits == 1

    def test_eviction_demotes_to_disk(self, workload, tmp_path):
        view, db = workload
        store = _store(tmp_path, db)
        cache = RepresentationCache(max_entries=1, snapshot_store=store)
        # put() does not write eagerly (only get_or_build does), so the
        # eviction below is a real demotion, not a no-op on a file that
        # already exists.
        cache.put("a", _build(view, db, 8.0))
        assert cache.stats.disk_writes == 0
        evicted = cache.put("b", _build(view, db, 4.0))
        assert evicted == ["a"]
        assert cache.stats.disk_writes == 1
        rebooted = RepresentationCache(
            max_entries=1, snapshot_store=_store(tmp_path, db)
        )
        restored = rebooted.get_or_build(
            "a", lambda: pytest.fail("demoted entry should warm-load")
        )
        assert restored.answer((3, 7)) == _build(view, db, 8.0).answer((3, 7))

    def test_corrupt_snapshot_is_a_miss_not_an_error(self, workload, tmp_path):
        view, db = workload
        store = _store(tmp_path, db)
        cache = RepresentationCache(snapshot_store=store)
        cache.get_or_build("k", lambda: _build(view, db, 8.0))
        path = store.path_for(repr("k"))
        assert path.exists()
        path.write_bytes(b"not a snapshot at all")
        calls = []
        rebooted = RepresentationCache(snapshot_store=_store(tmp_path, db))
        rebooted.get_or_build(
            "k", lambda: calls.append(1) or _build(view, db, 8.0)
        )
        assert calls == [1]
        assert rebooted.stats.disk_hits == 0

    def test_wrong_database_snapshot_is_refused(self, workload, tmp_path):
        view, db = workload
        cache = RepresentationCache(snapshot_store=_store(tmp_path, db))
        cache.get_or_build("k", lambda: _build(view, db, 8.0))
        other = triangle_database(nodes=20, edges=90, seed=6)
        calls = []
        stale = RepresentationCache(snapshot_store=_store(tmp_path, other))
        stale.get_or_build(
            "k", lambda: calls.append(1) or _build(view, other, 8.0)
        )
        assert calls == [1]
        assert stale.stats.disk_hits == 0

    def test_invalidate_drops_the_disk_copy_too(self, workload, tmp_path):
        view, db = workload
        store = _store(tmp_path, db)
        cache = RepresentationCache(snapshot_store=store)
        cache.get_or_build("k", lambda: _build(view, db, 8.0))
        assert store.path_for(repr("k")).exists()
        assert cache.invalidate("k")
        assert not store.path_for(repr("k")).exists()

    def test_disk_counters_flow_through_delta_and_add(self):
        before = CacheStats(disk_hits=1, disk_writes=2)
        after = CacheStats(disk_hits=4, disk_writes=7)
        delta = after.delta(before)
        assert (delta.disk_hits, delta.disk_writes) == (3, 5)
        total = CacheStats().add(delta).add(delta)
        assert (total.disk_hits, total.disk_writes) == (6, 10)


class TestCostAwareEviction:
    def test_policy_is_validated(self):
        with pytest.raises(ParameterError, match="policy"):
            RepresentationCache(policy="random")

    def test_cost_policy_evicts_cheapest_not_stalest(self, workload):
        view, db = workload
        cache = RepresentationCache(max_entries=2, policy="cost")
        expensive = _build(view, db, 8.0, build_seconds=10.0)
        cheap = _build(view, db, 4.0, build_seconds=0.001)
        middling = _build(view, db, 2.0, build_seconds=0.1)
        cache.put("expensive", expensive)
        cache.put("cheap", cheap)
        cache.get("expensive")  # LRU would now protect it anyway...
        cache.get("cheap")  # ...and then protect cheap over expensive.
        evicted = cache.put("middling", middling)
        # LRU would evict "expensive" (stalest); cost evicts "cheap".
        assert evicted == ["cheap"]
        assert "expensive" in cache and "middling" in cache

    def test_cost_policy_ties_break_by_recency(self, workload):
        view, db = workload
        cache = RepresentationCache(max_entries=2, policy="cost")
        first = _build(view, db, 8.0, build_seconds=1.0)
        second = _build(view, db, 8.0, build_seconds=1.0)
        third = _build(view, db, 8.0, build_seconds=1.0)
        cache.put("first", first)
        cache.put("second", second)
        cache.get("first")  # refresh: "second" becomes the stalest equal
        assert cache.put("third", third) == ["second"]

    def test_lru_policy_unchanged(self, workload):
        view, db = workload
        cache = RepresentationCache(max_entries=2, policy="lru")
        cache.put("a", _build(view, db, 8.0, build_seconds=10.0))
        cache.put("b", _build(view, db, 4.0, build_seconds=0.001))
        assert cache.put("c", _build(view, db, 2.0)) == ["a"]

    def test_mixed_two_view_workload_keeps_the_expensive_view(self, tmp_path):
        """Server-level: a heavy self-join view survives cache pressure.

        The co-author view is orders of magnitude slower to build than
        tiny triangle structures; under ``cache_policy="cost"`` the
        churning cheap entries evict each other while the expensive
        structure stays resident across the whole stream.
        """
        db = coauthor_database(n_authors=40, n_papers=60, seed=2)
        server = ViewServer(db, max_entries=2, cache_policy="cost")
        heavy = server.register(
            parse_view("Heavy^bff(x, y, p) = R(x, p), R(y, p)"), tau=8.0
        )
        cheap = server.register(
            parse_view("Cheap^bf(x, p) = R(x, p)"), tau=8.0
        )
        server.representation(heavy)
        # Churn the cheap view across many τ points: every build lands a
        # new key in the 2-entry cache.
        for tau in [2.0, 4.0, 8.0, 16.0, 32.0]:
            server.answer_batch(cheap, [(1,), (2,)], tau=tau, measure=False)
        assert server.build_count(heavy) == 1
        key = (heavy, 8.0, server.registration(heavy).generation)
        assert key in server.cache  # never evicted, never rebuilt
        stats = server.cache.stats_snapshot()
        assert stats.evictions >= 3
