"""The engine package's docstring contract, enforced without ruff.

``pyproject.toml`` selects ruff's D100–D103 (missing-docstring) rules
for ``src/repro/engine/`` — but ruff is a CI tool, not a runtime
dependency. This test mirrors the same contract with an AST walk so the
tier-1 suite catches a bare public class or method even on machines
where ruff is not installed: every module, every public class, and
every public function/method in the engine package must carry a
docstring. Private names (leading underscore) and dunders other than
the module itself are exempt, matching the ruff configuration.
"""

import ast
from pathlib import Path

import pytest

ENGINE = Path(__file__).resolve().parent.parent / "src" / "repro" / "engine"

MODULES = sorted(ENGINE.glob("*.py"))


def _missing_docstrings(path):
    """Every public definition in ``path`` lacking a docstring."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append(f"{path.name}:1: module docstring")

    def walk(node, prefix):
        for child in ast.iter_child_nodes(node):
            if not isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if child.name.startswith("_"):
                continue
            if ast.get_docstring(child) is None:
                kind = "class" if isinstance(child, ast.ClassDef) else "def"
                missing.append(
                    f"{path.name}:{child.lineno}: {kind} {prefix}{child.name}"
                )
            if isinstance(child, ast.ClassDef):
                walk(child, f"{prefix}{child.name}.")

    walk(tree, "")
    return missing


def test_the_engine_package_exists_and_is_nonempty():
    assert MODULES, f"no modules found under {ENGINE}"


@pytest.mark.parametrize("path", MODULES, ids=lambda p: p.name)
def test_every_public_name_in_the_engine_package_has_a_docstring(path):
    missing = _missing_docstrings(path)
    assert not missing, (
        "public definitions without docstrings (the engine package is the "
        "documented serving surface — see pyproject.toml's D rules):\n"
        + "\n".join(missing)
    )


def test_ruff_config_keeps_the_engine_package_on_the_hook():
    # The ruff half of the contract: D rules selected, and the
    # per-file-ignores negation pattern exempts everything *except*
    # src/repro/engine/. If someone drops either, this test is the
    # reminder that the two halves were meant to move together.
    pyproject = (ENGINE.parent.parent.parent / "pyproject.toml").read_text()
    for rule in ("D100", "D101", "D102", "D103"):
        assert rule in pyproject, f"ruff no longer selects {rule}"
    assert '"!src/repro/engine/**" = ["D"]' in pyproject, (
        "the per-file-ignores negation scoping D rules to the engine "
        "package is gone"
    )
