"""CSV loading/saving and the command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.database.relation import Relation
from repro.exceptions import SchemaError
from repro.io import load_database, load_relation_csv, save_relation_csv


@pytest.fixture
def triangle_dir(tmp_path):
    (tmp_path / "R.csv").write_text("1,2\n2,3\n1,3\n")
    (tmp_path / "S.csv").write_text("2,3\n3,1\n")
    (tmp_path / "T.csv").write_text("3,1\n1,2\n3,2\n")
    return tmp_path


class TestIO:
    def test_load_relation(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("1,2\n3,4\n")
        relation = load_relation_csv(path)
        assert relation.name == "R"
        assert set(relation) == {(1, 2), (3, 4)}

    def test_header_skipped(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("a,b\n1,2\n")
        relation = load_relation_csv(path, has_header=True)
        assert set(relation) == {(1, 2)}

    def test_string_values(self, tmp_path):
        path = tmp_path / "People.csv"
        path.write_text("ann,7\nbob,9\n")
        relation = load_relation_csv(path)
        assert ("ann", 7) in relation

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("1,2\n3\n")
        with pytest.raises(SchemaError):
            load_relation_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            load_relation_csv(path)

    def test_roundtrip(self, tmp_path):
        relation = Relation("R", 2, [(3, 4), (1, 2)])
        path = tmp_path / "out.csv"
        save_relation_csv(relation, path)
        again = load_relation_csv(path, name="R")
        assert again == relation

    def test_load_database(self, triangle_dir):
        db = load_database(triangle_dir)
        assert {r.name for r in db} == {"R", "S", "T"}
        assert len(db["R"]) == 3

    def test_missing_directory_contents(self, tmp_path):
        with pytest.raises(SchemaError):
            load_database(tmp_path)


class TestCLI:
    VIEW = "Delta^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)"

    def test_answer_command(self, triangle_dir, capsys):
        code = main(
            [
                "answer",
                "--view",
                self.VIEW,
                "--data",
                str(triangle_dir),
                "--tau",
                "4",
                "--access",
                "1,2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "built:" in output
        assert "answer(1, 2): 1 tuples" in output
        assert "(3,)" in output

    def test_sweep_command(self, triangle_dir, capsys):
        code = main(
            [
                "sweep",
                "--view",
                self.VIEW,
                "--data",
                str(triangle_dir),
                "--taus",
                "2,16",
                "--access",
                "1,2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "frontier" in output
        assert "16.0" in output

    def test_sweep_requires_access(self, triangle_dir, capsys):
        code = main(
            ["sweep", "--view", self.VIEW, "--data", str(triangle_dir)]
        )
        assert code == 2

    def test_widths_command(self, triangle_dir, capsys):
        code = main(
            ["widths", "--view", self.VIEW, "--data", str(triangle_dir)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "fhw(H)        = 1.500" in output
        assert "fhw(H | V_b)" in output

    def test_serve_command(self, triangle_dir, tmp_path, capsys):
        requests = tmp_path / "requests.txt"
        requests.write_text("1,2\n3,1\n1,2\n# comment\n\n9,9\n")
        code = main(
            [
                "serve",
                "--view",
                self.VIEW,
                "--data",
                str(triangle_dir),
                "--requests",
                str(requests),
                "--tau",
                "4",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "registered 'Delta': tau=4.000 (fixed)" in output
        # 4 requests, one duplicate shared, comment/blank lines skipped.
        assert "served 4 requests" in output
        assert "3 traversals (1 shared)" in output
        assert "1 builds" in output

    def test_serve_command_with_space_budget(self, triangle_dir, tmp_path, capsys):
        requests = tmp_path / "requests.txt"
        requests.write_text("1,2\n")
        code = main(
            [
                "serve",
                "--view",
                self.VIEW,
                "--data",
                str(triangle_dir),
                "--requests",
                str(requests),
                "--space-budget",
                "40",
            ]
        )
        assert code == 0
        assert "(space-budget)" in capsys.readouterr().out

    def test_serve_sharded(self, triangle_dir, tmp_path, capsys):
        requests = tmp_path / "requests.txt"
        requests.write_text("1,2\n3,1\n1,2\n9,9\n")
        code = main(
            [
                "serve",
                "--view",
                self.VIEW,
                "--data",
                str(triangle_dir),
                "--requests",
                str(requests),
                "--tau",
                "4",
                "--shards",
                "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "sharding: 2 shards over ['R', 'T'] (routed" in output
        assert "served 4 requests" in output

    def test_serve_async_sharded(self, triangle_dir, tmp_path, capsys):
        requests = tmp_path / "requests.txt"
        requests.write_text("1,2\n3,1\n1,2\n9,9\n")
        code = main(
            [
                "serve",
                "--view",
                self.VIEW,
                "--data",
                str(triangle_dir),
                "--requests",
                str(requests),
                "--tau",
                "4",
                "--async",
                "--shards",
                "2",
                "--shard-key",
                "R:0,T:1",
                "--workers",
                "2",
                "--batch-size",
                "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "sharding: 2 shards" in output
        assert "served 4 requests in 2 batches" in output
        assert "async: queue max" in output

    def test_serve_rejects_orphan_scale_flags(
        self, triangle_dir, tmp_path, capsys
    ):
        requests = tmp_path / "requests.txt"
        requests.write_text("1,2\n")
        base = [
            "serve",
            "--view",
            self.VIEW,
            "--data",
            str(triangle_dir),
            "--requests",
            str(requests),
        ]
        # --shard-key without --shards would be silently ignored otherwise.
        assert main(base + ["--shard-key", "R:0"]) == 2
        assert "--shards" in capsys.readouterr().err
        # --shards 0 is a typo, not a request for an unsharded server.
        assert main(base + ["--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err
        # A relation listed twice is a conflicting spec, not last-wins.
        assert main(base + ["--shards", "2", "--shard-key", "R:0,R:1"]) == 2
        assert "twice" in capsys.readouterr().err
        # --workers / --max-pending only act through the async front end.
        assert main(base + ["--workers", "2"]) == 2
        assert "--async" in capsys.readouterr().err
        assert main(base + ["--max-pending", "4"]) == 2
        assert "--async" in capsys.readouterr().err

    def test_serve_rejects_bad_shard_key(self, triangle_dir, tmp_path, capsys):
        requests = tmp_path / "requests.txt"
        requests.write_text("1,2\n")
        code = main(
            [
                "serve",
                "--view",
                self.VIEW,
                "--data",
                str(triangle_dir),
                "--requests",
                str(requests),
                "--shards",
                "2",
                "--shard-key",
                "bogus",
            ]
        )
        assert code == 2
        assert "shard key" in capsys.readouterr().err

    def test_serve_requires_requests(self, triangle_dir, tmp_path, capsys):
        empty = tmp_path / "requests.txt"
        empty.write_text("# nothing here\n")
        code = main(
            [
                "serve",
                "--view",
                self.VIEW,
                "--data",
                str(triangle_dir),
                "--requests",
                str(empty),
            ]
        )
        assert code == 2


class TestSnapshotCLI:
    VIEW = "Delta^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)"

    def test_serve_warm_starts_from_snapshot_dir(
        self, triangle_dir, tmp_path, capsys
    ):
        requests = tmp_path / "requests.txt"
        requests.write_text("1,2\n3,1\n")
        snapshots = tmp_path / "snaps"
        argv = [
            "serve",
            "--view",
            self.VIEW,
            "--data",
            str(triangle_dir),
            "--requests",
            str(requests),
            "--snapshot-dir",
            str(snapshots),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "1 builds" in cold
        assert "0 warm loads, 1 writes" in cold
        # The "restarted" invocation decodes instead of rebuilding.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 builds" in warm
        assert "1 warm loads, 0 writes" in warm

    def test_serve_with_build_workers(self, triangle_dir, tmp_path, capsys):
        requests = tmp_path / "requests.txt"
        requests.write_text("1,2\n")
        code = main(
            [
                "serve",
                "--view",
                self.VIEW,
                "--data",
                str(triangle_dir),
                "--requests",
                str(requests),
                "--build-workers",
                "1",
            ]
        )
        assert code == 0
        assert "served 1 requests" in capsys.readouterr().out

    def test_serve_rejects_bad_build_workers(
        self, triangle_dir, tmp_path, capsys
    ):
        requests = tmp_path / "requests.txt"
        requests.write_text("1,2\n")
        code = main(
            [
                "serve",
                "--view",
                self.VIEW,
                "--data",
                str(triangle_dir),
                "--requests",
                str(requests),
                "--build-workers",
                "0",
            ]
        )
        assert code == 2
        assert "--build-workers" in capsys.readouterr().err

    def test_snapshot_save_inspect_load_flow(
        self, triangle_dir, tmp_path, capsys
    ):
        out = tmp_path / "delta.snap"
        code = main(
            [
                "snapshot",
                "save",
                "--view",
                self.VIEW,
                "--data",
                str(triangle_dir),
                "--tau",
                "4",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert f"saved {out}" in capsys.readouterr().out

        assert (
            main(["snapshot", "inspect", "--file", str(out)]) == 0
        )
        inspected = capsys.readouterr().out
        assert "kind:           compressed" in inspected
        assert "complete" in inspected

        code = main(
            [
                "snapshot",
                "load",
                "--file",
                str(out),
                "--data",
                str(triangle_dir),
                "--access",
                "1,2",
            ]
        )
        assert code == 0
        loaded = capsys.readouterr().out
        assert "fingerprint verified" in loaded
        assert "answer(1, 2)" in loaded

    def test_snapshot_load_refuses_changed_data(
        self, triangle_dir, tmp_path, capsys
    ):
        out = tmp_path / "delta.snap"
        assert (
            main(
                [
                    "snapshot",
                    "save",
                    "--view",
                    self.VIEW,
                    "--data",
                    str(triangle_dir),
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        (triangle_dir / "R.csv").write_text("1,2\n2,3\n1,3\n9,9\n")
        code = main(
            [
                "snapshot",
                "load",
                "--file",
                str(out),
                "--data",
                str(triangle_dir),
            ]
        )
        assert code == 2
        assert "different database" in capsys.readouterr().err

    def test_snapshot_inspect_rejects_non_snapshots(self, tmp_path, capsys):
        junk = tmp_path / "junk.snap"
        junk.write_bytes(b"definitely not a snapshot")
        assert main(["snapshot", "inspect", "--file", str(junk)]) == 2
        assert "magic" in capsys.readouterr().err


class TestTopologyCLI:
    VIEW = "Delta^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)"

    def test_show_fresh_table(self, capsys):
        assert main(["topology", "show", "--shards", "4"]) == 0
        output = capsys.readouterr().out
        assert "routing table version 1: 4 shard(s)" in output
        assert "['0', '1', '2', '3']" in output

    def test_show_with_data_reports_placement(self, triangle_dir, capsys):
        code = main(
            [
                "topology",
                "show",
                "--shards",
                "3",
                "--data",
                str(triangle_dir),
                "--shard-key",
                "R:0,T:1",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        # R column 0 holds {1, 2} and T column 1 holds {1, 2}: 2 values.
        assert "placement of 2 distinct key value(s):" in output

    def test_split_round_trips_through_a_table_file(
        self, triangle_dir, tmp_path, capsys
    ):
        table_file = tmp_path / "topo.json"
        code = main(
            [
                "topology",
                "split",
                "--shards",
                "4",
                "--shard",
                "2",
                "--out",
                str(table_file),
                "--data",
                str(triangle_dir),
                "--view",
                self.VIEW,
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "split shard '2': version 1 -> 2" in output
        assert "children ['2.0', '2.1']" in output
        assert "0 moved elsewhere" in output
        # The written table reloads with the split applied...
        assert main(["topology", "show", "--table", str(table_file)]) == 0
        output = capsys.readouterr().out
        assert "routing table version 2: 5 shard(s)" in output
        assert "'2' -> ['2.0', '2.1']" in output
        # ...and a second split (no --out) rewrites --table in place.
        code = main(
            [
                "topology",
                "split",
                "--table",
                str(table_file),
                "--shard",
                "2.0",
            ]
        )
        assert code == 0
        assert "version 2 -> 3" in capsys.readouterr().out
        assert '"version": 3' in table_file.read_text()

    def test_split_of_unknown_shard_fails(self, capsys):
        code = main(["topology", "split", "--shards", "2", "--shard", "7"])
        assert code == 2
        assert "not a live shard" in capsys.readouterr().err

    def test_topology_needs_a_source(self, capsys):
        assert main(["topology", "show"]) == 2
        assert "--table FILE or --shards N" in capsys.readouterr().err


class TestReplicaCLI:
    VIEW = "Delta^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)"

    def _serve(self, triangle_dir, tmp_path, *extra):
        requests = tmp_path / "requests.txt"
        requests.write_text("1,2\n3,1\n1,2\n")
        return main(
            [
                "serve",
                "--view",
                self.VIEW,
                "--data",
                str(triangle_dir),
                "--requests",
                str(requests),
                "--tau",
                "4",
                *extra,
            ]
        )

    def test_serve_with_replicas(self, triangle_dir, tmp_path, capsys):
        snapdir = tmp_path / "snaps"
        code = self._serve(
            triangle_dir,
            tmp_path,
            "--async",
            "--replicas",
            "2",
            "--balancer",
            "least-pending",
            "--snapshot-dir",
            str(snapdir),
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "replicas: 2 hydrated from snapshots" in output
        assert "balancer least-pending" in output
        assert "served 3 requests" in output

    def test_replicas_require_async(self, triangle_dir, tmp_path, capsys):
        snapdir = tmp_path / "snaps"
        code = self._serve(
            triangle_dir,
            tmp_path,
            "--replicas",
            "2",
            "--snapshot-dir",
            str(snapdir),
        )
        assert code == 2
        assert "add --async" in capsys.readouterr().err

    def test_replicas_require_a_snapshot_dir(
        self, triangle_dir, tmp_path, capsys
    ):
        code = self._serve(
            triangle_dir, tmp_path, "--async", "--replicas", "2"
        )
        assert code == 2
        assert "--snapshot-dir" in capsys.readouterr().err

    def test_replicas_reject_a_sharded_backend(
        self, triangle_dir, tmp_path, capsys
    ):
        snapdir = tmp_path / "snaps"
        code = self._serve(
            triangle_dir,
            tmp_path,
            "--async",
            "--replicas",
            "2",
            "--shards",
            "2",
            "--snapshot-dir",
            str(snapdir),
        )
        assert code == 2
        assert "sharded backend already fans out" in capsys.readouterr().err


class TestMetricsCLI:
    VIEW = "Delta^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)"

    def _serve(self, triangle_dir, tmp_path, *extra):
        requests = tmp_path / "requests.txt"
        requests.write_text("1,2\n3,1\n1,2\n")
        return main(
            [
                "serve",
                "--view",
                self.VIEW,
                "--data",
                str(triangle_dir),
                "--requests",
                str(requests),
                "--telemetry-dir",
                str(tmp_path / "telemetry"),
                *extra,
            ]
        )

    def test_metrics_show_replays_history_across_restarts(
        self, triangle_dir, tmp_path, capsys
    ):
        # The acceptance scenario end to end: two serve invocations
        # (a restart), then `metrics show` replays the merged history.
        telemetry_dir = tmp_path / "telemetry"
        for _ in range(2):
            assert self._serve(triangle_dir, tmp_path) == 0
        assert len(list(telemetry_dir.glob("*.jsonl"))) == 2
        capsys.readouterr()
        assert main(
            ["metrics", "show", "--telemetry-dir", str(telemetry_dir)]
        ) == 0
        output = capsys.readouterr().out
        # 3 requests per run, duplicate deduplicated: 2 distinct batch
        # cursors each run, summed across both sessions.
        assert "requests_total{mode=batch,view=Delta} = 4" in output
        assert "delay_step_gap{view=Delta}" in output
        assert "cache_misses_total{policy=lru} = 2" in output

    def test_serve_adapt_tunes_and_records_decisions(
        self, triangle_dir, tmp_path, capsys
    ):
        # A tiny stream with a tight budget still exercises the loop:
        # decisions are printed and land durably as tuning events.
        code = self._serve(
            triangle_dir,
            tmp_path,
            "--adapt",
            "--gap-budget",
            "64",
            "--batch-size",
            "2",
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "adaptive: 3 requests" in output
        assert "serving tau now" in output
        assert main(
            [
                "metrics",
                "show",
                "--telemetry-dir",
                str(tmp_path / "telemetry"),
                "--events",
                "5",
            ]
        ) == 0
        replay = capsys.readouterr().out
        assert "tuning_decisions_total" in replay or "events_total" in replay

    def test_metrics_export_writes_one_json_document(
        self, triangle_dir, tmp_path, capsys
    ):
        assert self._serve(triangle_dir, tmp_path) == 0
        out = tmp_path / "metrics.json"
        code = main(
            [
                "metrics",
                "export",
                "--telemetry-dir",
                str(tmp_path / "telemetry"),
                "--out",
                str(out),
            ]
        )
        assert code == 0
        document = json.loads(out.read_text())
        assert document["schema"] == 1
        names = {e["name"] for e in document["metrics"]["counters"]}
        assert "requests_total" in names

    def test_metrics_show_requires_an_existing_directory(
        self, tmp_path, capsys
    ):
        code = main(
            ["metrics", "show", "--telemetry-dir", str(tmp_path / "nope")]
        )
        assert code == 2
        assert "no telemetry directory" in capsys.readouterr().err

    def test_gap_budget_requires_adapt(self, triangle_dir, tmp_path, capsys):
        code = self._serve(triangle_dir, tmp_path, "--gap-budget", "8")
        assert code == 2
        assert "add --adapt" in capsys.readouterr().err
