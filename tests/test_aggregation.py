"""COUNT aggregation over connex structures (the §3.2 group-by link)."""

import pytest
from hypothesis import given, settings, strategies as st

from oracle import oracle_accesses, oracle_answer
from repro.core.constant_delay import ConnexConstantDelayStructure
from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.exceptions import QueryError
from repro.factorized.drep import FactorizedRepresentation
from repro.joins.hash_join import evaluate_by_hash_join
from repro.query.parser import parse_query, parse_view
from repro.workloads.generators import path_database, triangle_database
from repro.workloads.queries import figure7_database, figure7_view, path_view, triangle_view


class TestCount:
    def check_counts(self, view, db, limit=10):
        structure = ConnexConstantDelayStructure(view, db)
        for access in oracle_accesses(view, db, limit=limit):
            expected = len(oracle_answer(view, db, access))
            assert structure.count(access) == expected, access
        return structure

    def test_path_counts(self):
        self.check_counts(path_view(3), path_database(3, 55, 10, seed=41))

    def test_triangle_counts(self):
        self.check_counts(
            triangle_view("bbf"), triangle_database(14, 55, seed=42)
        )

    def test_figure7_counts(self):
        self.check_counts(
            figure7_view(), figure7_database(12, 50, seed=43), limit=6
        )

    def test_multi_branch_counts(self):
        """Sibling subtrees multiply (the independence argument)."""
        view = parse_view(
            "Q^bff(x, y, z) = R(x, y), S(x, z)"
        )
        db = Database(
            [
                Relation("R", 2, [(1, a) for a in range(5)] + [(2, 9)]),
                Relation("S", 2, [(1, b) for b in range(3)]),
            ]
        )
        structure = ConnexConstantDelayStructure(view, db)
        assert structure.count((1,)) == 15  # 5 y-values x 3 z-values
        assert structure.count((2,)) == 0  # S has no x=2
        assert structure.count((7,)) == 0

    def test_count_constant_probes(self):
        """count() does not enumerate: O(#bags) work regardless of the
        answer size."""
        # A huge cartesian-style answer.
        view = parse_view("Q^bff(x, y, z) = R(x, y), S(x, z)")
        db = Database(
            [
                Relation("R", 2, [(1, a) for a in range(200)]),
                Relation("S", 2, [(1, b) for b in range(200)]),
            ]
        )
        structure = ConnexConstantDelayStructure(view, db)
        assert structure.count((1,)) == 40000
        # Sanity: enumeration agrees on a smaller slice.
        assert sum(1 for _ in structure.enumerate((1,))) == 40000

    def test_wrong_arity(self):
        view = path_view(3)
        db = path_database(3, 30, 8, seed=44)
        structure = ConnexConstantDelayStructure(view, db)
        with pytest.raises(QueryError):
            structure.count((1,))

    @given(
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=15),
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=15),
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=15),
    )
    @settings(max_examples=50, deadline=None)
    def test_count_property(self, r1, r2, r3):
        view = parse_view(
            "P^bffb(x1, x2, x3, x4) = R1(x1, x2), R2(x2, x3), R3(x3, x4)"
        )
        db = Database(
            [
                Relation("R1", 2, r1),
                Relation("R2", 2, r2),
                Relation("R3", 2, r3),
            ]
        )
        structure = ConnexConstantDelayStructure(view, db)
        for access in [(a, b) for a in range(4) for b in range(4)]:
            expected = len(oracle_answer(view, db, access))
            assert structure.count(access) == expected


class TestFactorizedCount:
    def test_count_matches_flat(self):
        query = parse_query(
            "Q(x1, x2, x3, x4) = R1(x1, x2), R2(x2, x3), R3(x3, x4)"
        )
        db = path_database(3, 60, 10, seed=45)
        fr = FactorizedRepresentation(query, db)
        assert fr.count() == len(evaluate_by_hash_join(query, db))

    def test_count_on_blowup_without_enumeration(self):
        """Counting a quadratic output touches only the factorized bags."""
        query = parse_query("Q(x, y, z) = R(x, y), S(y, z)")
        r = Relation("R", 2, [(i, 0) for i in range(300)])
        s = Relation("S", 2, [(0, j) for j in range(300)])
        fr = FactorizedRepresentation(query, Database([r, s]))
        assert fr.count() == 90000
