"""The independent evaluation oracle, as a plain importable module.

The oracle evaluates adorned views with pairwise hash joins
(:mod:`repro.joins.hash_join`), which shares no code with the tries, the
worst-case-optimal join, or any compressed structure — so agreement is
meaningful evidence of correctness.

This used to live in ``tests/conftest.py``, but ``from conftest import …``
resolves against whichever ``conftest`` module pytest imported first —
with both ``tests/`` and ``benchmarks/`` collected, that was
``benchmarks/conftest.py`` and every test module failed at import time.
A regular module has an unambiguous name, so the collision cannot recur.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.database.catalog import Database
from repro.joins.hash_join import evaluate_by_hash_join
from repro.query.adorned import AdornedView


def oracle_answer(view: AdornedView, db: Database, access: Tuple) -> List[Tuple]:
    """Sorted free-variable answers of ``view[access]`` by hash joins."""
    full = evaluate_by_hash_join(view.query, db)
    bound_positions = [
        i for i, ch in enumerate(view.pattern) if ch == "b"
    ]
    free_positions = [i for i, ch in enumerate(view.pattern) if ch == "f"]
    access = tuple(access)
    return sorted(
        tuple(row[i] for i in free_positions)
        for row in full
        if tuple(row[i] for i in bound_positions) == access
    )


def oracle_accesses(view: AdornedView, db: Database, limit: int = 12) -> List[Tuple]:
    """A deterministic sample of productive access tuples plus two misses."""
    full = sorted(evaluate_by_hash_join(view.query, db))
    bound_positions = [i for i, ch in enumerate(view.pattern) if ch == "b"]
    seen = []
    for row in full:
        key = tuple(row[i] for i in bound_positions)
        if key not in seen:
            seen.append(key)
        if len(seen) >= limit:
            break
    misses = [
        tuple(-1 for _ in bound_positions),
        tuple(10 ** 9 for _ in bound_positions),
    ]
    return seen + misses
