"""The Theorem 1 structure: correctness against the hash-join oracle.

Every test compares :class:`CompressedRepresentation` answers with an
independently computed oracle, across the paper's query families, several
τ settings (from constant-delay to lazy-like), and adversarial inputs.
"""

import itertools

import pytest

from oracle import oracle_accesses, oracle_answer
from repro.core.structure import CompressedRepresentation
from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.exceptions import ParameterError, QueryError
from repro.joins.generic_join import JoinCounter
from repro.query.parser import parse_view
from repro.workloads.generators import (
    loomis_whitney_database,
    path_database,
    star_database,
    triangle_database,
    zipf_relation,
)
from repro.workloads.queries import (
    loomis_whitney_view,
    mutual_friend_view,
    path_view,
    running_example_database,
    running_example_view,
    star_view,
    triangle_view,
)

TAUS = (1.0, 3.0, 10.0, 1000.0)


def check_view(view, db, taus=TAUS, weights=None, limit=10):
    accesses = oracle_accesses(view, db, limit=limit)
    for tau in taus:
        cr = CompressedRepresentation(view, db, tau=tau, weights=weights)
        for access in accesses:
            assert cr.answer(access) == oracle_answer(view, db, access), (
                tau,
                access,
            )


class TestTriangle:
    def test_bbf(self):
        check_view(triangle_view("bbf"), triangle_database(18, 70, seed=1))

    def test_bfb(self):
        check_view(triangle_view("bfb"), triangle_database(18, 70, seed=2))

    def test_fbb(self):
        check_view(triangle_view("fbb"), triangle_database(18, 70, seed=3))

    def test_bff(self):
        check_view(triangle_view("bff"), triangle_database(15, 55, seed=4))

    def test_fff_full_enumeration(self):
        view = triangle_view("fff")
        db = triangle_database(12, 45, seed=5)
        for tau in (1.0, 8.0):
            cr = CompressedRepresentation(view, db, tau=tau)
            assert cr.answer(()) == oracle_answer(view, db, ())

    def test_mutual_friend_self_join(self):
        """Example 1: the same relation used three times."""
        view = mutual_friend_view()
        db = triangle_database(16, 50, seed=6, shared=True)
        check_view(view, db)


class TestPaperExamples:
    def test_running_example_all_accesses(self):
        view = running_example_view()
        db = running_example_database()
        accesses = list(itertools.product((1, 2, 3), (1, 2), (1, 2, 3)))
        for tau in (1.0, 4.0, 16.0):
            cr = CompressedRepresentation(
                view, db, tau=tau, weights={0: 1.0, 1: 1.0, 2: 1.0}
            )
            for access in accesses:
                assert cr.answer(access) == oracle_answer(view, db, access)

    def test_star_join(self):
        check_view(star_view(3), star_database(3, 70, 10, seed=7))

    def test_star_join_zipf(self):
        db = Database(
            [
                zipf_relation(f"R{i}", 2, 90, 12, skew=1.2, seed=8 + i)
                for i in range(1, 4)
            ]
        )
        check_view(star_view(3), db)

    def test_loomis_whitney(self):
        check_view(
            loomis_whitney_view(3), loomis_whitney_database(3, 60, 9, seed=9)
        )

    def test_path_endpoints_bound(self):
        check_view(path_view(3), path_database(3, 55, 10, seed=10))

    def test_path_interior_bound(self):
        check_view(
            path_view(3, pattern="fbbf"), path_database(3, 55, 10, seed=11)
        )


class TestEnumerationOrder:
    def test_lexicographic_by_head_order(self):
        view = triangle_view("bff")
        db = triangle_database(15, 60, seed=12)
        cr = CompressedRepresentation(view, db, tau=4.0)
        for access in oracle_accesses(view, db, limit=8):
            answer = cr.answer(access)
            assert answer == sorted(answer)

    def test_order_respects_custom_head_order(self):
        """Free order = head order, not body order."""
        view = parse_view("Q^bff(y, z, x) = R(x, y), S(y, z), T(z, x)")
        db = triangle_database(15, 60, seed=13)
        cr = CompressedRepresentation(view, db, tau=4.0)
        for access in oracle_accesses(view, db, limit=6):
            answer = cr.answer(access)
            assert answer == sorted(answer)
            assert answer == oracle_answer(view, db, access)

    def test_no_duplicates(self):
        view = triangle_view("bff")
        db = triangle_database(15, 70, seed=14)
        cr = CompressedRepresentation(view, db, tau=2.0)
        for access in oracle_accesses(view, db, limit=8):
            answer = cr.answer(access)
            assert len(answer) == len(set(answer))


class TestNormalizationIntegration:
    def test_view_with_constant(self):
        view = parse_view("Q^bf(x, z) = R(x, y, 7), S(y, z)")
        r = Relation("R", 3, [(1, 2, 7), (2, 3, 7), (1, 4, 5), (3, 2, 7)])
        s = Relation("S", 2, [(2, 5), (2, 6), (3, 7), (4, 8)])
        db = Database([r, s])
        # Wait: the view must be full; y appears in body but not head.
        # Use the full variant instead.
        view = parse_view("Q^bff(x, y, z) = R(x, y, 7), S(y, z)")
        cr = CompressedRepresentation(view, db, tau=2.0)
        for access in [(1,), (2,), (3,), (9,)]:
            assert cr.answer(access) == oracle_answer(view, db, access)

    def test_view_with_repeated_variable(self):
        view = parse_view("Q^bf(y, z) = S(y, y, z)")
        s = Relation("S", 3, [(2, 2, 9), (2, 3, 9), (3, 3, 8), (2, 2, 5)])
        db = Database([s])
        cr = CompressedRepresentation(view, db, tau=2.0)
        assert cr.answer((2,)) == [(5,), (9,)]
        assert cr.answer((3,)) == [(8,)]
        assert cr.answer((4,)) == []


class TestBoundaryCases:
    def test_boolean_adorned_view(self):
        """All head variables bound: yields () exactly when satisfied."""
        view = triangle_view("bbb")
        db = triangle_database(12, 50, seed=15)
        cr = CompressedRepresentation(view, db, tau=2.0)
        for access in oracle_accesses(view, db, limit=8):
            expected = oracle_answer(view, db, access)
            assert cr.answer(access) == expected

    def test_empty_database(self):
        view = triangle_view("bbf")
        db = Database(
            [Relation("R", 2), Relation("S", 2), Relation("T", 2)]
        )
        cr = CompressedRepresentation(view, db, tau=2.0)
        assert cr.answer((1, 2)) == []

    def test_one_empty_relation(self):
        view = triangle_view("bbf")
        db = triangle_database(12, 40, seed=16).replace(Relation("T", 2))
        cr = CompressedRepresentation(view, db, tau=2.0)
        for access in [(0, 1), (3, 4)]:
            assert cr.answer(access) == []

    def test_access_value_outside_domain(self):
        view = triangle_view("bbf")
        db = triangle_database(12, 40, seed=17)
        cr = CompressedRepresentation(view, db, tau=2.0)
        assert cr.answer(("zz", -5)) == []

    def test_wrong_access_arity_rejected(self):
        view = triangle_view("bbf")
        db = triangle_database(12, 40, seed=18)
        cr = CompressedRepresentation(view, db, tau=2.0)
        with pytest.raises(QueryError):
            list(cr.enumerate((1,)))

    def test_invalid_tau_rejected(self):
        view = triangle_view("bbf")
        db = triangle_database(12, 40, seed=19)
        with pytest.raises(ParameterError):
            CompressedRepresentation(view, db, tau=-1.0)

    def test_non_cover_weights_rejected(self):
        view = triangle_view("bbf")
        db = triangle_database(12, 40, seed=20)
        with pytest.raises(ParameterError):
            CompressedRepresentation(view, db, tau=2.0, weights={0: 0.2})

    def test_projection_view_rejected(self):
        view = parse_view("Q^bf(x, y) = R(x, y), S(y, z)")
        db = Database([Relation("R", 2, [(1, 2)]), Relation("S", 2, [(2, 3)])])
        with pytest.raises(QueryError):
            CompressedRepresentation(view, db, tau=2.0)


class TestConvenienceAPI:
    def test_exists_count(self):
        view = triangle_view("bbf")
        db = triangle_database(15, 60, seed=21)
        cr = CompressedRepresentation(view, db, tau=4.0)
        for access in oracle_accesses(view, db, limit=6):
            expected = oracle_answer(view, db, access)
            assert cr.exists(access) == bool(expected)
            assert cr.count(access) == len(expected)

    def test_enumerate_interval_matches_filtered_answer(self):
        from repro.core.intervals import FInterval

        view = triangle_view("bbf")
        db = triangle_database(15, 60, seed=22)
        cr = CompressedRepresentation(view, db, tau=4.0)
        space = cr.ctx.space
        interval = FInterval(space.bottom(), space.top())
        for access in oracle_accesses(view, db, limit=4):
            got = list(cr.enumerate_interval(access, interval))
            assert got == oracle_answer(view, db, access)

    def test_stats_populated(self):
        view = triangle_view("bbf")
        db = triangle_database(15, 60, seed=23)
        cr = CompressedRepresentation(view, db, tau=4.0)
        assert cr.stats.tau == 4.0
        assert cr.stats.tree_nodes == len(cr.tree.nodes)
        assert cr.stats.dictionary_entries == len(cr.dictionary)
        assert cr.stats.build_seconds >= 0

    def test_space_report_components(self):
        view = triangle_view("bbf")
        db = triangle_database(15, 60, seed=24)
        cr = CompressedRepresentation(view, db, tau=4.0)
        report = cr.space_report()
        assert report.base_tuples == db.total_tuples()
        assert report.tree_nodes == len(cr.tree.nodes)
        assert report.dictionary_entries == len(cr.dictionary)
        assert report.total_cells > report.structure_cells

    def test_counter_accumulates(self):
        view = triangle_view("bbf")
        db = triangle_database(15, 60, seed=25)
        cr = CompressedRepresentation(view, db, tau=4.0)
        counter = JoinCounter()
        access = oracle_accesses(view, db, limit=1)[0]
        list(cr.enumerate(access, counter=counter))
        assert counter.steps > 0
