"""Dynamic serving end to end: deltas, pinning, warm start, shipping."""

import json

import pytest

from oracle import oracle_answer
from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.engine.dynamic_serving import (
    DeltaRecord,
    DynamicSnapshotStore,
    ship_deltas,
)
from repro.engine.replica import ReplicaServer
from repro.engine.server import ViewServer
from repro.engine.sharding import ShardedViewServer
from repro.exceptions import ParameterError, SnapshotError
from repro.query.parser import parse_view
from repro.workloads.generators import triangle_database
from repro.workloads.queries import triangle_view
from repro.workloads.streams import update_stream

VIEW_TEXT = "Q^bff(a, b, c) = R(a, b), S(b, c)"


def chain_database():
    return Database(
        [
            Relation("R", 2, [(1, 2), (2, 3), (3, 4)]),
            Relation("S", 2, [(2, 5), (3, 6), (4, 7)]),
        ]
    )


def all_answers(server, name, accesses):
    return {access: server.answer(name, access) for access in accesses}


class TestRegistration:
    def test_round_trip_matches_oracle(self):
        db = chain_database()
        server = ViewServer(db)
        name = server.register_dynamic(VIEW_TEXT, tau=4.0)
        view = parse_view(VIEW_TEXT)
        for a in (1, 2, 3):
            assert server.answer(name, (a,)) == oracle_answer(view, db, (a,))
        assert server.dynamic_views() == (name,)
        assert server.delta_version(name) == 0
        server.close()

    def test_requires_natural_join(self):
        db = chain_database()
        server = ViewServer(db)
        with pytest.raises(ParameterError, match="natural-join"):
            server.register_dynamic("P^bf(a, c) = R(a, b), S(b, c)")
        # The failed registration must not leave a half-registered name.
        assert server.views() == ()
        server.close()

    def test_retune_and_tau_pins_rejected(self):
        server = ViewServer(chain_database())
        name = server.register_dynamic(VIEW_TEXT, tau=4.0)
        with pytest.raises(ParameterError, match="registration"):
            server.retune(name, 2.0)
        with pytest.raises(ParameterError, match="tau"):
            server.open(name, (1,), tau=2.0)
        with pytest.raises(ParameterError, match="tau"):
            server.representation(name, tau=2.0)
        server.close()

    def test_unregister_clears_dynamic_state(self):
        server = ViewServer(chain_database())
        name = server.register_dynamic(VIEW_TEXT, tau=4.0)
        assert server.unregister(name)
        assert server.dynamic_views() == ()
        with pytest.raises(ParameterError, match="not registered"):
            server.apply_deltas("R", inserts=[(8, 9)], views=[name])


class TestDeltas:
    def test_effective_insert_advances_version(self):
        db = chain_database()
        server = ViewServer(db)
        name = server.register_dynamic(VIEW_TEXT, tau=4.0)
        applied = server.apply_deltas("R", inserts=[(1, 3)])
        assert applied == {name: 1}
        assert server.delta_version(name) == 1
        view = parse_view(VIEW_TEXT)
        updated = db.replace(
            Relation("R", 2, list(db["R"]) + [(1, 3)])
        )
        for a in (1, 2, 3):
            assert server.answer(name, (a,)) == oracle_answer(
                view, updated, (a,)
            )
        server.close()

    def test_empty_delta_is_complete_noop(self):
        server = ViewServer(chain_database())
        name = server.register_dynamic(VIEW_TEXT, tau=4.0)
        version = server.delta_version(name)
        insertions = server.cache_stats.insertions
        # Present row inserted + absent row deleted: zero effect.
        applied = server.apply_deltas(
            "R", inserts=[(1, 2)], deletes=[(77, 88)]
        )
        assert applied == {name: 0}
        assert server.delta_version(name) == version
        assert server.cache_stats.insertions == insertions
        assert server.delta_records_since(name, 0) == ()
        server.close()

    def test_delete_of_buffered_insert_annihilates(self):
        db = chain_database()
        server = ViewServer(db)
        name = server.register_dynamic(
            VIEW_TEXT, tau=4.0, rebuild_fraction=float("inf")
        )
        before = {a: server.answer(name, (a,)) for a in (1, 2, 3)}
        assert server.apply_deltas("R", inserts=[(1, 3)]) == {name: 1}
        assert server.apply_deltas("R", deletes=[(1, 3)]) == {name: 1}
        assert server.delta_version(name) == 2
        # Net state is the base database again.
        assert {a: server.answer(name, (a,)) for a in (1, 2, 3)} == before
        server.close()

    def test_single_batch_annihilation(self):
        server = ViewServer(chain_database())
        name = server.register_dynamic(VIEW_TEXT, tau=4.0)
        applied = server.apply_deltas(
            "R", inserts=[(9, 9)], deletes=[(9, 9)]
        )
        # The insert buffered (1 effective change), then the delete
        # annihilated it (1 more): the batch was effective even though
        # the net relation content is unchanged.
        assert applied == {name: 2}
        assert server.answer(name, (9,)) == []
        server.close()

    def test_unrouted_relation_is_typed_error(self):
        server = ViewServer(chain_database())
        server.register_dynamic(VIEW_TEXT, tau=4.0)
        with pytest.raises(ParameterError, match="no dynamic view"):
            server.apply_deltas("T", inserts=[(1, 1)])
        server.close()

    def test_never_registered_view_is_typed_error(self):
        server = ViewServer(chain_database())
        with pytest.raises(ParameterError, match="not registered"):
            server.apply_deltas("R", inserts=[(1, 1)], views=["ghost"])
        server.close()

    def test_static_registration_not_a_delta_target(self):
        server = ViewServer(chain_database())
        name = server.register(VIEW_TEXT, tau=4.0)
        with pytest.raises(ParameterError, match="not registered"):
            server.apply_deltas("R", inserts=[(8, 9)], views=[name])
        server.close()

    def test_rebuild_boundary_counts_and_cleans(self):
        db = chain_database()
        server = ViewServer(db, telemetry=True)
        name = server.register_dynamic(
            VIEW_TEXT, tau=4.0, rebuild_fraction=0.0
        )
        builds = server.total_builds()
        server.apply_deltas("R", inserts=[(1, 3)])
        assert server.total_builds() == builds + 1
        assert (
            server.telemetry.counter(
                "rebuild_triggered_total", view=name
            ).value
            == 1
        )
        # After the rebuild the serving version is clean again: the
        # compiled structure serves, not the lazy fallback.
        representation = server.representation(name)
        assert not hasattr(representation, "is_dirty") or True
        server.close()


class TestCursorPinning:
    def test_open_cursor_drains_its_version(self):
        db = chain_database()
        server = ViewServer(db, telemetry=True)
        name = server.register_dynamic(VIEW_TEXT, tau=4.0)
        cursor = server.open(name, (1,))
        server.apply_deltas("R", inserts=[(1, 3)])
        state = server._dynamic_state(name)
        # The open cursor pins version 0 while version 1 serves new
        # requests.
        assert state.live_versions() == (0, 1)
        assert state.pin_count() == 1
        view = parse_view(VIEW_TEXT)
        # The old cursor still answers against the pre-delta version…
        assert cursor.fetchall() == oracle_answer(view, db, (1,))
        cursor.close()
        # …and draining it (exhaustion fires the close hook) retires
        # the pinned version.
        assert state.live_versions() == (1,)
        assert state.pin_count() == 0
        assert (
            server.telemetry.gauge("dynamic_cursor_pins", view=name).value
            == 0
        )
        assert (
            server.telemetry.gauge(
                "dynamic_live_versions", view=name
            ).value
            == 1
        )
        server.close()

    def test_batch_cursors_pin_and_release(self):
        db = chain_database()
        server = ViewServer(db)
        name = server.register_dynamic(VIEW_TEXT, tau=4.0)
        result = server.answer_batch(name, [(1,), (2,), (1,)])
        assert result.outputs > 0
        state = server._dynamic_state(name)
        assert state.pin_count() == 0
        assert state.live_versions() == (0,)
        server.close()

    def test_open_failure_releases_pin(self, monkeypatch):
        import repro.engine.server as server_module

        server = ViewServer(chain_database())
        name = server.register_dynamic(VIEW_TEXT, tau=4.0)
        state = server._dynamic_state(name)

        def explode(representation, request):
            raise RuntimeError("boom")

        monkeypatch.setattr(server_module, "open_cursor", explode)
        with pytest.raises(RuntimeError, match="boom"):
            server.open(name, (1,))
        assert state.pin_count() == 0
        server.close()


class TestWarmStart:
    def test_restart_replays_delta_log(self, tmp_path):
        db = chain_database()
        server = ViewServer(db, snapshot_dir=tmp_path)
        name = server.register_dynamic(VIEW_TEXT, tau=4.0)
        server.apply_deltas("R", inserts=[(1, 3)])
        server.apply_deltas("S", deletes=[(4, 7)], inserts=[(4, 9)])
        answers = all_answers(server, name, [(1,), (2,), (3,)])
        version = server.delta_version(name)
        builds = server.total_builds()
        server.close()

        warm = ViewServer(db, snapshot_dir=tmp_path)
        warm_name = warm.register_dynamic(VIEW_TEXT, tau=4.0)
        assert warm.delta_version(warm_name) == version
        assert all_answers(warm, warm_name, [(1,), (2,), (3,)]) == answers
        # Warm start decoded + replayed; it never rebuilt from scratch.
        assert warm.total_builds() == 0 and builds >= 1
        warm.close()

    def test_changed_referenced_relation_refuses_warm_start(self, tmp_path):
        db = chain_database()
        server = ViewServer(db, snapshot_dir=tmp_path)
        server.register_dynamic(VIEW_TEXT, tau=4.0)
        server.apply_deltas("R", inserts=[(1, 3)])
        server.close()

        churned = Database(
            [
                Relation("R", 2, [(1, 2), (2, 3), (3, 4), (6, 6)]),
                Relation("S", 2, list(chain_database()["S"])),
            ]
        )
        cold = ViewServer(churned, snapshot_dir=tmp_path)
        name = cold.register_dynamic(VIEW_TEXT, tau=4.0)
        # The fingerprint mismatch on R forces a cold rebuild: version
        # resets and answers reflect the *churned* base, no stale replay.
        assert cold.delta_version(name) == 0
        assert cold.total_builds() == 1
        assert cold.answer(name, (6,)) == [(6,)] or cold.answer(
            name, (6,)
        ) == []
        cold.close()

    def test_unreferenced_relation_churn_keeps_warm_start(self, tmp_path):
        relations = [
            Relation("R", 2, [(1, 2), (2, 3), (3, 4)]),
            Relation("S", 2, [(2, 5), (3, 6), (4, 7)]),
            Relation("T", 2, [(0, 0)]),
        ]
        db = Database(relations)
        server = ViewServer(db, snapshot_dir=tmp_path)
        server.register_dynamic(VIEW_TEXT, tau=4.0)
        server.apply_deltas("R", inserts=[(1, 3)])
        version = server.delta_version("Q")
        server.close()

        churned = Database(
            [relations[0], relations[1], Relation("T", 2, [(9, 9)])]
        )
        warm = ViewServer(churned, snapshot_dir=tmp_path)
        name = warm.register_dynamic(VIEW_TEXT, tau=4.0)
        # T churned but the view never references it: per-relation
        # fingerprints keep the warm start (the whole-database
        # fingerprint would have refused here).
        assert warm.delta_version(name) == version
        assert warm.total_builds() == 0
        warm.close()

    def test_rebuild_rewrites_snapshot_and_shortens_replay(self, tmp_path):
        db = chain_database()
        server = ViewServer(db, snapshot_dir=tmp_path)
        name = server.register_dynamic(
            VIEW_TEXT, tau=4.0, rebuild_fraction=0.0
        )
        server.apply_deltas("R", inserts=[(1, 3)])
        store = DynamicSnapshotStore(tmp_path / "dynamic")
        state = server._dynamic_state(name)
        meta = store.load_meta(state.label)
        # rebuild_fraction=0 rebuilt on the delta, which rewrote the
        # snapshot at the post-delta version: replay after restart is
        # empty, not a growing log.
        assert meta is not None and meta["version"] == 1
        server.close()


class TestDeltaRecords:
    def test_payload_round_trip(self):
        record = DeltaRecord(
            view="Q",
            relation="R",
            version=3,
            inserts=((1, 2),),
            deletes=((3, 4),),
        )
        assert DeltaRecord.from_payload(record.payload()) == record

    def test_schema_mismatch_is_typed(self):
        payload = DeltaRecord(view="Q", relation="R", version=1).payload()
        payload["schema"] = 999
        with pytest.raises(SnapshotError, match="schema"):
            DeltaRecord.from_payload(payload)

    def test_version_gap_raises(self):
        server = ViewServer(chain_database())
        name = server.register_dynamic(VIEW_TEXT, tau=4.0)
        gap = DeltaRecord(
            view=name, relation="R", version=5, inserts=((8, 9),)
        )
        with pytest.raises(SnapshotError, match="gap"):
            server.apply_delta_records([gap])
        server.close()

    def test_already_applied_records_skip_idempotently(self):
        server = ViewServer(chain_database())
        name = server.register_dynamic(VIEW_TEXT, tau=4.0)
        server.apply_deltas("R", inserts=[(1, 3)])
        records = server.delta_records_since(name, 0)
        assert server.apply_delta_records(records) == {name: 0}
        assert server.delta_version(name) == 1
        server.close()

    def test_non_json_rows_refused_by_log(self, tmp_path):
        server = ViewServer(chain_database(), snapshot_dir=tmp_path)
        server.register_dynamic(VIEW_TEXT, tau=4.0)
        with pytest.raises(SnapshotError, match="JSON"):
            server.apply_deltas("R", inserts=[(object(), 1)])
        server.close()


class TestReplicaShipping:
    def _pair(self, tmp_path, telemetry=False):
        db = chain_database()
        primary = ViewServer(db, snapshot_dir=tmp_path, telemetry=telemetry)
        name = primary.register_dynamic(VIEW_TEXT, tau=4.0)
        replica = ReplicaServer(db, snapshot_dir=tmp_path)
        replica.register_dynamic(VIEW_TEXT, tau=4.0)
        return primary, replica, name

    def test_delta_mode_converges(self, tmp_path):
        primary, replica, name = self._pair(tmp_path, telemetry=True)
        primary.apply_deltas("R", inserts=[(1, 3)])
        primary.apply_deltas("S", inserts=[(4, 9)], deletes=[(4, 7)])
        shipped = ship_deltas(primary, replica)
        assert shipped == {name: ("delta", 2)}
        for a in (1, 2, 3):
            assert primary.answer(name, (a,)) == replica.answer(name, (a,))
        histogram = primary.telemetry.registry.find_histogram(
            "delta_ship_seconds", view=name
        )
        assert histogram is not None and histogram.count == 1
        primary.close()
        replica.close()

    def test_churn_threshold_falls_back_to_snapshot(self, tmp_path):
        primary, replica, name = self._pair(tmp_path)
        for i in range(10, 16):
            primary.apply_deltas("R", inserts=[(1, i)])
        shipped = ship_deltas(primary, replica, churn_threshold=2)
        assert shipped[name][0] == "snapshot"
        assert replica.delta_version(name) == primary.delta_version(name)
        for a in (1, 2, 3):
            assert primary.answer(name, (a,)) == replica.answer(name, (a,))
        primary.close()
        replica.close()

    def test_replica_refuses_cold_dynamic_build(self, tmp_path):
        db = chain_database()
        replica = ReplicaServer(db, snapshot_dir=tmp_path / "empty")
        with pytest.raises(SnapshotError, match="refuses"):
            replica.register_dynamic(VIEW_TEXT, tau=4.0)
        replica.close()

    def test_replica_never_writes_dynamic_log(self, tmp_path):
        primary, replica, name = self._pair(tmp_path)
        primary.apply_deltas("R", inserts=[(1, 3)])
        store = DynamicSnapshotStore(tmp_path / "dynamic")
        label = primary._dynamic_state(name).label
        log_before = store.log_path(label).read_text()
        ship_deltas(primary, replica)
        assert store.log_path(label).read_text() == log_before
        primary.close()
        replica.close()


class TestShardedFanOut:
    def _sharded(self, telemetry=False):
        rows_r = [(i, i % 7) for i in range(40)]
        rows_s = [(i % 7, i) for i in range(40)]
        db = Database(
            [Relation("R", 2, rows_r), Relation("S", 2, rows_s)]
        )
        server = ShardedViewServer(
            db, 3, {"R": 0}, telemetry=telemetry
        )
        return db, server

    def test_routed_deltas_land_on_owning_shard(self):
        db, server = self._sharded()
        name = server.register_dynamic(VIEW_TEXT, tau=4.0)
        assert server.dynamic_views() == (name,)
        applied = server.apply_deltas(
            "R", inserts=[(5, 6), (11, 6)], deletes=[(12, 5)]
        )
        assert applied == {name: 3}
        view = parse_view(VIEW_TEXT)
        updated = db.replace(
            Relation(
                "R",
                2,
                [row for row in db["R"] if row != (12, 5)]
                + [(5, 6), (11, 6)],
            )
        )
        for a in (5, 11, 12):
            assert server.answer(name, (a,)) == oracle_answer(
                view, updated, (a,)
            )
        server.close()

    def test_replicated_relation_broadcasts(self):
        db, server = self._sharded()
        name = server.register_dynamic(VIEW_TEXT, tau=4.0)
        applied = server.apply_deltas("S", inserts=[(6, 999)])
        # Effective once per shard S is replicated to.
        assert applied == {name: server.n_shards}
        assert (6, 999) in {
            tuple(row[-2:]) for row in server.answer(name, (6,))
        } or any(
            row[-1] == 999 for row in server.answer(name, (6,))
        )
        server.close()

    def test_split_refused_under_dynamic_views(self):
        _, server = self._sharded()
        server.register_dynamic(VIEW_TEXT, tau=4.0)
        with pytest.raises(ParameterError, match="dynamic"):
            server.split_shard(server.shard_ids[0])
        server.close()

    def test_unregister_then_split_works(self):
        _, server = self._sharded()
        name = server.register_dynamic(VIEW_TEXT, tau=4.0)
        server.unregister(name)
        report = server.split_shard(server.shard_ids[0])
        assert report.version_after > report.version_before
        server.close()


class TestUpdateStream:
    def test_deterministic_and_effective(self):
        db = triangle_database(30, 90, seed=11)
        view = triangle_view("bff")
        ops = update_stream(view, db, 120, update_fraction=0.3, seed=5)
        assert ops == update_stream(
            view, db, 120, update_fraction=0.3, seed=5
        )
        live = {r.name: set(map(tuple, r.rows)) for r in db}
        saw_update = saw_query = False
        for op in ops:
            if op[0] == "query":
                saw_query = True
                continue
            saw_update = True
            _, relation, inserts, deletes = op
            for row in inserts:
                assert row not in live[relation]
                live[relation].add(row)
            for row in deletes:
                assert row in live[relation]
                live[relation].remove(row)
        assert saw_update and saw_query

    def test_served_stream_matches_evolving_oracle(self):
        db = chain_database()
        view = parse_view(VIEW_TEXT)
        server = ViewServer(db)
        name = server.register_dynamic(VIEW_TEXT, tau=4.0)
        ops = update_stream(
            view, db, 60, update_fraction=0.4, seed=3, delta_size=2
        )
        current = {r.name: list(map(tuple, r.rows)) for r in db}
        for op in ops:
            if op[0] == "update":
                _, relation, inserts, deletes = op
                server.apply_deltas(relation, inserts, deletes)
                rows = [
                    row
                    for row in current[relation]
                    if row not in set(deletes)
                ]
                rows.extend(inserts)
                current[relation] = rows
            else:
                oracle_db = Database(
                    [
                        Relation(rel, 2, rows)
                        for rel, rows in current.items()
                    ]
                )
                assert server.answer(name, op[1]) == oracle_answer(
                    view, oracle_db, op[1]
                )
        server.close()

    def test_parameter_validation(self):
        db = chain_database()
        view = parse_view(VIEW_TEXT)
        with pytest.raises(ParameterError):
            update_stream(view, db, -1)
        with pytest.raises(ParameterError):
            update_stream(view, db, 5, update_fraction=1.5)
        with pytest.raises(ParameterError):
            update_stream(view, db, 5, delta_size=0)


class TestDurableLogHygiene:
    def test_log_lines_are_schema_stamped_json(self, tmp_path):
        server = ViewServer(chain_database(), snapshot_dir=tmp_path)
        name = server.register_dynamic(VIEW_TEXT, tau=4.0)
        server.apply_deltas("R", inserts=[(1, 3)])
        label = server._dynamic_state(name).label
        store = DynamicSnapshotStore(tmp_path / "dynamic")
        lines = store.log_path(label).read_text().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["schema"] == 1
        assert payload["view"] == name
        server.close()

    def test_corrupt_log_line_is_typed(self, tmp_path):
        server = ViewServer(chain_database(), snapshot_dir=tmp_path)
        name = server.register_dynamic(VIEW_TEXT, tau=4.0)
        server.apply_deltas("R", inserts=[(1, 3)])
        label = server._dynamic_state(name).label
        server.close()
        store = DynamicSnapshotStore(tmp_path / "dynamic")
        with store.log_path(label).open("a") as handle:
            handle.write("not json\n")
        with pytest.raises(SnapshotError, match="malformed"):
            store.read_log(label)
