"""Algorithm 1 / Proposition 8: balanced interval splitting.

Pins Example 14's split points and property-tests the T/2 balance
guarantee on random instances.
"""

import math
import random

import pytest

from repro.core.context import ViewContext
from repro.core.cost import CostModel
from repro.core.intervals import FInterval
from repro.core.splitting import split_interval
from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.hypergraph.covers import max_slack_cover
from repro.hypergraph.hypergraph import hypergraph_of_view
from repro.query.parser import parse_view
from repro.workloads.queries import running_example_database, running_example_view

UNIT_WEIGHTS = {0: 1.0, 1: 1.0, 2: 1.0}


@pytest.fixture
def model():
    ctx = ViewContext(running_example_view(), running_example_database())
    return CostModel(ctx, UNIT_WEIGHTS, alpha=2.0)


class TestExample14:
    def test_root_split_point(self, model):
        """β(r) = (1, 1, 2) — index space (0, 0, 1)."""
        root = FInterval.full(model.ctx.space)
        beta = split_interval(model, root)
        assert model.ctx.space.values(beta) == (1, 1, 2)

    def test_second_split_point(self, model):
        """β(rr) = (1, 2, 2) for I(rr) = [⟨1,2,1⟩, ⟨2,2,2⟩]."""
        interval = FInterval((0, 1, 0), (1, 1, 1))
        beta = split_interval(model, interval)
        assert model.ctx.space.values(beta) == (1, 2, 2)

    def test_children_costs_match_paper(self, model):
        """T(I≺) ≈ 2.449 ≤ T/2 and T(I≻) ≈ 4.56 ≤ T/2 at the root."""
        space = model.ctx.space
        root = FInterval.full(space)
        beta = split_interval(model, root)
        left, right = root.split_at(space, beta)
        assert model.interval_cost(left) == pytest.approx(
            math.sqrt(6), abs=1e-9
        )
        assert model.interval_cost(right) == pytest.approx(
            math.sqrt(8) + math.sqrt(3), abs=1e-9
        )


class TestProposition8:
    def _random_model(self, seed):
        rng = random.Random(seed)
        view = parse_view(
            "Q^bfff(w, x, y, z) = R(w, x, y), S(y, z), T(x, z)"
        )
        def rows(arity, count, domain):
            return {
                tuple(rng.randrange(domain) for _ in range(arity))
                for _ in range(count)
            }
        db = Database(
            [
                Relation("R", 3, rows(3, 40, 5)),
                Relation("S", 2, rows(2, 25, 5)),
                Relation("T", 2, rows(2, 25, 5)),
            ]
        )
        ctx = ViewContext(view, db)
        hg = hypergraph_of_view(view)
        cover, alpha = max_slack_cover(hg, view.free_variables)
        return CostModel(ctx, cover.weights, max(1.0, alpha))

    @pytest.mark.parametrize("seed", range(12))
    def test_split_halves_cost(self, seed):
        """Both sides of the split cost at most T(I)/2 (Proposition 8)."""
        model = self._random_model(seed)
        space = model.ctx.space
        root = FInterval.full(space)
        total = model.interval_cost(root)
        if total <= 0:
            pytest.skip("degenerate instance with empty join cost")
        beta = split_interval(model, root)
        assert beta is not None
        assert root.contains(beta)
        left, right = root.split_at(space, beta)
        tolerance = total / 2 + 1e-6
        if left is not None:
            assert model.interval_cost(left) <= tolerance
        if right is not None:
            assert model.interval_cost(right) <= tolerance

    @pytest.mark.parametrize("seed", range(6))
    def test_split_recursion_terminates(self, seed):
        """Repeated splitting drives the cost to zero (tree construction)."""
        model = self._random_model(seed + 100)
        space = model.ctx.space
        stack = [(FInterval.full(space), 0)]
        while stack:
            interval, depth = stack.pop()
            assert depth < 64
            cost = model.interval_cost(interval)
            if cost <= 1.0 or interval.is_unit():
                continue
            beta = split_interval(model, interval)
            left, right = interval.split_at(space, beta)
            if left is not None:
                stack.append((left, depth + 1))
            if right is not None:
                stack.append((right, depth + 1))

    def test_zero_cost_interval_returns_none(self, model):
        empty_db = Database(
            [
                Relation("R1", 3),
                Relation("R2", 3),
                Relation("R3", 3),
            ]
        )
        view = running_example_view()
        # Empty database: active domains are empty; cost model over original
        # context but a zero-count interval comes from an impossible range.
        space = model.ctx.space
        # Construct a sub-interval whose every box is empty of S-tuples:
        # y = 2, z = 2, x = 2 has no R1 tuple with (x=2, y=2).
        interval = FInterval((1, 1, 0), (1, 1, 1))
        if model.interval_cost(interval) == 0:
            assert split_interval(model, interval) is None
