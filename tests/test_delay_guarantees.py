"""Empirical validation of the delay and answer-time guarantees.

These tests assert the *shape* of Theorem 1's bounds using logical step
counts: the worst per-output gap scales with τ (times polylog), the total
answer time follows Õ(|q| + τ·|q|^{1/α}), and delays are dramatically
smaller than lazy evaluation's first-tuple cost on adversarial instances.
"""



from repro.baselines.lazy import LazyView
from repro.core.structure import CompressedRepresentation
from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.joins.generic_join import JoinCounter
from repro.measure.delay import measure_enumeration
from repro.workloads.generators import triangle_database
from repro.workloads.queries import triangle_view


def max_step_gap(structure, access):
    counter = JoinCounter()
    stats = measure_enumeration(
        structure.enumerate(access, counter=counter),
        counter=counter,
        keep_gaps=True,
    )
    return stats


class TestDelayScalesWithTau:
    def test_monotone_delay_budget(self):
        """Larger τ may only increase the measured worst gap, and the gap
        stays within a polylog factor of τ."""
        view = triangle_view("bbf")
        db = triangle_database(40, 500, seed=7)
        from oracle import oracle_accesses

        accesses = oracle_accesses(view, db, limit=10)
        worst = {}
        for tau in (2.0, 8.0, 32.0):
            cr = CompressedRepresentation(view, db, tau=tau)
            depth = max(1, cr.tree.depth())
            gap = 0
            for access in accesses:
                stats = max_step_gap(cr, access)
                gap = max(gap, stats.step_max_gap)
            worst[tau] = gap
            # Õ(τ): a generous constant times τ·depth (the Prop 9 path).
            assert gap <= 30 * tau * depth + 30
        assert worst[2.0] <= 30 * 2.0 * 16 + 30


class TestAnswerTime:
    def test_total_time_bound(self):
        """Proposition 10: TA = Õ(|q| + τ·|q|^{1/α}) in steps."""
        view = triangle_view("bbf")
        db = triangle_database(40, 500, seed=8)
        from oracle import oracle_accesses

        accesses = oracle_accesses(view, db, limit=10)
        tau = 8.0
        cr = CompressedRepresentation(view, db, tau=tau)
        depth = max(1, cr.tree.depth())
        for access in accesses:
            stats = max_step_gap(cr, access)
            out = stats.outputs
            bound = 40 * (out + tau * (out ** (1 / cr.alpha))) * depth + 60
            assert stats.step_total <= bound, (access, stats.step_total, bound)


class TestHeavyHitterAdvantage:
    def _adversarial_db(self, n):
        """One hub pair whose z-candidate sets are large, interleaved and
        disjoint (S proposes even z, T only accepts odd z): lazy evaluation
        pays Θ(n) probes before reporting emptiness; the compressed
        structure answers from its stored 0-bit immediately."""
        r = Relation("R", 2, [(0, 1)])
        s = Relation("S", 2, [(1, 2 * k) for k in range(1, n)])
        t = Relation("T", 2, [(2 * k + 1, 0) for k in range(1, n)])
        return Database([r, s, t])

    def test_empty_heavy_access_is_fast(self):
        view = triangle_view("bbf")
        n = 400
        db = self._adversarial_db(n)
        cr = CompressedRepresentation(view, db, tau=4.0)
        lazy = LazyView(view, db)
        cr_stats = max_step_gap(cr, (0, 1))
        lazy_stats = max_step_gap(lazy, (0, 1))
        assert cr_stats.outputs == lazy_stats.outputs == 0
        # Lazy must scan the z-candidates; the structure must not.
        assert lazy_stats.step_total >= (n - 2) * 0.5
        assert cr_stats.step_total <= 0.2 * lazy_stats.step_total
