"""Unit and property tests for the counting tries."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.database.index import TrieIndex
from repro.database.relation import Relation
from repro.exceptions import SchemaError


@pytest.fixture
def relation():
    return Relation(
        "R",
        3,
        [
            (1, 1, 1),
            (1, 1, 2),
            (1, 2, 1),
            (2, 1, 1),
            (3, 1, 1),
        ],
    )


def test_root_count_is_cardinality(relation):
    index = TrieIndex(relation, [0, 1, 2])
    assert index.root.count == 5


def test_descend_and_count_prefix(relation):
    index = TrieIndex(relation, [0, 1, 2])
    assert index.count_prefix((1,)) == 3
    assert index.count_prefix((1, 1)) == 2
    assert index.count_prefix((1, 1, 2)) == 1
    assert index.count_prefix((9,)) == 0


def test_column_reordering(relation):
    index = TrieIndex(relation, [1, 2, 0])
    # Keys are (col1, col2, col0): prefix (1, 1) -> rows with x=1, y=1.
    assert index.count_prefix((1, 1)) == 3


def test_contains_full_and_prefix(relation):
    index = TrieIndex(relation, [0, 1, 2])
    assert index.contains((1, 2, 1))
    assert index.contains((1, 2))
    assert not index.contains((2, 2))


def test_range_count(relation):
    index = TrieIndex(relation, [0, 1, 2])
    assert index.count_prefix_range((), 1, 2) == 4
    assert index.count_prefix_range((1,), 2, 2) == 1
    assert index.count_prefix_range((1, 1), 1, 1) == 1
    assert index.count_prefix_range((1, 1), 0, 99) == 2
    assert index.count_prefix_range((9,), 0, 99) == 0


def test_keys_are_sorted(relation):
    index = TrieIndex(relation, [0, 1, 2])
    assert index.root.keys == [1, 2, 3]
    assert list(index.iter_keys((1,))) == [1, 2]


def test_keys_in_range(relation):
    index = TrieIndex(relation, [0, 1, 2])
    assert list(index.root.keys_in_range(2, 3)) == [2, 3]
    assert list(index.root.keys_in_range(4, 9)) == []


def test_subset_columns_deduplicate(relation):
    index = TrieIndex(relation, [1])  # projection onto column 1
    assert index.root.count == 2  # values {1, 2}


def test_subset_columns_multiplicity(relation):
    index = TrieIndex(relation, [1], dedupe=False)
    assert index.root.count == 5
    assert index.count_prefix((1,)) == 4
    assert index.count_prefix((2,)) == 1


def test_duplicate_column_rejected(relation):
    with pytest.raises(SchemaError):
        TrieIndex(relation, [0, 0])


def test_out_of_range_column(relation):
    with pytest.raises(SchemaError):
        TrieIndex(relation, [0, 7])


def test_cells_counts_edges(relation):
    index = TrieIndex(relation, [0, 1, 2])
    # Level 1: keys {1,2,3}; level 2: {1:{1,2},2:{1},3:{1}}; level 3: 5 leaves.
    assert index.cells() == 3 + 4 + 5


def test_empty_relation_index():
    index = TrieIndex(Relation("E", 2), [0, 1])
    assert index.root.count == 0
    assert index.count_prefix(()) == 0
    assert not index.contains((1, 2))


@st.composite
def _rows_and_query(draw):
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(0, 6), st.integers(0, 6), st.integers(0, 6)
            ),
            min_size=0,
            max_size=40,
        )
    )
    prefix_len = draw(st.integers(0, 2))
    prefix = tuple(draw(st.integers(0, 6)) for _ in range(prefix_len))
    low = draw(st.integers(-1, 7))
    high = draw(st.integers(-1, 7))
    return rows, prefix, low, high


@given(_rows_and_query())
@settings(max_examples=150, deadline=None)
def test_range_count_matches_bruteforce(data):
    """The trie's O(log) range counts agree with a linear scan."""
    rows, prefix, low, high = data
    relation = Relation("R", 3, rows)
    index = TrieIndex(relation, [0, 1, 2])
    expected = sum(
        1
        for row in relation
        if row[: len(prefix)] == prefix and low <= row[len(prefix)] <= high
    )
    assert index.count_prefix_range(prefix, low, high) == expected


@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)),
        min_size=0,
        max_size=30,
    )
)
@settings(max_examples=100, deadline=None)
def test_multiplicity_trie_counts_tuples(rows):
    """dedupe=False: prefix counts equal full-tuple multiplicities."""
    relation = Relation("R", 2, rows)
    index = TrieIndex(relation, [0], dedupe=False)
    for value in {row[0] for row in relation}:
        expected = sum(1 for row in relation if row[0] == value)
        assert index.count_prefix((value,)) == expected
