"""The heavy-pair dictionary: Example 15 and Proposition 7's size bound."""


import pytest

from repro.core.context import ViewContext
from repro.core.dictionary import (
    bound_candidates,
    output_nonempty_in,
)
from repro.core.intervals import FInterval
from repro.core.structure import CompressedRepresentation
from repro.joins.hash_join import evaluate_by_hash_join
from repro.workloads.generators import triangle_database
from repro.workloads.queries import (
    running_example_database,
    running_example_view,
    triangle_view,
)

UNIT_WEIGHTS = {0: 1.0, 1: 1.0, 2: 1.0}


class TestExample15:
    def test_dictionary_entries(self):
        """D(I(r), (1,1,1)) = 1 and D(I(rr), (1,1,1)) = 1, nothing else
        for the τ_ℓ-heavy pairs of the running instance at τ = 4."""
        cr = CompressedRepresentation(
            running_example_view(),
            running_example_database(),
            tau=4.0,
            weights=UNIT_WEIGHTS,
        )
        entries = dict(cr.dictionary.items())
        space = cr.ctx.space
        root = cr.tree.root
        rr = root.right
        assert entries[(root.id, (1, 1, 1))] == 1
        assert entries[(rr.id, (1, 1, 1))] == 1

    def test_leaves_have_no_entries(self):
        cr = CompressedRepresentation(
            running_example_view(),
            running_example_database(),
            tau=4.0,
            weights=UNIT_WEIGHTS,
        )
        leaf_ids = {node.id for node in cr.tree.leaves()}
        for (node_id, _), _bit in cr.dictionary.items():
            assert node_id not in leaf_ids


class TestCandidates:
    def test_candidates_cover_heavy_valuations(self):
        view = running_example_view()
        db = running_example_database()
        ctx = ViewContext(view, db)
        candidates = set(bound_candidates(ctx))
        # (1,1,1) is τ-heavy (Example 13), so it must be a candidate.
        assert (1, 1, 1) in candidates
        # Candidates are exactly the joinable bound combinations.
        for w1, w2, w3 in candidates:
            assert any(t[0] == w1 for t in db["R1"])
            assert any(t[0] == w2 for t in db["R2"])
            assert any(t[0] == w3 for t in db["R3"])

    def test_no_bound_variables_single_candidate(self):
        view = triangle_view("fff")
        db = triangle_database(10, 30, seed=1)
        ctx = ViewContext(view, db)
        assert bound_candidates(ctx) == [()]


class TestNonemptyProbe:
    def test_binary_search_probe(self):
        tuples = [(0, 1), (1, 0), (2, 2)]
        assert output_nonempty_in(tuples, FInterval((0, 0), (0, 5)))
        assert output_nonempty_in(tuples, FInterval((1, 0), (1, 0)))
        assert not output_nonempty_in(tuples, FInterval((3, 0), (9, 9)))
        assert not output_nonempty_in([], FInterval((0, 0), (9, 9)))


class TestDictionarySize:
    @pytest.mark.parametrize("tau", [2.0, 4.0, 8.0, 16.0])
    def test_proposition7_size_bound(self, tau):
        """|D| ≤ Õ(Π|R_F|^{u_F} / τ^α): check with explicit constants."""
        view = triangle_view("bbf")
        db = triangle_database(20, 80, seed=2)
        cr = CompressedRepresentation(view, db, tau=tau)
        sizes = {i: len(db[a.relation]) for i, a in enumerate(view.atoms)}
        product = 1.0
        for label, weight in cr.weights.items():
            product *= sizes[label] ** weight
        bound = product / (tau ** cr.alpha)
        depth = max(1, cr.tree.depth())
        mu = len(view.free_variables)
        constant = (2 * mu + 1) ** cr.alpha * (depth + 1) * 4
        assert len(cr.dictionary) <= max(4.0, constant * bound)

    def test_dictionary_shrinks_with_tau(self):
        view = triangle_view("bbf")
        db = triangle_database(25, 140, seed=3)
        sizes = [
            len(
                CompressedRepresentation(view, db, tau=tau).dictionary
            )
            for tau in (1.0, 4.0, 16.0, 64.0)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_every_stored_pair_is_heavy(self):
        """Only τ_ℓ-heavy pairs may be stored (the space bound's crux)."""
        view = running_example_view()
        db = running_example_database()
        cr = CompressedRepresentation(view, db, tau=4.0, weights=UNIT_WEIGHTS)
        for (node_id, access), _bit in cr.dictionary.items():
            node = cr.tree.nodes[node_id]
            cost = cr.cost_model.access_cost(node.interval, access)
            assert cost > cr.tree.threshold(node.level) - 1e-9

    def test_bits_match_semantics(self):
        """Stored 1 ⇔ the restricted sub-instance is non-empty."""
        view = triangle_view("bbf")
        db = triangle_database(15, 60, seed=5)
        cr = CompressedRepresentation(view, db, tau=1.0)
        full = evaluate_by_hash_join(view.query, db)
        space = cr.ctx.space
        by_access = {}
        for (a, b, c) in full:
            by_access.setdefault((a, b), set()).add((c,))
        for (node_id, access), bit in cr.dictionary.items():
            node = cr.tree.nodes[node_id]
            low = space.values(node.interval.low)
            high = space.values(node.interval.high)
            inside = {
                t
                for t in by_access.get(access, ())
                if low <= t <= high
            }
            assert bit == (1 if inside else 0), (node_id, access)
