"""End-to-end integration tests on the paper's application scenarios."""


from oracle import oracle_accesses, oracle_answer
from repro.baselines.lazy import LazyView
from repro.baselines.materialized import MaterializedView
from repro.core.structure import CompressedRepresentation
from repro.measure.tradeoff import sweep_tau
from repro.optimizer.min_delay import min_delay_cover
from repro.workloads.queries import mutual_friend_view
from repro.workloads.scenarios import (
    coauthor_database,
    coauthor_view,
    mln_evidence_database,
    mln_rule_views,
    social_network_database,
)


class TestCoauthorGraph:
    """Section 1's graph-analytics application: neighborhood queries over
    the co-author view without materializing the whole graph."""

    def test_neighborhood_queries(self):
        db = coauthor_database(n_authors=60, n_papers=90, seed=1)
        view = coauthor_view()
        cr = CompressedRepresentation(view, db, tau=6.0)
        for access in oracle_accesses(view, db, limit=8):
            assert cr.answer(access) == oracle_answer(view, db, access)

    def test_compression_beats_materialization_space(self):
        """In the blow-up regime (papers with many co-authors) the
        materialized co-author view explodes quadratically; a τ large
        enough to keep the tree small wins on space while still bounding
        delay far below lazy evaluation."""
        db = coauthor_database(
            n_authors=60, n_papers=40, mean_authors_per_paper=10.0, seed=2
        )
        view = coauthor_view()
        materialized = MaterializedView(view, db)
        compressed = CompressedRepresentation(view, db, tau=300.0)
        assert materialized.output_size() > 1000  # the blow-up happened
        assert (
            compressed.space_report().structure_cells
            < materialized.space_report().structure_cells
        )


class TestMutualFriends:
    """Example 1 end to end on a hub-heavy social network."""

    def test_tradeoff_sweep_is_monotone(self):
        db = social_network_database(n_users=60, n_friendships=240, seed=3)
        view = mutual_friend_view()
        accesses = oracle_accesses(view, db, limit=5)
        points = sweep_tau(
            view, db, taus=(2.0, 8.0, 32.0), accesses=accesses
        )
        cells = [p.space.structure_cells for p in points]
        assert cells == sorted(cells, reverse=True)

    def test_answers_match_oracle(self):
        db = social_network_database(n_users=50, n_friendships=180, seed=4)
        view = mutual_friend_view()
        cr = CompressedRepresentation(view, db, tau=4.0)
        lazy = LazyView(view, db)
        for access in oracle_accesses(view, db, limit=8):
            expected = oracle_answer(view, db, access)
            assert cr.answer(access) == expected
            assert lazy.answer(access) == expected


class TestMLNRules:
    """Felix-style inference: every rule view is compressible and the
    optimizer picks valid knobs for each (the partial-materialization
    continuum the paper contrasts with Felix's discrete choice)."""

    def test_all_rules_answer_correctly(self):
        db = mln_evidence_database(n_entities=40, n_terms=25, density=160, seed=5)
        for view in mln_rule_views():
            cr = CompressedRepresentation(view, db, tau=4.0)
            for access in oracle_accesses(view, db, limit=5):
                assert cr.answer(access) == oracle_answer(view, db, access)

    def test_optimizer_supplies_knobs_for_each_rule(self):
        db = mln_evidence_database(n_entities=40, n_terms=25, density=160, seed=6)
        for view in mln_rule_views():
            sizes = {
                i: len(db[atom.relation])
                for i, atom in enumerate(view.atoms)
            }
            budget = max(4.0, float(db.total_tuples()) ** 1.25)
            result = min_delay_cover(view, sizes, budget)
            assert result.tau >= 1.0
            cr = CompressedRepresentation(
                view, db, tau=max(1.0, result.tau), weights=result.weights
            )
            for access in oracle_accesses(view, db, limit=3):
                assert cr.answer(access) == oracle_answer(view, db, access)
