"""Tests for the worst-case-optimal join, hash join, and semijoin."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.database.catalog import Database
from repro.database.index import TrieIndex
from repro.database.relation import Relation
from repro.exceptions import QueryError
from repro.joins.generic_join import JoinCounter, generic_join, join_is_nonempty
from repro.joins.hash_join import evaluate_by_hash_join, hash_join
from repro.joins.semijoin import semijoin
from repro.query.atoms import Variable
from repro.query.parser import parse_query

x, y, z = Variable("x"), Variable("y"), Variable("z")


def _trie(rows, arity=2):
    return TrieIndex(Relation("R", arity, rows), list(range(arity))).root


class TestGenericJoin:
    def test_triangle_join(self):
        r = _trie([(1, 2), (2, 3), (1, 3)])
        s = _trie([(2, 3), (3, 1)])
        # T(z, x) rows (3,1),(1,2) indexed in (x, z) order to follow the
        # global variable order, as the view context does.
        t = _trie([(1, 3), (2, 1)])
        result = list(
            generic_join([(r, (x, y)), (s, (y, z)), (t, (x, z))], (x, y, z))
        )
        assert result == [(1, 2, 3), (2, 3, 1)]

    def test_output_is_lexicographic(self):
        rows = [(a, b) for a in range(4) for b in range(4)]
        r = _trie(rows)
        s = _trie(rows)
        result = list(generic_join([(r, (x, y)), (s, (y, z))], (x, y, z)))
        assert result == sorted(result)

    def test_matches_hash_join_oracle(self):
        query = parse_query("Q(x, y, z) = R(x, y), S(y, z)")
        r_rows = [(1, 2), (2, 2), (3, 1)]
        s_rows = [(2, 5), (2, 6), (1, 7)]
        db = Database([Relation("R", 2, r_rows), Relation("S", 2, s_rows)])
        expected = evaluate_by_hash_join(query, db)
        got = set(
            generic_join(
                [(_trie(r_rows), (x, y)), (_trie(s_rows), (y, z))], (x, y, z)
            )
        )
        assert got == expected

    def test_ranges_restrict_output(self):
        rows = [(a, b) for a in range(5) for b in range(5)]
        r = _trie(rows)
        result = list(
            generic_join([(r, (x, y))], (x, y), ranges={x: (1, 2), y: (3, 4)})
        )
        assert result == [(1, 3), (1, 4), (2, 3), (2, 4)]

    def test_unconstrained_variable_uses_domain(self):
        r = _trie([(1, 2)])
        result = list(
            generic_join([(r, (x, y))], (x, y, z), domains={z: (7, 8)})
        )
        assert result == [(1, 2, 7), (1, 2, 8)]

    def test_unconstrained_variable_without_domain_raises(self):
        r = _trie([(1, 2)])
        with pytest.raises(QueryError):
            list(generic_join([(r, (x, y))], (x, y, z)))

    def test_atom_vars_must_follow_order(self):
        r = _trie([(1, 2)])
        with pytest.raises(QueryError):
            list(generic_join([(r, (y, x))], (x, y)))

    def test_counter_counts_probes(self):
        r = _trie([(1, 2), (1, 3), (2, 4)])
        counter = JoinCounter()
        list(generic_join([(r, (x, y))], (x, y), counter=counter))
        assert counter.steps == 2 + 3  # two x-candidates, three y-candidates

    def test_join_is_nonempty_early_exit(self):
        rows = [(a, a) for a in range(1000)]
        r = _trie(rows)
        counter = JoinCounter()
        assert join_is_nonempty([(r, (x, y))], (x, y), counter=counter)
        assert counter.steps <= 4  # did not scan the full relation

    def test_empty_relation_join(self):
        r = _trie([])
        s = _trie([(1, 2)])
        assert list(generic_join([(r, (x, y)), (s, (x, y))], (x, y))) == []

    def test_self_join_same_trie(self):
        rows = [(1, 2), (2, 3)]
        r = _trie(rows)
        result = list(generic_join([(r, (x, y)), (r, (y, z))], (x, y, z)))
        assert result == [(1, 2, 3)]

    @given(
        st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=25),
        st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=25),
    )
    @settings(max_examples=100, deadline=None)
    def test_two_atom_join_matches_bruteforce(self, r_rows, s_rows):
        r_rel = Relation("R", 2, r_rows)
        s_rel = Relation("S", 2, s_rows)
        expected = sorted(
            (a, b, c)
            for (a, b) in r_rel
            for (bb, c) in s_rel
            if b == bb
        )
        got = list(
            generic_join(
                [
                    (TrieIndex(r_rel, [0, 1]).root, (x, y)),
                    (TrieIndex(s_rel, [0, 1]).root, (y, z)),
                ],
                (x, y, z),
            )
        )
        assert got == expected


class TestHashJoin:
    def test_basic_join(self):
        rows, out_vars = hash_join(
            [(1, 2), (2, 3)], (x, y), [(2, 5), (3, 6)], (y, z)
        )
        assert out_vars == (x, y, z)
        assert rows == {(1, 2, 5), (2, 3, 6)}

    def test_no_shared_variables_is_cross_product(self):
        rows, out_vars = hash_join([(1,), (2,)], (x,), [(5,), (6,)], (z,))
        assert rows == {(1, 5), (1, 6), (2, 5), (2, 6)}

    def test_evaluate_with_constants_and_repeats(self):
        query = parse_query("Q(x) = R(x, x, 3)")
        db = Database(
            [Relation("R", 3, [(1, 1, 3), (2, 1, 3), (4, 4, 3), (5, 5, 9)])]
        )
        assert evaluate_by_hash_join(query, db) == {(1,), (4,)}

    def test_evaluate_projection(self):
        query = parse_query("Q(x) = R(x, y)")
        db = Database([Relation("R", 2, [(1, 2), (1, 3), (2, 4)])])
        assert evaluate_by_hash_join(query, db) == {(1,), (2,)}

    def test_evaluate_boolean(self):
        query = parse_query("Q() = R(x, y)")
        db = Database([Relation("R", 2, [(1, 2)])])
        assert evaluate_by_hash_join(query, db) == {()}


class TestSemijoin:
    def test_filters_on_shared_variables(self):
        result = semijoin(
            [(1, 2), (3, 4), (5, 6)], (x, y), [(2,), (6,)], (y,)
        )
        assert result == {(1, 2), (5, 6)}

    def test_no_shared_variables_nonempty_right(self):
        assert semijoin([(1,)], (x,), [(9,)], (z,)) == {(1,)}

    def test_no_shared_variables_empty_right(self):
        assert semijoin([(1,)], (x,), [], (z,)) == set()
