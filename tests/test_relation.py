"""Unit tests for the relation storage layer."""

import pytest

from repro.database.relation import Relation
from repro.exceptions import SchemaError


def test_deduplicates_rows():
    r = Relation("R", 2, [(1, 2), (1, 2), (3, 4)])
    assert len(r) == 2
    assert (1, 2) in r
    assert (3, 4) in r


def test_arity_is_enforced():
    with pytest.raises(SchemaError):
        Relation("R", 2, [(1, 2, 3)])


def test_negative_arity_rejected():
    with pytest.raises(SchemaError):
        Relation("R", -1)


def test_rows_accept_any_sequence():
    r = Relation("R", 2, [[1, 2], (3, 4)])
    assert (1, 2) in r and (3, 4) in r


def test_membership_converts_sequences():
    r = Relation("R", 2, [(1, 2)])
    assert [1, 2] in r


def test_sorted_rows():
    r = Relation("R", 2, [(3, 1), (1, 2), (2, 0)])
    assert r.sorted_rows() == [(1, 2), (2, 0), (3, 1)]


def test_project_reorders_and_deduplicates():
    r = Relation("R", 3, [(1, 2, 9), (1, 2, 8), (3, 4, 7)])
    p = r.project([1, 0])
    assert p.arity == 2
    assert set(p) == {(2, 1), (4, 3)}


def test_project_out_of_range():
    r = Relation("R", 2, [(1, 2)])
    with pytest.raises(SchemaError):
        r.project([2])


def test_select_constants():
    r = Relation("R", 3, [(1, 2, 3), (1, 5, 3), (2, 2, 3)])
    s = r.select_constants({0: 1, 2: 3})
    assert set(s) == {(1, 2, 3), (1, 5, 3)}


def test_select_constants_bad_position():
    with pytest.raises(SchemaError):
        Relation("R", 1, [(1,)]).select_constants({5: 1})


def test_select_equal_columns():
    r = Relation("R", 3, [(1, 1, 2), (1, 2, 3), (4, 4, 4)])
    s = r.select_equal_columns([[0, 1]])
    assert set(s) == {(1, 1, 2), (4, 4, 4)}


def test_select_equal_columns_multiple_groups():
    r = Relation("R", 4, [(1, 1, 2, 2), (1, 1, 2, 3), (1, 2, 3, 3)])
    s = r.select_equal_columns([[0, 1], [2, 3]])
    assert set(s) == {(1, 1, 2, 2)}


def test_filter_predicate():
    r = Relation("R", 2, [(1, 2), (3, 4)])
    assert set(r.filter(lambda row: row[0] > 2)) == {(3, 4)}


def test_column_values():
    r = Relation("R", 2, [(1, 2), (1, 3), (2, 3)])
    assert r.column_values(0) == {1, 2}
    assert r.column_values(1) == {2, 3}


def test_column_values_out_of_range():
    with pytest.raises(SchemaError):
        Relation("R", 1, [(1,)]).column_values(3)


def test_rename_shares_rows():
    r = Relation("R", 2, [(1, 2)])
    q = r.rename("Q")
    assert q.name == "Q"
    assert set(q) == set(r)


def test_union():
    a = Relation("A", 2, [(1, 2)])
    b = Relation("B", 2, [(3, 4), (1, 2)])
    assert set(a.union(b)) == {(1, 2), (3, 4)}


def test_union_arity_mismatch():
    with pytest.raises(SchemaError):
        Relation("A", 1, [(1,)]).union(Relation("B", 2, [(1, 2)]))


def test_semijoin_values():
    r = Relation("R", 2, [(1, 2), (3, 4), (5, 6)])
    assert set(r.semijoin_values(0, {1, 5})) == {(1, 2), (5, 6)}


def test_equality_and_hash():
    a = Relation("A", 2, [(1, 2), (3, 4)])
    b = Relation("B", 2, [(3, 4), (1, 2)])
    assert a == b  # equality ignores names
    assert hash(a) == hash(b)


def test_empty_relation():
    r = Relation("R", 2)
    assert len(r) == 0
    assert list(r) == []
    assert (1, 2) not in r
