"""Heuristic fallback paths and alternative configurations.

The exact width searches are exponential; beyond the configured limit the
library must degrade to the min-fill heuristic while staying *sound*
(valid decompositions, correct answers — possibly suboptimal widths).
"""

import pytest

from oracle import oracle_accesses, oracle_answer
from repro.core.decomposed import DecomposedRepresentation
from repro.hypergraph.connex import (
    connex_decomposition_from_order,
    optimal_connex_decomposition,
    _min_fill_order,
)
from repro.hypergraph.hypergraph import hypergraph_of_view
from repro.hypergraph.width import _elimination_search, connex_fhw, fhw
from repro.hypergraph.covers import fractional_edge_cover
from repro.query.atoms import Variable
from repro.workloads.generators import path_database
from repro.workloads.queries import path_view, triangle_view


class TestMinFillFallback:
    def test_long_path_uses_heuristic_and_stays_valid(self):
        """P_10 has 9 interior variables: beyond the default exhaustive
        limit for full enumeration, min-fill still finds the optimal
        width-1 decomposition for this easy shape."""
        view = path_view(10, pattern="f" * 11)
        hg = hypergraph_of_view(view)
        width = fhw(hg, exhaustive_limit=4)  # force the heuristic
        assert width == pytest.approx(1.0, abs=1e-6)

    def test_heuristic_connex_decomposition_valid(self):
        view = path_view(9)
        hg = hypergraph_of_view(view)
        connex = frozenset(view.bound_variables)
        decomposition = optimal_connex_decomposition(
            hg,
            connex,
            score=lambda d: max(
                fractional_edge_cover(hg, d.bags[n]).value
                for n in d.non_root_nodes()
            ),
            exhaustive_limit=3,  # force min-fill
        )
        decomposition.validate_connex(hg)

    def test_min_fill_order_covers_all_free(self):
        view = path_view(7)
        hg = hypergraph_of_view(view)
        connex = frozenset(view.bound_variables)
        order = _min_fill_order(hg, connex)
        assert sorted(v.name for v in order) == sorted(
            v.name for v in hg.vertices if v not in connex
        )

    def test_exhaustive_and_heuristic_agree_on_small(self):
        view = path_view(4)
        hg = hypergraph_of_view(view)
        exact, _ = _elimination_search(
            hg,
            frozenset(view.bound_variables),
            lambda bag: fractional_edge_cover(hg, bag).value,
            exhaustive_limit=14,
        )
        heuristic, _ = _elimination_search(
            hg,
            frozenset(view.bound_variables),
            lambda bag: fractional_edge_cover(hg, bag).value,
            exhaustive_limit=1,
        )
        assert heuristic >= exact - 1e-9  # heuristic never reports better
        assert heuristic == pytest.approx(2.0, abs=1e-6)


class TestUserSuppliedDecompositions:
    def test_suboptimal_order_still_correct(self):
        """Any valid connex decomposition gives correct answers — only
        the space/delay change with the order quality."""
        view = path_view(4)
        db = path_database(4, 45, 9, seed=91)
        hg = hypergraph_of_view(view)
        connex = frozenset(view.bound_variables)
        v = Variable
        orders = [
            [v("x2"), v("x3"), v("x4")],
            [v("x4"), v("x3"), v("x2")],
            [v("x3"), v("x2"), v("x4")],
        ]
        for order in orders:
            decomposition = connex_decomposition_from_order(hg, connex, order)
            decomposition.validate_connex(hg)
            dr = DecomposedRepresentation(view, db, decomposition=decomposition)
            for access in oracle_accesses(view, db, limit=4):
                assert sorted(dr.answer(access)) == oracle_answer(
                    view, db, access
                )

    def test_larger_exhaustive_limit_never_worse(self):
        view = triangle_view("bbf")
        hg = hypergraph_of_view(view)
        connex = frozenset(view.bound_variables)
        exact_width, _ = connex_fhw(hg, connex, exhaustive_limit=14)
        heuristic_width, _ = connex_fhw(hg, connex, exhaustive_limit=0)
        assert exact_width <= heuristic_width + 1e-9
