"""Unit tests for the query/view parser."""

import pytest

from repro.exceptions import QueryError
from repro.query.atoms import Constant, Variable
from repro.query.parser import parse_query, parse_view


def test_parse_simple_query():
    q = parse_query("Q(x, y) = R(x, y)")
    assert q.name == "Q"
    assert q.head == (Variable("x"), Variable("y"))
    assert q.atoms[0].relation == "R"


def test_parse_triangle_view():
    v = parse_view("Delta^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)")
    assert v.pattern == "bbf"
    assert len(v.atoms) == 3
    assert v.bound_variables == (Variable("x"), Variable("y"))
    assert v.free_variables == (Variable("z"),)


def test_parse_integer_constant():
    q = parse_query("Q(x) = R(x, 7)")
    assert q.atoms[0].terms[1] == Constant(7)


def test_parse_negative_constant():
    q = parse_query("Q(x) = R(x, -3)")
    assert q.atoms[0].terms[1] == Constant(-3)


def test_parse_string_constant():
    q = parse_query("Q(x) = R(x, 'alice')")
    assert q.atoms[0].terms[1] == Constant("alice")


def test_parse_repeated_variable():
    q = parse_query("Q(y, z) = S(y, y, z)")
    assert q.atoms[0].has_repeated_variables()


def test_whitespace_insensitive():
    a = parse_view("V^bf(x,y)=R(x,y)")
    b = parse_view("V ^ bf ( x , y ) = R ( x , y )")
    assert a.pattern == b.pattern
    assert a.head == b.head


def test_view_requires_adornment():
    with pytest.raises(QueryError):
        parse_view("Q(x, y) = R(x, y)")


def test_query_rejects_adornment():
    with pytest.raises(QueryError):
        parse_query("Q^bf(x, y) = R(x, y)")


def test_head_constant_rejected():
    with pytest.raises(QueryError):
        parse_query("Q(1) = R(x, y)")


def test_trailing_garbage_rejected():
    with pytest.raises(QueryError):
        parse_query("Q(x) = R(x, y) extra")


def test_malformed_rejected():
    with pytest.raises(QueryError):
        parse_query("Q(x = R(x)")


def test_bad_pattern_rejected():
    with pytest.raises(QueryError):
        parse_view("Q^bq(x, y) = R(x, y)")


def test_pattern_arity_mismatch():
    with pytest.raises(QueryError):
        parse_view("Q^b(x, y) = R(x, y)")


def test_roundtrip_repr_parses_again():
    v = parse_view("V^bfb(x, y, z) = R(x, y), R(y, z), R(z, x)")
    again = parse_view(repr(v))
    assert again.pattern == v.pattern
    assert again.head == v.head
    assert again.atoms == v.atoms
