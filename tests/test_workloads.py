"""Workload generators: determinism, shapes, and paper instances."""

import pytest

from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.exceptions import ParameterError
from repro.query.parser import parse_view
from repro.joins.hash_join import evaluate_by_hash_join
from repro.workloads.generators import (
    loomis_whitney_database,
    path_database,
    random_graph,
    random_relation,
    set_family,
    star_database,
    triangle_database,
    zipf_relation,
)
from repro.workloads.queries import (
    figure2_view,
    figure7_database,
    figure7_view,
    loomis_whitney_view,
    mutual_friend_view,
    path_view,
    running_example_database,
    running_example_view,
    star_view,
    triangle_view,
)
from repro.workloads.streams import (
    batched,
    hotkey_stream,
    productive_accesses,
    request_stream,
)
from repro.workloads.scenarios import (
    coauthor_database,
    coauthor_view,
    mln_evidence_database,
    mln_rule_views,
    social_network_database,
)


class TestGenerators:
    def test_random_relation_deterministic(self):
        a = random_relation("R", 2, 30, 10, seed=5)
        b = random_relation("R", 2, 30, 10, seed=5)
        assert set(a) == set(b)
        assert len(a) == 30

    def test_random_relation_capacity_check(self):
        with pytest.raises(ParameterError):
            random_relation("R", 1, 100, 10)

    def test_random_graph_symmetric(self):
        g = random_graph("G", 20, 40, seed=1, symmetric=True)
        for (a, b) in g:
            assert (b, a) in g

    def test_random_graph_no_loops(self):
        g = random_graph("G", 20, 40, seed=2)
        assert all(a != b for a, b in g)

    def test_zipf_relation_is_skewed(self):
        r = zipf_relation("Z", 2, 200, 50, skew=1.5, seed=3)
        counts = {}
        for row in r:
            counts[row[0]] = counts.get(row[0], 0) + 1
        # Value 0 (heaviest rank) appears much more than the median value.
        assert counts.get(0, 0) >= 3

    def test_star_path_lw_shapes(self):
        star = star_database(3, 20, 10, seed=4)
        assert {r.name for r in star} == {"R1", "R2", "R3"}
        path = path_database(2, 20, 10, seed=5)
        assert {r.name for r in path} == {"R1", "R2"}
        lw = loomis_whitney_database(4, 20, 6, seed=6)
        assert all(r.arity == 3 for r in lw)

    def test_lw_needs_three(self):
        with pytest.raises(ParameterError):
            loomis_whitney_database(2, 10, 5)

    def test_set_family_shapes(self):
        family = set_family(6, universe=30, mean_size=8, seed=7)
        assert len(family) == 6
        for members in family.values():
            assert members == sorted(members)
            assert all(0 <= e < 30 for e in members)

    def test_triangle_shared_relation(self):
        db = triangle_database(15, 40, seed=8, shared=True)
        assert len(db) == 1
        assert "R" in db


class TestPaperInstances:
    def test_running_example_sizes(self):
        db = running_example_database()
        assert all(len(db[name]) == 5 for name in ("R1", "R2", "R3"))

    def test_running_example_view_shape(self):
        view = running_example_view()
        assert view.pattern == "fffbbb"
        assert [v.name for v in view.free_variables] == ["x", "y", "z"]

    def test_views_are_natural_joins(self):
        for view in [
            triangle_view("bbf"),
            mutual_friend_view(),
            running_example_view(),
            star_view(4),
            loomis_whitney_view(4),
            path_view(5),
            figure2_view(),
            figure7_view(),
        ]:
            assert view.is_natural_join(), view.name

    def test_figure7_database_matches_view(self):
        view = figure7_view()
        db = figure7_database(10, 40, seed=9)
        # Evaluable end to end.
        assert isinstance(evaluate_by_hash_join(view.query, db), set)

    def test_default_patterns(self):
        assert star_view(3).pattern == "bbbf"
        assert loomis_whitney_view(4).pattern == "bbbf"
        assert path_view(4).pattern == "bfffb"


class TestScenarios:
    def test_coauthor_database_shape(self):
        db = coauthor_database(n_authors=40, n_papers=60, seed=1)
        view = coauthor_view()
        assert view.is_natural_join()
        result = evaluate_by_hash_join(view.query, db)
        # Co-authorship is symmetric in (x, y).
        assert all((y, x, p) in result for (x, y, p) in result)

    def test_social_network_symmetric(self):
        db = social_network_database(n_users=30, n_friendships=60, seed=2)
        r = db["R"]
        for (a, b) in r:
            assert (b, a) in r

    def test_mln_rules_parse_and_evaluate(self):
        views = mln_rule_views()
        db = mln_evidence_database(n_entities=30, n_terms=20, density=80)
        for view in views:
            assert view.is_full
            evaluate_by_hash_join(view.query, db)


class TestRequestStreams:
    def _setup(self):
        view = triangle_view("bbf")
        db = triangle_database(nodes=20, edges=90, seed=3)
        return view, db

    def test_deterministic_and_sized(self):
        view, db = self._setup()
        a = request_stream(view, db, 25, seed=7, skew=1.0, miss_rate=0.2)
        b = request_stream(view, db, 25, seed=7, skew=1.0, miss_rate=0.2)
        assert a == b
        assert len(a) == 25
        assert request_stream(view, db, 0) == []

    def test_zero_miss_rate_is_all_productive(self):
        view, db = self._setup()
        productive = set(productive_accesses(view, db))
        stream = request_stream(view, db, 30, seed=1, miss_rate=0.0)
        assert productive  # the instance has answers to ask about
        assert all(access in productive for access in stream)

    def test_full_miss_rate_is_all_misses(self):
        view, db = self._setup()
        productive = set(productive_accesses(view, db))
        stream = request_stream(view, db, 30, seed=1, miss_rate=1.0)
        assert all(access not in productive for access in stream)

    def test_skew_concentrates_the_stream(self):
        view, db = self._setup()
        def top_share(skew):
            stream = request_stream(view, db, 300, seed=5, skew=skew)
            counts = {}
            for access in stream:
                counts[access] = counts.get(access, 0) + 1
            return max(counts.values()) / len(stream)
        assert top_share(2.5) > top_share(0.0)

    def test_productive_accesses_match_oracle_keys(self):
        view, db = self._setup()
        bound = [i for i, ch in enumerate(view.pattern) if ch == "b"]
        expected = sorted(
            {
                tuple(row[i] for i in bound)
                for row in evaluate_by_hash_join(view.query, db)
            }
        )
        assert productive_accesses(view, db) == expected

    def test_batched_chunks(self):
        view, db = self._setup()
        stream = request_stream(view, db, 10, seed=2)
        chunks = list(batched(stream, 4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert [a for chunk in chunks for a in chunk] == stream

    def test_invalid_parameters_rejected(self):
        view, db = self._setup()
        with pytest.raises(ParameterError):
            request_stream(view, db, -1)
        with pytest.raises(ParameterError):
            request_stream(view, db, 5, skew=-0.1)
        with pytest.raises(ParameterError):
            request_stream(view, db, 5, miss_rate=1.5)
        with pytest.raises(ParameterError):
            list(batched([], 0))

    def test_same_seed_means_identical_stream_across_parameters(self):
        view, db = self._setup()
        for skew in (0.0, 1.0, 2.5):
            for miss_rate in (0.0, 0.3):
                a = request_stream(
                    view, db, 40, seed=11, skew=skew, miss_rate=miss_rate
                )
                b = request_stream(
                    view, db, 40, seed=11, skew=skew, miss_rate=miss_rate
                )
                assert a == b
        # A different seed reshuffles the stream.
        assert request_stream(view, db, 40, seed=11) != request_stream(
            view, db, 40, seed=12
        )

    def test_zero_skew_spreads_bound_tuples_evenly(self):
        view, db = self._setup()
        stream = request_stream(view, db, 600, seed=3, skew=0.0)
        counts = {}
        for access in stream:
            counts[access] = counts.get(access, 0) + 1
        # Uniform draws: the heaviest tuple stays a small fraction.
        assert max(counts.values()) / len(stream) < 0.1

    def test_empty_view_yields_only_misses_of_right_arity(self):
        # No R tuple joins S: the view's result is empty, so the stream
        # degrades to all misses regardless of the requested miss rate.
        db = Database(
            [
                Relation("R", 2, [(1, 2), (3, 4)]),
                Relation("S", 2, [(9, 9)]),
            ]
        )
        view = parse_view("E^bbf(x, y, z) = R(x, y), S(y, z)")
        assert productive_accesses(view, db) == []
        stream = request_stream(view, db, 15, seed=5, miss_rate=0.0)
        assert len(stream) == 15
        assert all(len(access) == 2 for access in stream)
        assert all(access not in {(1, 2), (3, 4)} for access in stream)

    def test_non_parametric_view_stream_terminates(self):
        # Regression: with zero bound positions the only access tuple is
        # (), so a "guaranteed miss" cannot exist — the old code
        # rejection-sampled forever. Requesting misses anyway is an
        # error; without them the stream is all ().
        view, db = self._setup()
        full = parse_view("F^fff(x, y, z) = R(x, y), S(y, z), T(z, x)")
        assert request_stream(full, db, 8, seed=1) == [()] * 8
        with pytest.raises(ParameterError):
            request_stream(full, db, 8, seed=1, miss_rate=0.5)
        # With no productive keys, () itself is the guaranteed miss and
        # any miss mix streams fine.
        empty = Database(
            [Relation("R", 2, [(1, 2)]), Relation("S", 2, [(9, 9)])]
        )
        none_productive = parse_view("N^ff(x, y) = R(x, y), S(x, y)")
        stream = request_stream(none_productive, empty, 6, miss_rate=1.0)
        assert stream == [()] * 6

    def test_empty_database_relation_is_served(self):
        db = Database(
            [Relation("R", 2, []), Relation("S", 2, [(1, 2)])]
        )
        view = parse_view("E^bf(x, y) = R(x, y)")
        assert productive_accesses(view, db) == []
        stream = request_stream(view, db, 5, seed=1)
        assert len(stream) == 5


class TestHotkeyStream:
    def _setup(self):
        view = triangle_view("bbf")
        db = triangle_database(nodes=20, edges=90, seed=3)
        return view, db

    def test_deterministic_and_productive(self):
        view, db = self._setup()
        a = hotkey_stream(view, db, 40, seed=7)
        b = hotkey_stream(view, db, 40, seed=7)
        assert a == b
        assert len(a) == 40
        assert set(a) <= set(productive_accesses(view, db))
        assert hotkey_stream(view, db, 0, seed=7) == []

    def test_hot_set_soaks_up_its_share(self):
        view, db = self._setup()
        stream = hotkey_stream(
            view, db, 600, seed=2, hot_share=0.8, n_hot=2
        )
        counts: dict = {}
        for access in stream:
            counts[access] = counts.get(access, 0) + 1
        top_two = sum(sorted(counts.values())[-2:])
        # The 2 hot keys jointly receive ~80% of 600 requests.
        assert top_two > 600 * 0.7

    def test_explicit_hot_keys_are_honored(self):
        view, db = self._setup()
        keys = productive_accesses(view, db)
        pinned = keys[:2]
        stream = hotkey_stream(
            view, db, 200, seed=4, hot_share=1.0, hot_keys=pinned
        )
        assert set(stream) == set(pinned)

    def test_parameter_validation(self):
        view, db = self._setup()
        with pytest.raises(ParameterError):
            hotkey_stream(view, db, -1)
        with pytest.raises(ParameterError):
            hotkey_stream(view, db, 5, hot_share=1.5)
        with pytest.raises(ParameterError):
            hotkey_stream(view, db, 5, n_hot=0)
        with pytest.raises(ParameterError):
            hotkey_stream(view, db, 5, skew=-0.1)
        with pytest.raises(ParameterError):
            hotkey_stream(view, db, 5, hot_keys=[])

    def test_no_productive_accesses_is_an_error(self):
        empty = Database(
            [Relation("R", 2), Relation("S", 2), Relation("T", 2)]
        )
        with pytest.raises(ParameterError, match="no productive"):
            hotkey_stream(triangle_view("bbf"), empty, 5)
