"""Unit tests for the database catalog and statistics."""

import pytest

from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.database.statistics import collect_statistics, relation_statistics
from repro.exceptions import SchemaError


@pytest.fixture
def db():
    return Database(
        [
            Relation("R", 2, [(1, 2), (3, 4)]),
            Relation("S", 1, [(5,), (6,), (7,)]),
        ]
    )


def test_lookup_and_contains(db):
    assert db["R"].name == "R"
    assert "S" in db
    assert "X" not in db


def test_unknown_relation_raises(db):
    with pytest.raises(SchemaError):
        db["missing"]


def test_duplicate_name_rejected(db):
    with pytest.raises(SchemaError):
        db.add(Relation("R", 1, [(1,)]))


def test_total_tuples(db):
    assert db.total_tuples() == 5


def test_iteration_and_len(db):
    assert len(db) == 2
    assert {r.name for r in db} == {"R", "S"}


def test_replace_makes_copy(db):
    replaced = db.replace(Relation("R", 2, [(9, 9)]))
    assert set(replaced["R"]) == {(9, 9)}
    assert set(db["R"]) == {(1, 2), (3, 4)}  # original untouched


def test_active_domain_unions_occurrences(db):
    domain = db.active_domain([("R", 0), ("R", 1), ("S", 0)])
    assert domain == (1, 2, 3, 4, 5, 6, 7)


def test_active_domain_sorted_and_distinct():
    db = Database([Relation("R", 2, [(3, 3), (1, 3)])])
    assert db.active_domain([("R", 0), ("R", 1)]) == (1, 3)


def test_relation_statistics():
    stats = relation_statistics(Relation("R", 2, [(1, 2), (1, 3), (2, 3)]))
    assert stats.cardinality == 3
    assert stats.arity == 2
    assert stats.distinct_per_column == (2, 2)


def test_collect_statistics(db):
    stats = collect_statistics(db)
    assert set(stats) == {"R", "S"}
    assert stats["S"].cardinality == 3
    assert stats["S"].distinct_per_column == (3,)


def test_statistics_empty_relation():
    stats = relation_statistics(Relation("E", 2))
    assert stats.cardinality == 0
    assert stats.max_column_multiplicity == 0
