"""Graph analytics over relational data (Section 1's first application).

The co-author graph is *defined* as a view over the author-paper table:
V(x, y, p) = R(x, p), R(y, p). Graph algorithms access it through the
neighborhood pattern V^bff — given an author, enumerate co-authors (with
the shared papers as provenance). Materializing the graph explodes for
prolific authors; the compressed representation serves neighborhoods
directly from a tunable structure.

Run with: python examples/coauthor_graph.py
"""

from repro import CompressedRepresentation, MaterializedView
from repro.joins.generic_join import JoinCounter
from repro.measure import measure_enumeration
from repro.workloads import coauthor_database, coauthor_view


def main() -> None:
    db = coauthor_database(
        n_authors=120, n_papers=90, mean_authors_per_paper=6.0, seed=3
    )
    view = coauthor_view()
    print(f"author-paper table: {db.total_tuples()} rows")

    materialized = MaterializedView(view, db)
    print(
        f"materialized co-author graph: {materialized.output_size()} "
        "(author, author, paper) triples\n"
    )

    for tau in (4.0, 32.0, 256.0):
        cr = CompressedRepresentation(view, db, tau=tau)
        cells = cr.space_report().structure_cells
        print(
            f"tau={tau:>6.0f}: structure {cells:>6} cells "
            f"({cells / max(1, materialized.output_size()):.2f}x of "
            "materialized)"
        )

    # Serve a BFS-style frontier expansion from the compressed graph.
    cr = CompressedRepresentation(view, db, tau=16.0)
    prolific = sorted(
        {row[0] for row in db["R"]},
        key=lambda a: sum(1 for row in db["R"] if row[0] == a),
        reverse=True,
    )[:3]
    print("\nneighborhoods of the three most prolific authors:")
    for author in prolific:
        counter = JoinCounter()
        stats = measure_enumeration(
            cr.enumerate((author,), counter=counter), counter=counter
        )
        coauthors = {y for (y, _p) in cr.answer((author,))}
        print(
            f"  author {author}: {len(coauthors)} co-authors, "
            f"{stats.outputs} edges, max gap {stats.step_max_gap} probes"
        )

    # Two-hop expansion: co-authors of co-authors, straight off the view.
    source = prolific[0]
    frontier = {y for (y, _p) in cr.answer((source,))}
    two_hop = set()
    for author in frontier:
        two_hop |= {y for (y, _p) in cr.answer((author,))}
    two_hop -= frontier | {source}
    print(
        f"\ntwo-hop neighborhood of author {source}: {len(two_hop)} authors "
        "(computed without materializing the graph)"
    )


if __name__ == "__main__":
    main()
