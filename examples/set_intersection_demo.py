"""Fast set intersection (the Cohen-Porat special case, Section 3.1).

An inverted-index workload: posting lists for terms, conjunctive queries
intersect them. The structure answers k-way intersections with delay
Õ(τ) from Õ(N^k/τ^k) space — tune τ to your memory budget.

Run with: python examples/set_intersection_demo.py
"""

from repro import SetIntersectionIndex
from repro.workloads import set_family


def main() -> None:
    # Posting lists with skew: a few very popular documents.
    postings = set_family(
        n_sets=30, universe=500, mean_size=80, seed=9, skew=0.9
    )
    n = sum(len(docs) for docs in postings.values())
    print(f"{len(postings)} posting lists, N = {n} postings total\n")

    print("space at different delay knobs:")
    for tau in (2.0, 8.0, 32.0, 128.0):
        index = SetIntersectionIndex(postings, tau=tau)
        print(
            f"  tau={tau:>6.0f}: {index.space_report().structure_cells:>8} "
            "structure cells"
        )

    index = SetIntersectionIndex(postings, tau=8.0)
    terms = list(postings)[:6]
    print("\npairwise intersections (streamed in sorted order):")
    for left in terms[:3]:
        for right in terms[3:]:
            docs = index.intersection(left, right)
            print(
                f"  term{left} AND term{right}: {len(docs)} docs"
                + (f", first: {docs[:5]}" if docs else "")
            )

    # 2-SetDisjointness — the conditional-lower-bound workload (§3.3).
    disjoint_pairs = [
        (a, b)
        for a in terms
        for b in terms
        if a < b and index.are_disjoint(a, b)
    ]
    print(f"\ndisjoint pairs among the sample terms: {disjoint_pairs}")

    # Three-way conjunctive query via k=3.
    index3 = SetIntersectionIndex(postings, tau=8.0, k=3)
    docs = index3.intersection(terms[0], terms[1], terms[2])
    print(
        f"\nterm{terms[0]} AND term{terms[1]} AND term{terms[2]}: "
        f"{len(docs)} docs"
    )


if __name__ == "__main__":
    main()
