"""The engineered extensions: projections, seeks, counting, and updates.

Everything beyond the paper's core theorems that this library supports:
the §3.2 projection/aggregation remarks and an engineering take on the
§8 open problem of updates.

Run with: python examples/extensions_demo.py
"""

from repro import (
    ConnexConstantDelayStructure,
    DynamicRepresentation,
    ProjectedRepresentation,
    Variable,
    parse_view,
)
from repro.workloads import coauthor_database, path_database, path_view


def projections() -> None:
    print("== projections (§3.2): distinct co-authors ==")
    db = coauthor_database(n_authors=50, n_papers=60, seed=1)
    view = parse_view("V^bff(x, y, p) = R(x, p), R(y, p)")
    # Project the shared paper away: each distinct co-author surfaces
    # once, via a lexicographic seek past their block of shared papers.
    projected = ProjectedRepresentation(
        view, db, tau=8.0, projected=[Variable("p")]
    )
    author = 0
    coauthors = [y for (y,) in projected.answer((author,))]
    print(
        f"author {author}: {len(coauthors)} distinct co-authors "
        f"(first five: {coauthors[:5]})"
    )
    print(f"distinct count: {projected.count_distinct((author,))}\n")


def counting() -> None:
    print("== O(1) COUNT aggregation (§3.2's group-by link) ==")
    view = path_view(3)
    db = path_database(3, size=80, domain=12, seed=2)
    structure = ConnexConstantDelayStructure(view, db)
    shown = 0
    for x1 in range(12):
        for x4 in range(12):
            count = structure.count((x1, x4))
            if count and shown < 5:
                print(f"|paths {x1} ->* {x4}| = {count} (no enumeration)")
                shown += 1
    print()


def updates() -> None:
    print("== updates with deferred rebuild (§8) ==")
    view = parse_view("Q^bf(x, y) = R(x, y)")
    from repro import Database, Relation

    db = Database([Relation("R", 2, [(1, 10), (1, 20), (2, 30)])])
    dynamic = DynamicRepresentation(view, db, tau=2.0, rebuild_fraction=0.5)
    print(f"before: answer(1) = {dynamic.answer((1,))}")
    dynamic.insert("R", (1, 15))
    dynamic.delete("R", (1, 20))
    print(
        f"after buffered updates (dirty={dynamic.is_dirty}): "
        f"answer(1) = {dynamic.answer((1,))}"
    )
    dynamic.rebuild()
    print(
        f"after rebuild (dirty={dynamic.is_dirty}, "
        f"rebuilds={dynamic.rebuilds}): answer(1) = {dynamic.answer((1,))}"
    )


def main() -> None:
    projections()
    counting()
    updates()


if __name__ == "__main__":
    main()
