"""Quickstart: compress a triangle query and answer access requests.

Run with: python examples/quickstart.py

Covers the core API in five minutes: define an adorned view, build a
compressed representation at a chosen space/delay point, answer access
requests, and inspect the structure.
"""

from repro import (
    CompressedRepresentation,
    LazyView,
    MaterializedView,
    parse_view,
)
from repro.workloads import triangle_database


def main() -> None:
    # The triangle view of Example 2: given an edge (x, y), enumerate the
    # z values that close a triangle. 'b' = bound (you supply), 'f' = free
    # (the answer enumerates, in sorted order).
    view = parse_view("Delta^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)")
    db = triangle_database(nodes=40, edges=300, seed=7)
    print(f"view: {view}")
    print(f"database: {db.total_tuples()} tuples\n")

    # tau is the knob: space scales like AGM/tau^alpha, delay like tau.
    cr = CompressedRepresentation(view, db, tau=8.0)
    print(f"built in {cr.stats.build_seconds * 1000:.1f} ms")
    print(f"cover weights: {cr.weights}  (slack alpha = {cr.alpha:.2f})")
    print(f"tree: {cr.stats.tree_nodes} nodes, depth {cr.stats.tree_depth}")
    print(f"dictionary: {cr.stats.dictionary_entries} heavy entries\n")

    # Answer a few requests. Results stream in lexicographic order.
    edges = sorted(db["R"])[:5]
    for (x, y) in edges:
        answer = cr.answer((x, y))
        print(f"triangles through edge ({x}, {y}): {answer}")

    # Where this sits between the two extremes of Section 2.3:
    lazy = LazyView(view, db)
    materialized = MaterializedView(view, db)
    print("\nspace (structure cells beyond the input):")
    print(f"  lazy:          {lazy.space_report().structure_cells}")
    print(f"  compressed:    {cr.space_report().structure_cells}")
    print(f"  materialized:  {materialized.space_report().structure_cells}")


if __name__ == "__main__":
    main()
