"""Felix-style statistical inference (Section 1's second application).

A Markov Logic inference engine repeatedly evaluates logical rules under
specific access patterns — exactly adorned views. Felix chooses, per
rule, between eager materialization and lazy evaluation; the compressed
representation explores the *full continuum*: given one global space
budget, MinDelayCover (Section 6) picks the per-rule knobs, and every
rule gets the fastest structure that fits.

Run with: python examples/mln_inference.py
"""

from repro import CompressedRepresentation, min_delay_cover
from repro.baselines import LazyView, MaterializedView
from repro.workloads import mln_evidence_database, mln_rule_views


def main() -> None:
    db = mln_evidence_database(
        n_entities=100, n_terms=50, density=700, seed=5
    )
    rules = mln_rule_views()
    print(f"evidence database: {db.total_tuples()} tuples")
    print(f"rules: {[rule.name for rule in rules]}\n")

    budget = float(db.total_tuples()) ** 1.3
    print(f"global space budget per rule: {budget:,.0f} cells\n")

    header = (
        f"{'rule':8} {'tau*':>8} {'alpha':>6} {'cells':>8} "
        f"{'lazy':>6} {'eager':>8}"
    )
    print(header)
    print("-" * len(header))
    structures = {}
    for rule in rules:
        sizes = {
            index: len(db[atom.relation])
            for index, atom in enumerate(rule.atoms)
        }
        knobs = min_delay_cover(rule, sizes, budget)
        structure = CompressedRepresentation(
            rule, db, tau=max(1.0, knobs.tau), weights=knobs.weights
        )
        structures[rule.name] = structure
        lazy = LazyView(rule, db)
        eager = MaterializedView(rule, db)
        print(
            f"{rule.name:8} {knobs.tau:>8.1f} {knobs.alpha:>6.2f} "
            f"{structure.space_report().structure_cells:>8} "
            f"{lazy.space_report().structure_cells:>6} "
            f"{eager.space_report().structure_cells:>8}"
        )

    # Drive a toy inference loop: ground Rule3 (two-hop influence) for a
    # frontier of entities, the access pattern an MLN grounder issues.
    rule3 = rules[2]
    structure = structures[rule3.name]
    frontier = sorted({row[0] for row in db["Follows"]})[:5]
    print("\ngrounding Rule3 (x follows y follows z) on a frontier:")
    total = 0
    for x in frontier:
        for z in sorted({row[1] for row in db["Follows"]})[:5]:
            groundings = structure.answer((x, z))
            total += len(groundings)
    print(f"  {total} groundings produced from the compressed rule views")


if __name__ == "__main__":
    main()
