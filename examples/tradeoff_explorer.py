"""Explore the space/delay frontier of Theorems 1 and 2 interactively.

Sweeps τ over the mutual-friend view on a hub-heavy social network and
prints the frontier (Figure 1's continuum); then shows the Theorem 2
decomposition trading delay exponents for space on a path query.

Run with: python examples/tradeoff_explorer.py
"""

from repro import (
    CompressedRepresentation,
    DecomposedRepresentation,
    DelayAssignment,
    connex_fhw,
    hypergraph_of_view,
)
from repro.baselines import LazyView, MaterializedView
from repro.measure import sweep_tau
from repro.measure.tradeoff import format_table, tradeoff_rows
from repro.workloads import (
    celebrity_social_network,
    mutual_friend_view,
    path_database,
    path_view,
)


def theorem1_frontier() -> None:
    view = mutual_friend_view()
    db, accesses = celebrity_social_network(seed=17)
    print(f"mutual friends on {db.total_tuples()} friendship rows")
    points = sweep_tau(
        view, db, taus=(2.0, 8.0, 32.0, 128.0, 512.0), accesses=accesses
    )
    print(
        format_table(
            tradeoff_rows(points),
            headers=("tau", "cells", "max gap", "mean gap", "outputs"),
            title="Theorem 1 frontier (space falls, delay rises):",
        )
    )
    lazy = LazyView(view, db)
    materialized = MaterializedView(view, db)
    print(
        f"\nbounds: lazy = 0 cells, materialized = "
        f"{materialized.space_report().structure_cells} cells "
        f"({materialized.output_size()} result tuples)"
    )


def theorem2_frontier() -> None:
    view = path_view(4)
    db = path_database(4, size=120, domain=14, seed=2)
    hg = hypergraph_of_view(view)
    width, decomposition = connex_fhw(hg, frozenset(view.bound_variables))
    print(
        f"\npath P_4^bf..fb, fhw(H|Vb) = {width:.2f}; sweeping the delay "
        "assignment delta:"
    )
    rows = []
    for exponent in (0.0, 0.2, 0.4, 0.6):
        assignment = DelayAssignment.uniform(decomposition, exponent)
        dr = DecomposedRepresentation(
            view, db, decomposition=decomposition, assignment=assignment
        )
        rows.append(
            (
                exponent,
                dr.delta_height,
                dr.space_report().structure_cells,
            )
        )
    print(
        format_table(
            rows,
            headers=("delta", "height h", "cells"),
            title="Theorem 2: space vs delay exponent (delay ~ |D|^h):",
        )
    )


def main() -> None:
    theorem1_frontier()
    theorem2_frontier()


if __name__ == "__main__":
    main()
