"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class. The subclasses distinguish the
three layers where things can go wrong: the data model (schemas, arities),
the query model (parsing, adornments), and the compressed-structure layer
(parameters outside their valid range).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation was used with an inconsistent arity or malformed tuples."""


class QueryError(ReproError):
    """A conjunctive query or adorned view is malformed.

    Raised by the parser, by adornment validation (pattern length must match
    the head arity), and by operations that require a natural join query
    (e.g. building the Theorem 1 structure before rewriting constants away).
    """


class DecompositionError(ReproError):
    """A tree decomposition violates one of its defining properties."""


class ParameterError(ReproError):
    """A tuning parameter (tau, cover weights, delay assignment) is invalid."""


class OptimizationError(ReproError):
    """An LP used for cover/parameter search is infeasible or failed."""


class TelemetryError(ReproError):
    """A persisted telemetry record cannot be used.

    Raised by :mod:`repro.engine.telemetry` for malformed JSONL lines,
    schema/version mismatches, and histogram merges whose bucket
    boundaries disagree. Loading never surfaces raw ``json`` errors —
    every failure mode maps here, stamped with the offending file and
    line number.
    """


class SnapshotError(ReproError):
    """A serialized representation snapshot cannot be used.

    Raised by :mod:`repro.core.snapshot` for malformed, truncated or
    corrupted snapshot blobs, for version/format mismatches, and for
    snapshots whose source database fingerprint differs from the database
    they are being loaded against. Decoding never surfaces raw unpickling
    errors — every failure mode maps here.
    """
