"""The two extremal baselines of Section 2.3.

* :class:`~repro.baselines.materialized.MaterializedView` — materialize
  ``Q(D)`` and index it by the bound variables: optimal delay, worst space.
* :class:`~repro.baselines.lazy.LazyView` — store nothing beyond linear
  indexes and evaluate each access request from scratch with a worst-case
  optimal join: optimal space, worst delay.

The compressed representations explore the continuum between these two.
"""

from repro.baselines.materialized import MaterializedView
from repro.baselines.lazy import LazyView

__all__ = ["MaterializedView", "LazyView"]
