"""Full materialization baseline: all space, no delay (Section 2.3)."""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.context import ViewContext
from repro.database.catalog import Database
from repro.exceptions import QueryError
from repro.joins.generic_join import JoinCounter, generic_join
from repro.measure.space import SpaceReport
from repro.query.adorned import AdornedView
from repro.query.rewriting import normalize_view


class MaterializedView:
    """Materialize ``Q(D)`` with a hash index keyed by the bound variables.

    Space is ``Θ(|Q(D)|)`` — up to the AGM bound ``|D|^{ρ*}`` — and every
    access request is answered with constant delay by walking the bucket of
    its key. Result tuples are stored sorted, so enumeration is
    lexicographic like the compressed representation's.
    """

    def __init__(self, view: AdornedView, db: Database):
        started = time.perf_counter()
        if view.is_natural_join():
            self.view, self.db = view, db
        else:
            normalized = normalize_view(view, db)
            self.view, self.db = normalized.view, normalized.database
        ctx = ViewContext(self.view, self.db)
        self.ctx = ctx
        order = ctx.bound_order + ctx.free_order
        atoms = [
            (binding.trie.root, binding.bound_vars + binding.free_vars)
            for binding in ctx.atoms
        ]
        domains = dict(ctx.free_value_domains)
        for var, domain in ctx.bound_domains.items():
            domains[var] = domain.values
        n_bound = len(ctx.bound_order)
        self._index: Dict[Tuple, List[Tuple]] = {}
        self._size = 0
        for row in generic_join(atoms, order, domains=domains):
            self._index.setdefault(row[:n_bound], []).append(row[n_bound:])
            self._size += 1
        self.build_seconds = time.perf_counter() - started

    def enumerate(
        self, access: Sequence, counter: Optional[JoinCounter] = None
    ) -> Iterator[Tuple]:
        """Walk the materialized bucket; lexicographic, O(1) delay."""
        access = tuple(access)
        if len(access) != len(self.ctx.bound_order):
            raise QueryError(
                f"access tuple has {len(access)} values, expected "
                f"{len(self.ctx.bound_order)}"
            )
        for row in self._index.get(access, ()):
            if counter is not None:
                counter.steps += 1
            yield row

    def answer(self, access: Sequence) -> List[Tuple]:
        return list(self.enumerate(access))

    def exists(self, access: Sequence) -> bool:
        return tuple(access) in self._index

    def output_size(self) -> int:
        """|Q(D)| — the number of materialized result tuples."""
        return self._size

    def space_report(self) -> SpaceReport:
        return SpaceReport(
            base_tuples=self.db.total_tuples(),
            materialized_tuples=self._size,
            index_cells=len(self._index),
        )
