"""Lazy evaluation baseline: no space, all delay (Section 2.3)."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.context import ViewContext
from repro.database.catalog import Database
from repro.exceptions import QueryError
from repro.joins.generic_join import JoinCounter, generic_join
from repro.measure.space import SpaceReport
from repro.query.adorned import AdornedView
from repro.query.rewriting import normalize_view


class LazyView:
    """Evaluate every access request from scratch over linear indexes.

    Space stays ``O(|D|)`` (the tries), but each request costs a full
    worst-case-optimal join over the sub-instance — up to
    ``Π_F |R_F(v_b)|^{u_F}`` before the first tuple appears.
    """

    def __init__(self, view: AdornedView, db: Database):
        if view.is_natural_join():
            self.view, self.db = view, db
        else:
            normalized = normalize_view(view, db)
            self.view, self.db = normalized.view, normalized.database
        self.ctx = ViewContext(self.view, self.db)

    def enumerate(
        self, access: Sequence, counter: Optional[JoinCounter] = None
    ) -> Iterator[Tuple]:
        """Run the join ``⋈_F R_F(v_b)`` in lexicographic free order."""
        access = tuple(access)
        if len(access) != len(self.ctx.bound_order):
            raise QueryError(
                f"access tuple has {len(access)} values, expected "
                f"{len(self.ctx.bound_order)}"
            )
        subtries = self.ctx.subtries(access)
        if any(node is None for node in subtries):
            return
        atoms = [
            (node, binding.free_vars)
            for binding, node in zip(self.ctx.atoms, subtries)
        ]
        yield from generic_join(
            atoms,
            self.ctx.free_order,
            domains=self.ctx.free_value_domains,
            counter=counter,
        )

    def answer(self, access: Sequence) -> List[Tuple]:
        return list(self.enumerate(access))

    def exists(self, access: Sequence) -> bool:
        return next(self.enumerate(access), None) is not None

    def space_report(self) -> SpaceReport:
        return SpaceReport(
            base_tuples=self.db.total_tuples(),
            index_cells=self.ctx.index_cells(),
        )
