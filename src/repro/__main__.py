"""Command-line interface: build a compressed view over CSV relations.

Examples
--------
Build a structure and answer access requests::

    python -m repro answer \\
        --view "Delta^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)" \\
        --data ./relations --tau 8 --access 1,2 --access 3,4

Sweep the space/delay frontier::

    python -m repro sweep \\
        --view "V^bfb(x, y, z) = R(x, y), R(y, z), R(z, x)" \\
        --data ./relations --taus 2,8,32,128 --access 1,2

Report the widths that drive the space bounds::

    python -m repro widths --view "..." --data ./relations

Serve a request stream through the engine (one cached build, batched,
deduplicated answers; see :mod:`repro.engine`)::

    python -m repro serve \\
        --view "Delta^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)" \\
        --data ./relations --requests ./requests.txt --batch-size 32

The requests file holds one access tuple per line (comma-separated bound
values; blank lines and ``#`` comments are skipped). Instead of a fixed
``--tau``, the engine can pick it: ``--space-budget CELLS`` minimizes
delay within the budget (Proposition 11), ``--delay-budget TAU`` minimizes
space under the delay bound (Proposition 12).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Tuple

from pathlib import Path

from repro import (
    CompressedRepresentation,
    ViewServer,
    connex_fhw,
    fhw,
    hypergraph_of_view,
    parse_view,
)
from repro.exceptions import ReproError
from repro.io import load_database
from repro.measure.tradeoff import format_table, sweep_tau, tradeoff_rows
from repro.query.rewriting import normalize_view


def _parse_access(text: str) -> Tuple:
    parts = [piece.strip() for piece in text.split(",") if piece.strip()]
    values: List = []
    for piece in parts:
        try:
            values.append(int(piece))
        except ValueError:
            values.append(piece)
    return tuple(values)


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--view", required=True, help="adorned view, e.g. 'V^bf(x,y) = R(x,y)'"
    )
    parser.add_argument(
        "--data", required=True, help="directory of <relation>.csv files"
    )


def _build_answer(args) -> int:
    view = parse_view(args.view)
    db = load_database(args.data)
    structure = CompressedRepresentation(view, db, tau=args.tau)
    stats = structure.stats
    print(
        f"built: tau={stats.tau} alpha={stats.alpha:.2f} "
        f"tree={stats.tree_nodes} dict={stats.dictionary_entries} "
        f"({stats.build_seconds * 1000:.1f} ms)"
    )
    for access_text in args.access or []:
        access = _parse_access(access_text)
        rows = structure.answer(access)
        print(f"answer{access}: {len(rows)} tuples")
        limit = args.limit
        for row in rows[:limit]:
            print(f"  {row}")
        if len(rows) > limit:
            print(f"  ... {len(rows) - limit} more")
    return 0


def _run_sweep(args) -> int:
    view = parse_view(args.view)
    db = load_database(args.data)
    taus = [float(t) for t in args.taus.split(",")]
    accesses = [_parse_access(a) for a in args.access or []]
    if not accesses:
        print("sweep needs at least one --access", file=sys.stderr)
        return 2
    points = sweep_tau(view, db, taus=taus, accesses=accesses)
    print(
        format_table(
            tradeoff_rows(points),
            headers=("tau", "cells", "max gap", "mean gap", "outputs"),
            title="space/delay frontier:",
        )
    )
    return 0


def _load_requests(path: str) -> List[Tuple]:
    accesses: List[Tuple] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        accesses.append(_parse_access(line))
    return accesses


def _run_serve(args) -> int:
    try:
        return _serve(args)
    except (ReproError, OSError) as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2


def _serve(args) -> int:
    view = parse_view(args.view)
    db = load_database(args.data)
    accesses = _load_requests(args.requests)
    if not accesses:
        print(f"{args.requests}: no access requests", file=sys.stderr)
        return 2
    server = ViewServer(
        db, max_entries=args.cache_entries, max_cells=args.cache_cells
    )
    name = server.register(
        view,
        tau=args.tau,
        space_budget=args.space_budget,
        delay_budget=args.delay_budget,
    )
    registration = server.registration(name)
    print(
        f"registered {name!r}: tau={registration.tau:.3f} "
        f"({registration.policy})"
    )
    report = server.serve_stream(name, accesses, batch_size=args.batch_size)
    print(
        f"served {report.requests} requests in {report.batches} batches: "
        f"{report.unique_requests} traversals ({report.shared_requests} "
        f"shared), {report.outputs} tuples"
    )
    print(
        f"cache: {report.cache.hits} hits / {report.cache.misses} misses, "
        f"{report.builds} builds, {report.cache.evictions} evictions"
    )
    print(
        f"delays: max step gap {report.max_step_gap}; "
        f"{report.wall_seconds * 1000:.1f} ms total "
        f"({report.requests_per_second:.0f} req/s)"
    )
    return 0


def _run_widths(args) -> int:
    view = parse_view(args.view)
    db = load_database(args.data)
    normalized = normalize_view(view, db)
    hg = hypergraph_of_view(normalized.view)
    plain = fhw(hg)
    bound = frozenset(normalized.view.bound_variables)
    connex_width, _ = connex_fhw(hg, bound)
    print(f"fhw(H)        = {plain:.3f}  (full-enumeration space exponent)")
    print(f"fhw(H | V_b)  = {connex_width:.3f}  (constant-delay space exponent)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="compressed representations of conjunctive query results",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    answer = commands.add_parser("answer", help="build and answer requests")
    _common(answer)
    answer.add_argument("--tau", type=float, default=8.0)
    answer.add_argument(
        "--access", action="append", help="comma-separated bound values"
    )
    answer.add_argument("--limit", type=int, default=20)
    answer.set_defaults(handler=_build_answer)

    sweep = commands.add_parser("sweep", help="sweep the tau frontier")
    _common(sweep)
    sweep.add_argument("--taus", default="2,8,32,128")
    sweep.add_argument(
        "--access", action="append", help="comma-separated bound values"
    )
    sweep.set_defaults(handler=_run_sweep)

    widths = commands.add_parser("widths", help="report width exponents")
    _common(widths)
    widths.set_defaults(handler=_run_widths)

    serve = commands.add_parser(
        "serve", help="serve a request stream through the engine cache"
    )
    _common(serve)
    serve.add_argument(
        "--requests",
        required=True,
        help="file with one comma-separated access tuple per line",
    )
    knobs = serve.add_mutually_exclusive_group()
    knobs.add_argument(
        "--tau", type=float, default=None, help="fixed delay knob"
    )
    knobs.add_argument(
        "--space-budget",
        type=float,
        default=None,
        help="pick tau minimizing delay within this many cells",
    )
    knobs.add_argument(
        "--delay-budget",
        type=float,
        default=None,
        help="pick tau minimizing space under this delay bound",
    )
    serve.add_argument("--batch-size", type=int, default=32)
    serve.add_argument(
        "--cache-entries", type=int, default=8, help="LRU entry bound"
    )
    serve.add_argument(
        "--cache-cells", type=int, default=None, help="LRU cell budget"
    )
    serve.set_defaults(handler=_run_serve)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
