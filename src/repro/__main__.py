"""Command-line interface: build a compressed view over CSV relations.

Examples
--------
Build a structure and answer access requests::

    python -m repro answer \\
        --view "Delta^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)" \\
        --data ./relations --tau 8 --access 1,2 --access 3,4

Sweep the space/delay frontier::

    python -m repro sweep \\
        --view "V^bfb(x, y, z) = R(x, y), R(y, z), R(z, x)" \\
        --data ./relations --taus 2,8,32,128 --access 1,2

Report the widths that drive the space bounds::

    python -m repro widths --view "..." --data ./relations

Serve a request stream through the engine (one cached build, batched,
deduplicated answers; see :mod:`repro.engine`)::

    python -m repro serve \\
        --view "Delta^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)" \\
        --data ./relations --requests ./requests.txt --batch-size 32

Scale the same stream out: ``--shards N`` hash-partitions the database
across N per-shard servers (``--shard-key R:0,T:1`` overrides the key
inferred from the view), and ``--async`` puts the asyncio front end in
front (thread-pool execution, ``--workers``, backpressure via
``--max-pending``)::

    python -m repro serve --async --shards 4 \\
        --view "Delta^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)" \\
        --data ./relations --requests ./requests.txt

Streaming cursors: ``--limit K`` serves each request top-k through the
cursor API (only ~K tuples are enumerated, however large the answer),
``--page-size P`` drains requests in resume-token pages of P tuples, and
``--resume V1,V2,...`` re-enters a prior enumeration strictly after that
tuple — all three compose and work over every back end (plain, sharded,
async)::

    python -m repro serve --limit 10 --page-size 5 \\
        --view "Delta^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)" \\
        --data ./relations --requests ./requests.txt

The requests file holds one access tuple per line (comma-separated bound
values; blank lines and ``#`` comments are skipped). Instead of a fixed
``--tau``, the engine can pick it: ``--space-budget CELLS`` minimizes
delay within the budget (Proposition 11), ``--delay-budget TAU`` minimizes
space under the delay bound (Proposition 12).

Persistence and process parallelism: ``--snapshot-dir DIR`` makes every
built structure durable (a restarted server warms from the directory
instead of rebuilding; stale data is refused by fingerprint), and
``--build-workers N`` moves builds onto N worker processes::

    python -m repro serve --snapshot-dir ./snapshots --build-workers 2 \\
        --view "Delta^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)" \\
        --data ./relations --requests ./requests.txt

Standalone snapshots use the ``snapshot`` subcommand: ``save`` builds a
structure and writes one file, ``load`` decodes it (verifying it against
the data directory) and answers requests, ``inspect`` prints the header
without decoding::

    python -m repro snapshot save --view "..." --data ./relations \\
        --tau 8 --out view.snap
    python -m repro snapshot load --file view.snap --data ./relations \\
        --access 1,2
    python -m repro snapshot inspect --file view.snap

Elastic topology: ``serve --async --replicas N`` puts N read replicas —
hydrated purely from shipped snapshots, never building — behind the
async balancer (``--balancer round-robin|least-pending``), and the
``topology`` subcommand inspects/evolves rendezvous routing tables
offline (splitting a shard re-rendezvouses only that shard's keys)::

    python -m repro serve --async --replicas 2 --snapshot-dir ./snapshots \\
        --view "Delta^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)" \\
        --data ./relations --requests ./requests.txt
    python -m repro topology show --shards 4 --data ./relations \\
        --shard-key R:0,T:1
    python -m repro topology split --shards 4 --shard 2 --out topo.json

Serving under updates: ``serve --dynamic`` registers the view through
the delta-aware dynamic tier — buffered deltas under versioned serving,
warm-started from a durable delta log in ``--snapshot-dir`` — and the
``update`` subcommand routes base-relation inserts/deletes through the
same log, so the next ``serve --dynamic`` run replays them instead of
rebuilding (see ``docs/DYNAMIC_SERVING.md``)::

    python -m repro serve --dynamic --snapshot-dir ./snapshots \\
        --view "Delta^bff(x, y, z) = R(x, y), S(y, z), T(z, x)" \\
        --data ./relations --requests ./requests.txt
    python -m repro update apply --snapshot-dir ./snapshots \\
        --view "Delta^bff(x, y, z) = R(x, y), S(y, z), T(z, x)" \\
        --data ./relations --relation R --insert 7,9 --delete 1,2

Observability: ``serve --telemetry-dir DIR`` records counters, delay-gap
histograms and traced spans, persisting them as versioned JSONL that
merges across restarts; ``--adapt`` closes the loop, re-deriving the
serving τ from the observed delay-gap percentiles every ``--batch-size``
requests (``--gap-budget`` overrides the registration's target). The
``metrics`` subcommand replays what any number of past sessions
recorded (see ``docs/OPERATIONS.md``)::

    python -m repro serve --telemetry-dir ./telemetry --adapt \\
        --view "Delta^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)" \\
        --data ./relations --requests ./requests.txt
    python -m repro metrics show --telemetry-dir ./telemetry
    python -m repro metrics export --telemetry-dir ./telemetry --out m.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Dict, List, Tuple

from pathlib import Path

from repro import (
    AccessRequest,
    AsyncViewServer,
    CompressedRepresentation,
    ReplicaServer,
    RoutingTable,
    ShardedViewServer,
    ViewServer,
    connex_fhw,
    fhw,
    hypergraph_of_view,
    infer_shard_key,
    parse_view,
)
from repro.engine.telemetry import AdaptiveTuner, Telemetry, TelemetryStore
from repro.engine.topology import assignment_of
from repro.workloads.streams import batched
from repro.core.snapshot import (
    database_fingerprint,
    inspect_snapshot_file,
    load_snapshot,
    save_snapshot,
)
from repro.exceptions import ReproError
from repro.io import load_database
from repro.measure.tradeoff import format_table, sweep_tau, tradeoff_rows
from repro.query.rewriting import normalize_view


def _parse_access(text: str) -> Tuple:
    parts = [piece.strip() for piece in text.split(",") if piece.strip()]
    values: List = []
    for piece in parts:
        try:
            values.append(int(piece))
        except ValueError:
            values.append(piece)
    return tuple(values)


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--view", required=True, help="adorned view, e.g. 'V^bf(x,y) = R(x,y)'"
    )
    parser.add_argument(
        "--data", required=True, help="directory of <relation>.csv files"
    )


def _build_answer(args) -> int:
    view = parse_view(args.view)
    db = load_database(args.data)
    structure = CompressedRepresentation(view, db, tau=args.tau)
    stats = structure.stats
    print(
        f"built: tau={stats.tau} alpha={stats.alpha:.2f} "
        f"tree={stats.tree_nodes} dict={stats.dictionary_entries} "
        f"({stats.build_seconds * 1000:.1f} ms)"
    )
    for access_text in args.access or []:
        access = _parse_access(access_text)
        rows = structure.answer(access)
        print(f"answer{access}: {len(rows)} tuples")
        limit = args.limit
        for row in rows[:limit]:
            print(f"  {row}")
        if len(rows) > limit:
            print(f"  ... {len(rows) - limit} more")
    return 0


def _run_sweep(args) -> int:
    view = parse_view(args.view)
    db = load_database(args.data)
    taus = [float(t) for t in args.taus.split(",")]
    accesses = [_parse_access(a) for a in args.access or []]
    if not accesses:
        print("sweep needs at least one --access", file=sys.stderr)
        return 2
    points = sweep_tau(view, db, taus=taus, accesses=accesses)
    print(
        format_table(
            tradeoff_rows(points),
            headers=("tau", "cells", "max gap", "mean gap", "outputs"),
            title="space/delay frontier:",
        )
    )
    return 0


def _load_requests(path: str) -> List[Tuple]:
    accesses: List[Tuple] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        accesses.append(_parse_access(line))
    return accesses


def _run_serve(args) -> int:
    try:
        return _serve(args)
    except (ReproError, OSError) as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2


def _parse_shard_key(text: str) -> Dict[str, int]:
    """``"R:0,T:1"`` → ``{"R": 0, "T": 1}``."""
    key: Dict[str, int] = {}
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        relation, _, column = piece.partition(":")
        relation = relation.strip()
        if not relation or not column.strip().isdigit():
            raise ReproError(
                f"bad shard key entry {piece!r} (expected RELATION:COLUMN)"
            )
        if relation in key:
            raise ReproError(
                f"shard key names relation {relation!r} twice "
                f"(columns {key[relation]} and {column.strip()})"
            )
        key[relation] = int(column.strip())
    if not key:
        raise ReproError(f"shard key {text!r} names no relations")
    return key


def _serve(args) -> int:
    from repro.core import layout as layout_mod

    layout_mod.set_kernel_mode(args.kernel)
    view = parse_view(args.view)
    db = load_database(args.data)
    accesses = _load_requests(args.requests)
    if not accesses:
        print(f"{args.requests}: no access requests", file=sys.stderr)
        return 2
    if args.shards < 1:
        raise ReproError(f"--shards must be >= 1, got {args.shards}")
    if args.shard_key is not None and args.shards <= 1:
        raise ReproError("--shard-key is meaningless without --shards N > 1")
    if not args.use_async and (
        args.workers is not None or args.max_pending is not None
    ):
        raise ReproError("--workers/--max-pending are async knobs; add --async")
    if args.per_request and args.use_async:
        raise ReproError("--per-request is a synchronous baseline; drop --async")
    if args.per_request and (
        args.limit is not None
        or args.page_size is not None
        or args.resume is not None
    ):
        raise ReproError(
            "--per-request replays the stream unbatched; it does not "
            "compose with --limit/--page-size/--resume"
        )
    cursor_mode = (
        args.limit is not None
        or args.page_size is not None
        or args.resume is not None
    )
    if args.limit is not None and args.limit < 0:
        raise ReproError(f"--limit must be >= 0, got {args.limit}")
    if args.page_size is not None and args.page_size < 1:
        raise ReproError(f"--page-size must be >= 1, got {args.page_size}")
    if args.build_workers is not None and args.build_workers < 1:
        raise ReproError(
            f"--build-workers must be >= 1, got {args.build_workers}"
        )
    if args.replicas < 0:
        raise ReproError(f"--replicas must be >= 0, got {args.replicas}")
    if args.gap_budget is not None and not args.adapt:
        raise ReproError("--gap-budget tunes the adaptive loop; add --adapt")
    if args.adapt and (args.use_async or args.per_request or cursor_mode):
        raise ReproError(
            "--adapt drives the sequential batched path; it does not "
            "compose with --async/--per-request/cursor knobs"
        )
    if args.replicas:
        if not args.use_async:
            raise ReproError(
                "--replicas are balanced by the async front end; add --async"
            )
        if args.shards > 1:
            raise ReproError(
                "--replicas balance a plain backend; a sharded backend "
                "already fans out per shard (drop --shards or --replicas)"
            )
        if args.snapshot_dir is None:
            raise ReproError(
                "--replicas hydrate from shipped snapshots; give "
                "--snapshot-dir so the primary has somewhere to ship them"
            )
    if args.dynamic:
        if args.shards > 1:
            raise ReproError(
                "--dynamic serves one plain server; sharded delta fan-out "
                "goes through ShardedViewServer.apply_deltas in-process"
            )
        if args.replicas:
            raise ReproError(
                "--dynamic replicas converge by delta shipping "
                "(ship_deltas), not the async balancer; drop --replicas"
            )
        if args.adapt:
            raise ReproError(
                "a dynamic view serves at its registration tau; --adapt "
                "cannot retune it"
            )
        if args.space_budget is not None or args.delay_budget is not None:
            raise ReproError(
                "--dynamic pins tau at registration; space/delay budgets "
                "do not apply"
            )
    telemetry = None
    if args.telemetry_dir is not None:
        telemetry = Telemetry(Path(args.telemetry_dir))
    elif args.adapt:
        telemetry = Telemetry()  # the tuner needs gap histograms
    if args.shards > 1:
        shard_key = (
            _parse_shard_key(args.shard_key)
            if args.shard_key is not None
            else infer_shard_key(view)
        )
        backend = ShardedViewServer(
            db,
            args.shards,
            shard_key,
            max_entries=args.cache_entries,
            max_cells=args.cache_cells,
            snapshot_dir=args.snapshot_dir,
            cache_policy=args.cache_policy,
            build_workers=args.build_workers,
            telemetry=telemetry,
        )
    else:
        backend = ViewServer(
            db,
            max_entries=args.cache_entries,
            max_cells=args.cache_cells,
            snapshot_dir=args.snapshot_dir,
            cache_policy=args.cache_policy,
            build_workers=args.build_workers,
            telemetry=telemetry,
        )
    if args.dynamic:
        name = backend.register_dynamic(view, tau=args.tau)
    else:
        name = backend.register(
            view,
            tau=args.tau,
            space_budget=args.space_budget,
            delay_budget=args.delay_budget,
        )
    registration = backend.registration(name)
    # Budget-driven tau is resolved per shard; shard 0's is representative.
    scope = ", shard 0" if args.shards > 1 and registration.budget else ""
    print(
        f"registered {name!r}: tau={registration.tau:.3f} "
        f"({registration.policy}{scope})"
    )
    if args.shards > 1:
        mode, position = backend.route(name)
        detail = f" on bound position {position}" if mode == "routed" else ""
        print(
            f"sharding: {args.shards} shards over "
            f"{sorted(backend.shard_key)} ({mode}{detail})"
        )
    if args.dynamic:
        print(
            f"dynamic: serving delta version {backend.delta_version(name)} "
            f"(apply updates with 'python -m repro update apply')"
        )
    replicas: List[ViewServer] = []
    try:
        if args.replicas:
            replicas = _hydrate_replicas(
                backend, view, name, db, args, telemetry=telemetry
            )
        if args.adapt:
            return _serve_adaptive(backend, name, accesses, telemetry, args)
        if args.per_request:
            return _serve_per_request(backend, name, accesses)
        if cursor_mode:
            return _serve_cursors(backend, name, accesses, args, replicas)
        if args.use_async:
            workers = args.workers if args.workers is not None else 4
            max_pending = (
                args.max_pending if args.max_pending is not None else 32
            )
            server = AsyncViewServer(
                backend,
                max_workers=workers,
                max_pending=max_pending,
                replicas=replicas,
                balancer=args.balancer,
            )
            try:
                report = asyncio.run(
                    server.serve_stream(
                        name, accesses, batch_size=args.batch_size
                    )
                )
            finally:
                server.close()
            _print_stream_report(report)
            print(
                f"async: queue max {report.queue_seconds_max * 1000:.1f} ms "
                f"(mean {report.queue_seconds_mean * 1000:.1f} ms), "
                f"service mean {report.service_seconds_mean * 1000:.1f} ms, "
                f"{workers} workers, {max_pending} max in flight"
            )
        else:
            report = backend.serve_stream(
                name, accesses, batch_size=args.batch_size
            )
            _print_stream_report(report)
        if args.snapshot_dir is not None:
            print(
                f"snapshots: {report.cache.disk_hits} warm loads, "
                f"{report.cache.disk_writes} writes in {args.snapshot_dir}"
            )
    finally:
        for replica in replicas:
            replica.close()
        backend.close()
        if telemetry is not None:
            telemetry.close()  # final durable flush (the CLI owns the sink)
    return 0


def _serve_adaptive(backend, name: str, accesses, telemetry, args) -> int:
    """The closed loop: serve batches, re-deriving τ between them.

    Every ``--batch-size`` requests the :class:`AdaptiveTuner` compares
    the observed delay-gap percentile against the budget (the
    registration's, or ``--gap-budget``) and retunes the serving τ,
    promotes hot views ahead of demand, and demotes cold ones — each
    decision a traced, durable event.
    """
    tuner = AdaptiveTuner(
        backend,
        telemetry,
        gap_budget=args.gap_budget,
        interval_requests=args.batch_size,
    )
    started = time.perf_counter()
    outputs = requests = batches = 0
    decisions = []
    for chunk in batched(accesses, args.batch_size):
        result = backend.answer_batch(name, chunk)
        outputs += result.outputs
        requests += len(chunk)
        batches += 1
        decisions.extend(tuner.maybe_tune())
    wall = time.perf_counter() - started
    print(
        f"adaptive: {requests} requests in {batches} batches, "
        f"{outputs} tuples in {wall * 1000:.1f} ms"
    )
    print(
        f"tuning: {len(decisions)} decision(s); serving tau now "
        f"{backend.serving_tau(name):g}"
    )
    for decision in decisions[-5:]:
        print(
            f"  {decision.kind} {decision.view!r}: tau "
            f"{decision.tau_before:g} -> {decision.tau_after:g} "
            f"({decision.reason})"
        )
    if args.telemetry_dir is not None:
        print(f"telemetry: persisted under {args.telemetry_dir}")
    return 0


def _hydrate_replicas(
    backend, view, name: str, db, args, telemetry=None
) -> List[ViewServer]:
    """Ship the primary's snapshots and stand up N hydrated read replicas.

    The primary builds the registered view once and demotes it to the
    snapshot directory; every replica then registers the *same* spec
    (identical snapshot label) and hydrates purely from disk — zero
    builder invocations, by :class:`~repro.engine.replica.ReplicaServer`
    contract.
    """
    backend.representation(name)
    shipped = backend.cache.demote_all()
    replicas: List[ViewServer] = []
    try:
        for _ in range(args.replicas):
            replica = ReplicaServer(
                db,
                snapshot_dir=args.snapshot_dir,
                max_entries=args.cache_entries,
                max_cells=args.cache_cells,
                cache_policy=args.cache_policy,
                telemetry=telemetry,
            )
            replica.register(
                view,
                name=name,
                tau=args.tau,
                space_budget=args.space_budget,
                delay_budget=args.delay_budget,
            )
            replica.hydrate()
            replicas.append(replica)
    except ReproError:
        for replica in replicas:
            replica.close()
        raise
    print(
        f"replicas: {len(replicas)} hydrated from snapshots in "
        f"{args.snapshot_dir} ({shipped} freshly shipped, "
        f"balancer {args.balancer})"
    )
    return replicas


def _serve_per_request(backend, name: str, accesses: List[Tuple]) -> int:
    """The unbatched baseline: one cursor per request, no shared scans.

    Exists to make the batched default's advantage observable from the
    command line — replay the same requests file with and without
    ``--per-request`` and compare the wall clocks.
    """
    started = time.perf_counter()
    total = 0
    for access in accesses:
        with backend.open(name, access) as cursor:
            total += len(cursor.fetchall())
    wall = time.perf_counter() - started
    print(
        f"per-request baseline: {len(accesses)} cursors "
        f"({len(set(accesses))} distinct, nothing shared), "
        f"{total} tuples in {wall * 1000:.1f} ms"
    )
    return 0


def _serve_cursors(
    backend, name: str, accesses: List[Tuple], args, replicas=()
) -> int:
    """Cursor-plane serving: per-request limits, pages and resume tokens.

    Each access in the requests file becomes one cursor (or a chain of
    resume-token pages with ``--page-size``); ``--limit`` caps the
    tuples delivered per request, and ``--resume`` starts every request
    strictly after the given tuple. Works identically over the plain,
    sharded and async back ends.
    """
    token = _parse_access(args.resume) if args.resume is not None else None
    if args.use_async:
        workers = args.workers if args.workers is not None else 4
        max_pending = args.max_pending if args.max_pending is not None else 32
        server = AsyncViewServer(
            backend,
            max_workers=workers,
            max_pending=max_pending,
            replicas=list(replicas),
            balancer=args.balancer,
        )
        try:
            return asyncio.run(
                _stream_cursors_async(server, name, accesses, args, token)
            )
        finally:
            server.close()
    total = pages = 0
    for access in accesses:
        delivered, used, last, exhausted = _drain_paged(
            backend, name, access, args, token
        )
        total += delivered
        pages += used
        _print_cursor_line(access, delivered, used, last, exhausted)
    print(
        f"cursor mode: {len(accesses)} requests, "
        f"{total} tuples in {pages} page(s)"
    )
    return 0


def _drain_paged(backend, name: str, access: Tuple, args, token):
    """Serve one access through (possibly paged) cursors; returns totals."""
    remaining = args.limit
    pages = delivered = 0
    exhausted = False
    while True:
        if args.page_size is None:
            page_limit = remaining
        elif remaining is None:
            page_limit = args.page_size
        else:
            page_limit = min(args.page_size, remaining)
        cursor = backend.open(
            AccessRequest(
                view=name,
                access=access,
                limit=page_limit,
                start_after=token,
            )
        )
        rows = cursor.fetchall()
        pages += 1
        delivered += len(rows)
        token = cursor.resume_token()
        exhausted = cursor.exhausted
        cursor.close()
        if remaining is not None:
            remaining -= len(rows)
            if remaining <= 0:
                break
        if exhausted or not rows or args.page_size is None:
            break
    return delivered, pages, token, exhausted


async def _stream_cursors_async(server, name, accesses, args, token) -> int:
    """Drain every request through the async cursor face, in chunks."""
    chunk_size = (
        args.page_size if args.page_size is not None else args.batch_size
    )
    total = chunks = 0
    for access in accesses:
        request = AccessRequest(
            view=name, access=access, limit=args.limit, start_after=token
        )
        delivered = 0
        last = token
        async for page in server.stream(request, chunk_size=chunk_size):
            delivered += len(page)
            chunks += 1
            last = page[-1]
        _print_cursor_line(access, delivered, None, last, None)
        total += delivered
    print(
        f"cursor mode (async): {len(accesses)} requests, "
        f"{total} tuples in {chunks} chunk(s)"
    )
    return 0


def _print_cursor_line(access, delivered, pages, token, exhausted) -> None:
    token_text = ",".join(str(v) for v in token) if token else "-"
    detail = f" in {pages} page(s)" if pages is not None else ""
    if exhausted is None:
        state = f", last {token_text}"
    elif exhausted:
        state = ", exhausted"
    else:
        state = f", resume {token_text}"
    print(f"cursor{access}: {delivered} tuples{detail}{state}")


def _print_stream_report(report) -> None:
    print(
        f"served {report.requests} requests in {report.batches} batches: "
        f"{report.unique_requests} traversals ({report.shared_requests} "
        f"shared), {report.outputs} tuples"
    )
    print(
        f"cache: {report.cache.hits} hits / {report.cache.misses} misses, "
        f"{report.builds} builds, {report.cache.evictions} evictions"
    )
    print(
        f"delays: max step gap {report.max_step_gap}; "
        f"{report.wall_seconds * 1000:.1f} ms total "
        f"({report.requests_per_second:.0f} req/s)"
    )


def _run_update(args) -> int:
    try:
        return _update_apply(args)
    except (ReproError, OSError) as error:
        print(f"update: {error}", file=sys.stderr)
        return 2


def _update_apply(args) -> int:
    """One delta through the durable log: register warm, apply, exit.

    The server registers against the same snapshot directory the
    serving process uses, so registration warm-loads the current
    dynamic snapshot and replays the log; the applied delta is appended
    to that log, and the next ``serve --dynamic`` run replays it too.
    """
    view = parse_view(args.view)
    db = load_database(args.data)
    inserts = [_parse_access(text) for text in args.insert or []]
    deletes = [_parse_access(text) for text in args.delete or []]
    if not inserts and not deletes:
        raise ReproError("nothing to apply: give --insert and/or --delete")
    server = ViewServer(db, snapshot_dir=args.snapshot_dir)
    try:
        name = server.register_dynamic(view, tau=args.tau)
        before = server.delta_version(name)
        applied = server.apply_deltas(
            args.relation, inserts=inserts, deletes=deletes
        )
        for view_name in sorted(applied):
            print(
                f"applied {applied[view_name]} row(s) to {view_name!r}: "
                f"delta version {before} -> "
                f"{server.delta_version(view_name)}"
            )
    finally:
        server.close()
    return 0


def _snapshot_save(args) -> int:
    try:
        view = parse_view(args.view)
        db = load_database(args.data)
        structure = CompressedRepresentation(view, db, tau=args.tau)
        written = save_snapshot(
            args.out, structure, fingerprint=database_fingerprint(db)
        )
    except (ReproError, OSError) as error:
        print(f"snapshot save: {error}", file=sys.stderr)
        return 2
    stats = structure.stats
    print(
        f"saved {args.out}: {written} bytes "
        f"(tau={stats.tau}, tree={stats.tree_nodes}, "
        f"dict={stats.dictionary_entries}, "
        f"built in {stats.build_seconds * 1000:.1f} ms)"
    )
    return 0


def _snapshot_load(args) -> int:
    try:
        fingerprint = None
        if args.data is not None:
            fingerprint = database_fingerprint(load_database(args.data))
        structure = load_snapshot(args.file, expected_fingerprint=fingerprint)
    except (ReproError, OSError) as error:
        print(f"snapshot load: {error}", file=sys.stderr)
        return 2
    checked = "fingerprint verified" if fingerprint else "fingerprint unchecked"
    print(f"loaded {args.file}: {type(structure).__name__} ({checked})")
    for access_text in args.access or []:
        access = _parse_access(access_text)
        rows = structure.answer(access)
        print(f"answer{access}: {len(rows)} tuples")
        for row in rows[: args.limit]:
            print(f"  {row}")
        if len(rows) > args.limit:
            print(f"  ... {len(rows) - args.limit} more")
    return 0


def _snapshot_inspect(args) -> int:
    try:
        info = inspect_snapshot_file(args.file)
    except ReproError as error:
        print(f"snapshot inspect: {error}", file=sys.stderr)
        return 2
    print(f"{args.file}:")
    print(f"  format version: {info['version']}")
    print(f"  kind:           {info['kind']}")
    print(f"  fingerprint:    {info['fingerprint']}")
    print(
        f"  payload:        {info['payload_present']}/{info['payload_bytes']} "
        f"bytes ({'complete' if info['complete'] else 'TRUNCATED'})"
    )
    print(f"  file size:      {info['file_bytes']} bytes")
    return 0


def _metric_name(entry: Dict) -> str:
    """``name{k=v,...}`` — the display form of one labeled metric."""
    labels = entry.get("labels") or {}
    if not labels:
        return entry["name"]
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{entry['name']}{{{inner}}}"


def _merged_telemetry(args):
    directory = Path(args.telemetry_dir)
    if not directory.is_dir():
        raise ReproError(f"{directory}: no telemetry directory")
    return TelemetryStore.merged_registry(directory)


def _metrics_show(args) -> int:
    """Replay every persisted session's metrics and events, merged."""
    try:
        registry, events = _merged_telemetry(args)
    except (ReproError, OSError) as error:
        print(f"metrics show: {error}", file=sys.stderr)
        return 2
    snapshot = registry.snapshot()
    print(f"telemetry from {args.telemetry_dir}:")
    if snapshot["counters"]:
        print("counters:")
        for entry in sorted(
            snapshot["counters"], key=lambda e: (e["name"], repr(e["labels"]))
        ):
            print(f"  {_metric_name(entry)} = {entry['value']}")
    if snapshot["gauges"]:
        print("gauges:")
        for entry in sorted(
            snapshot["gauges"], key=lambda e: (e["name"], repr(e["labels"]))
        ):
            print(f"  {_metric_name(entry)} = {entry['value']}")
    if snapshot["histograms"]:
        print("histograms:")
        for entry in sorted(
            snapshot["histograms"],
            key=lambda e: (e["name"], repr(e["labels"])),
        ):
            histogram = registry.histogram(
                entry["name"], buckets=entry["buckets"], **entry["labels"]
            )
            print(
                f"  {_metric_name(entry)}: count={entry['count']} "
                f"sum={entry['sum']:g} p50={histogram.percentile(0.5):g} "
                f"p95={histogram.percentile(0.95):g}"
            )
    shown = events[-args.events :] if args.events else []
    if shown:
        print(f"events (last {len(shown)} of {len(events)}):")
        for record in shown:
            payload = dict(record["event"])
            op = payload.pop("op", "?")
            detail = " ".join(f"{k}={v}" for k, v in sorted(payload.items()))
            print(f"  [{record['session']}#{record['seq']}] {op}: {detail}")
    if not (
        snapshot["counters"] or snapshot["gauges"] or snapshot["histograms"]
    ):
        print("  (no metrics recorded)")
    return 0


def _metrics_export(args) -> int:
    """Write the merged snapshot (and events) as one JSON document."""
    try:
        registry, events = _merged_telemetry(args)
    except (ReproError, OSError) as error:
        print(f"metrics export: {error}", file=sys.stderr)
        return 2
    document = {
        "schema": 1,
        "source": str(args.telemetry_dir),
        "metrics": registry.snapshot(),
        "events": [record["event"] for record in events],
    }
    text = json.dumps(document, indent=2, sort_keys=True, default=str)
    if args.out is not None:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _topology_table(args) -> RoutingTable:
    """The routing table the topology subcommand operates on."""
    if args.table is not None:
        return RoutingTable.from_json(Path(args.table).read_text())
    if args.shards is None:
        raise ReproError("give --table FILE or --shards N")
    if args.shards < 1:
        raise ReproError(f"--shards must be >= 1, got {args.shards}")
    return RoutingTable.fresh(args.shards)


def _topology_key_values(args) -> List:
    """Distinct shard-key values from ``--data``, or [] when not given."""
    if args.data is None:
        return []
    db = load_database(args.data)
    if args.shard_key is not None:
        shard_key = _parse_shard_key(args.shard_key)
    elif args.view is not None:
        shard_key = infer_shard_key(parse_view(args.view))
    else:
        raise ReproError(
            "--data needs --shard-key or --view to know which columns "
            "route"
        )
    values = set()
    for relation, column in shard_key.items():
        if relation not in db:
            raise ReproError(f"--data has no relation {relation!r}")
        for row in db[relation].rows:
            values.add(row[column])
    return sorted(values, key=repr)


def _print_assignment(table: RoutingTable, values: List) -> None:
    owners = assignment_of(table, values)
    for shard in table.shard_ids:
        print(f"  shard {shard!r}: {len(owners[shard])} key value(s)")


def _topology_show(args) -> int:
    try:
        table = _topology_table(args)
        values = _topology_key_values(args)
    except (ReproError, OSError, ValueError) as error:
        print(f"topology show: {error}", file=sys.stderr)
        return 2
    print(
        f"routing table version {table.version}: "
        f"{table.n_shards} shard(s)"
    )
    print(f"  roots:  {list(table.roots)}")
    for parent in sorted(table.splits):
        print(f"  split:  {parent!r} -> {list(table.children(parent))}")
    print(f"  leaves: {list(table.shard_ids)}")
    if values:
        print(f"placement of {len(values)} distinct key value(s):")
        _print_assignment(table, values)
    return 0


def _topology_split(args) -> int:
    try:
        table = _topology_table(args)
        values = _topology_key_values(args)
        new_table = table.split(args.shard)
    except (ReproError, OSError, ValueError) as error:
        print(f"topology split: {error}", file=sys.stderr)
        return 2
    out = args.out if args.out is not None else args.table
    print(
        f"split shard {args.shard!r}: version {table.version} -> "
        f"{new_table.version}, children {list(new_table.children(args.shard))}"
    )
    if values:
        before = assignment_of(table, values)
        after = assignment_of(new_table, values)
        moved = sum(
            1
            for shard in table.shard_ids
            for value in before[shard]
            if shard != args.shard and value not in after.get(shard, ())
        )
        print(
            f"  {len(before[args.shard])} of {len(values)} key value(s) "
            f"re-rendezvous between the children; {moved} moved elsewhere "
            f"(rendezvous guarantee: 0)"
        )
        _print_assignment(new_table, values)
    if out is not None:
        Path(out).write_text(new_table.to_json() + "\n")
        print(f"  wrote version {new_table.version} to {out}")
    else:
        print(new_table.to_json())
    return 0


def _run_widths(args) -> int:
    view = parse_view(args.view)
    db = load_database(args.data)
    normalized = normalize_view(view, db)
    hg = hypergraph_of_view(normalized.view)
    plain = fhw(hg)
    bound = frozenset(normalized.view.bound_variables)
    connex_width, _ = connex_fhw(hg, bound)
    print(f"fhw(H)        = {plain:.3f}  (full-enumeration space exponent)")
    print(f"fhw(H | V_b)  = {connex_width:.3f}  (constant-delay space exponent)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="compressed representations of conjunctive query results",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    answer = commands.add_parser("answer", help="build and answer requests")
    _common(answer)
    answer.add_argument("--tau", type=float, default=8.0)
    answer.add_argument(
        "--access", action="append", help="comma-separated bound values"
    )
    answer.add_argument("--limit", type=int, default=20)
    answer.set_defaults(handler=_build_answer)

    sweep = commands.add_parser("sweep", help="sweep the tau frontier")
    _common(sweep)
    sweep.add_argument("--taus", default="2,8,32,128")
    sweep.add_argument(
        "--access", action="append", help="comma-separated bound values"
    )
    sweep.set_defaults(handler=_run_sweep)

    widths = commands.add_parser("widths", help="report width exponents")
    _common(widths)
    widths.set_defaults(handler=_run_widths)

    serve = commands.add_parser(
        "serve", help="serve a request stream through the engine cache"
    )
    _common(serve)
    serve.add_argument(
        "--requests",
        required=True,
        help="file with one comma-separated access tuple per line",
    )
    knobs = serve.add_mutually_exclusive_group()
    knobs.add_argument(
        "--tau", type=float, default=None, help="fixed delay knob"
    )
    knobs.add_argument(
        "--space-budget",
        type=float,
        default=None,
        help="pick tau minimizing delay within this many cells",
    )
    knobs.add_argument(
        "--delay-budget",
        type=float,
        default=None,
        help="pick tau minimizing space under this delay bound",
    )
    serve.add_argument("--batch-size", type=int, default=32)
    serve.add_argument(
        "--kernel",
        choices=("auto", "on", "off"),
        default="auto",
        help="columnar enumeration kernel: auto/on route counter-less "
        "requests through the compiled layout, off forces the reference "
        "tuple-at-a-time path",
    )
    serve.add_argument(
        "--limit",
        type=int,
        default=None,
        help="cursor mode: cap each request at N tuples (top-k serving)",
    )
    serve.add_argument(
        "--page-size",
        type=int,
        default=None,
        help="cursor mode: drain each request in resume-token pages of "
        "this size",
    )
    serve.add_argument(
        "--resume",
        default=None,
        help="cursor mode: comma-separated resume token; every request "
        "starts strictly after this tuple",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=8, help="LRU entry bound"
    )
    serve.add_argument(
        "--cache-cells",
        type=int,
        default=None,
        help="LRU cell budget (per shard when sharded)",
    )
    serve.add_argument(
        "--per-request",
        action="store_true",
        help="baseline mode: one cursor per request, no batching or "
        "shared scans (compare wall clock against the default)",
    )
    serve.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="serve through the asyncio front end (thread-pool execution)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="hash-partition the database across N per-shard servers",
    )
    serve.add_argument(
        "--shard-key",
        default=None,
        help="RELATION:COLUMN[,RELATION:COLUMN...]; inferred from the view "
        "when omitted",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="stand up N read replicas hydrated from shipped snapshots "
        "(needs --async and --snapshot-dir; plain backend only)",
    )
    serve.add_argument(
        "--balancer",
        choices=["round-robin", "least-pending"],
        default="round-robin",
        help="replica load-balancing policy (needs --replicas)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="async thread-pool width (default 4; needs --async)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="async backpressure: max batches in flight "
        "(default 32; needs --async)",
    )
    serve.add_argument(
        "--snapshot-dir",
        default=None,
        help="persist built structures here and warm-start from them "
        "on restart (per-shard subdirectories when sharded)",
    )
    serve.add_argument(
        "--cache-policy",
        choices=["lru", "cost"],
        default="lru",
        help="cache eviction policy: recency only, or cost-aware "
        "(weigh build seconds x cells)",
    )
    serve.add_argument(
        "--build-workers",
        type=int,
        default=None,
        help="build structures on N worker processes (real cores; "
        "falls back in-process if unavailable)",
    )
    serve.add_argument(
        "--telemetry-dir",
        default=None,
        help="record counters/histograms/spans and persist them here as "
        "restart-mergeable JSONL (replay with 'metrics show')",
    )
    serve.add_argument(
        "--dynamic",
        action="store_true",
        help="register through the delta-aware dynamic tier: versioned "
        "serving at a pinned tau, warm start from the durable delta log "
        "in --snapshot-dir, deltas applied between runs with "
        "'update apply' (plain backend only)",
    )
    serve.add_argument(
        "--adapt",
        action="store_true",
        help="closed-loop tuning: re-derive the serving tau from observed "
        "delay-gap percentiles every --batch-size requests",
    )
    serve.add_argument(
        "--gap-budget",
        type=float,
        default=None,
        help="target max step gap for --adapt (default: the "
        "registration's own budget or tau)",
    )
    serve.set_defaults(handler=_run_serve)

    update = commands.add_parser(
        "update",
        help="apply base-relation deltas to a dynamically served view",
    )
    update_commands = update.add_subparsers(
        dest="update_command", required=True
    )

    update_apply = update_commands.add_parser(
        "apply",
        help="route inserts/deletes through the view's durable delta log",
    )
    _common(update_apply)
    update_apply.add_argument(
        "--snapshot-dir",
        required=True,
        help="the dynamic snapshot/delta-log directory the serving "
        "process uses ('serve --dynamic --snapshot-dir')",
    )
    update_apply.add_argument(
        "--tau",
        type=float,
        default=None,
        help="registration tau; must match what 'serve --dynamic' used "
        "(default: the engine's default, same as serve's)",
    )
    update_apply.add_argument(
        "--relation", required=True, help="base relation the delta targets"
    )
    update_apply.add_argument(
        "--insert",
        action="append",
        help="comma-separated row to insert (repeatable)",
    )
    update_apply.add_argument(
        "--delete",
        action="append",
        help="comma-separated row to delete (repeatable)",
    )
    update_apply.set_defaults(handler=_run_update)

    snapshot = commands.add_parser(
        "snapshot", help="save, load or inspect representation snapshots"
    )
    snapshot_commands = snapshot.add_subparsers(
        dest="snapshot_command", required=True
    )

    snap_save = snapshot_commands.add_parser(
        "save", help="build a structure and write it as one snapshot file"
    )
    _common(snap_save)
    snap_save.add_argument("--tau", type=float, default=8.0)
    snap_save.add_argument(
        "--out", required=True, help="snapshot file to write"
    )
    snap_save.set_defaults(handler=_snapshot_save)

    snap_load = snapshot_commands.add_parser(
        "load", help="decode a snapshot and answer access requests"
    )
    snap_load.add_argument(
        "--file", required=True, help="snapshot file to load"
    )
    snap_load.add_argument(
        "--data",
        default=None,
        help="directory of <relation>.csv files; when given, the "
        "snapshot must fingerprint-match it",
    )
    snap_load.add_argument(
        "--access", action="append", help="comma-separated bound values"
    )
    snap_load.add_argument("--limit", type=int, default=20)
    snap_load.set_defaults(handler=_snapshot_load)

    snap_inspect = snapshot_commands.add_parser(
        "inspect", help="print a snapshot's header without decoding it"
    )
    snap_inspect.add_argument(
        "--file", required=True, help="snapshot file to inspect"
    )
    snap_inspect.set_defaults(handler=_snapshot_inspect)

    metrics = commands.add_parser(
        "metrics",
        help="replay or export telemetry persisted by 'serve "
        "--telemetry-dir'",
    )
    metrics_commands = metrics.add_subparsers(
        dest="metrics_command", required=True
    )

    metrics_show = metrics_commands.add_parser(
        "show", help="print merged counters, histograms and recent events"
    )
    metrics_show.add_argument(
        "--telemetry-dir", required=True, help="telemetry JSONL directory"
    )
    metrics_show.add_argument(
        "--events",
        type=int,
        default=10,
        help="how many trailing events to print (0 disables)",
    )
    metrics_show.set_defaults(handler=_metrics_show)

    metrics_export = metrics_commands.add_parser(
        "export", help="write the merged snapshot as one JSON document"
    )
    metrics_export.add_argument(
        "--telemetry-dir", required=True, help="telemetry JSONL directory"
    )
    metrics_export.add_argument(
        "--out", default=None, help="output file (default: stdout)"
    )
    metrics_export.set_defaults(handler=_metrics_export)

    topology = commands.add_parser(
        "topology",
        help="inspect or evolve a rendezvous routing table offline",
    )
    topology_commands = topology.add_subparsers(
        dest="topology_command", required=True
    )

    def _topology_common(sub: argparse.ArgumentParser) -> None:
        source = sub.add_mutually_exclusive_group()
        source.add_argument(
            "--table",
            default=None,
            help="routing-table JSON file (as written by 'topology split')",
        )
        source.add_argument(
            "--shards",
            type=int,
            default=None,
            help="start from a fresh N-shard table instead of --table",
        )
        sub.add_argument(
            "--data",
            default=None,
            help="directory of <relation>.csv files; adds key placement "
            "counts (needs --shard-key or --view)",
        )
        sub.add_argument(
            "--shard-key",
            default=None,
            help="RELATION:COLUMN[,...] routing columns for --data",
        )
        sub.add_argument(
            "--view",
            default=None,
            help="adorned view to infer the shard key from (for --data)",
        )

    topo_show = topology_commands.add_parser(
        "show", help="print a routing table's shards, splits and placement"
    )
    _topology_common(topo_show)
    topo_show.set_defaults(handler=_topology_show)

    topo_split = topology_commands.add_parser(
        "split",
        help="split one shard (only its keys re-rendezvous) and write the "
        "bumped table",
    )
    _topology_common(topo_split)
    topo_split.add_argument(
        "--shard", required=True, help="live shard id to split, e.g. 2 or 2.0"
    )
    topo_split.add_argument(
        "--out",
        default=None,
        help="file for the new table JSON (default: rewrite --table, or "
        "print to stdout)",
    )
    topo_split.set_defaults(handler=_topology_split)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
