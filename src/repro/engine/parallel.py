"""Process-parallel structure builds: real cores for CPU-bound work.

The thread pool that serves requests cannot speed up *builds*: tree and
dictionary construction are pure Python and serialize on the GIL. This
module moves builds to a ``ProcessPoolExecutor``. The snapshot codec is
what makes that possible — and cheap: a worker process receives the
plain-data build spec (view state, database state, τ, cover weights),
builds the structure, and returns the *encoded snapshot*; the parent
decodes it. Nothing with locks, tries or closures ever crosses the
process boundary, and the wire format is the exact same versioned codec
the disk tier persists (:mod:`repro.core.snapshot`).

Degradation is graceful by design: any failure to spawn workers or to
ship work (a sandboxed platform without working ``fork``/``spawn``, a
broken pool after a worker died, an unpicklable value inside a
relation) permanently falls back to in-process builds — correctness
never depends on multiprocessing being available.
"""

from __future__ import annotations

import pickle
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.snapshot import (
    database_from_state,
    database_state,
    decode_snapshot,
    encode_snapshot,
    view_from_state,
    view_state,
)
from repro.core.structure import CompressedRepresentation
from repro.database.catalog import Database
from repro.engine.locking import named_lock
from repro.exceptions import ParameterError
from repro.query.adorned import AdornedView


def build_snapshot_blob(
    view_data: Dict,
    db_data: List[Tuple[str, int, List[Tuple]]],
    tau: float,
    weights_items: Optional[Tuple[Tuple[int, float], ...]],
) -> bytes:
    """Worker entry point: build one structure, return its snapshot.

    Module-level (picklable by reference) and plain-data in and out —
    the only function that ever runs in a build worker.
    """
    view = view_from_state(view_data)
    db = database_from_state(db_data)
    weights = dict(weights_items) if weights_items is not None else None
    representation = CompressedRepresentation(view, db, tau=tau, weights=weights)
    return encode_snapshot(representation)


class ParallelBuilder:
    """A shared pool of build workers with permanent in-process fallback.

    One instance is meant to be shared by every server that builds
    against the same machine (the sharded facade hands one to all its
    per-shard servers), so ``max_workers`` bounds total build
    parallelism, not per-server parallelism.

    Thread-safe: the engine calls :meth:`build` concurrently from cache
    miss paths and from prebuild fan-outs.
    """

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ParameterError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = max_workers
        self._lock = named_lock("parallel.builder")
        self._executor: Optional[ProcessPoolExecutor] = None
        self._broken = False
        # Observability: how builds actually ran, for benchmarks/tests.
        self.process_builds = 0
        self.fallback_builds = 0

    @property
    def is_broken(self) -> bool:
        """True once the pool failed and the builder fell back for good."""
        with self._lock:
            return self._broken

    def _executor_or_none(self) -> Optional[ProcessPoolExecutor]:
        with self._lock:
            if self._broken:
                return None
            if self._executor is None:
                try:
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.max_workers
                    )
                except (OSError, ValueError, RuntimeError):
                    self._broken = True
                    return None
            return self._executor

    def submit(
        self,
        view: AdornedView,
        db: Database,
        tau: float,
        weights: Optional[Mapping[int, float]] = None,
    ) -> Optional["Future[bytes]"]:
        """Ship one build to a worker; None means build in-process instead.

        Failures *inside* the returned future (a worker dying mid-build)
        are the caller's to handle — :meth:`build` does, and is the API
        almost everything should use.
        """
        executor = self._executor_or_none()
        if executor is None:
            return None
        items = (
            tuple(sorted(weights.items())) if weights is not None else None
        )
        try:
            return executor.submit(
                build_snapshot_blob,
                view_state(view),
                database_state(db),
                float(tau),
                items,
            )
        except (BrokenProcessPool, RuntimeError, pickle.PicklingError, OSError):
            self._mark_broken()
            return None

    def build(
        self,
        view: AdornedView,
        db: Database,
        tau: float,
        weights: Optional[Mapping[int, float]] = None,
    ) -> CompressedRepresentation:
        """Build one structure on a worker process, in-process on failure."""
        future = self.submit(view, db, tau, weights)
        if future is not None:
            try:
                blob = future.result()
            except (BrokenProcessPool, pickle.PicklingError, OSError):
                # The pool (or the argument shipping) is unusable; the
                # build itself was never the problem — run it here.
                self._mark_broken()
            else:
                with self._lock:
                    self.process_builds += 1
                return decode_snapshot(blob)
        with self._lock:
            self.fallback_builds += 1
        return CompressedRepresentation(view, db, tau=tau, weights=weights)

    def _mark_broken(self) -> None:
        with self._lock:
            self._broken = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the worker pool down (idempotent; builder stays usable
        in fallback mode)."""
        with self._lock:
            executor, self._executor = self._executor, None
            self._broken = True
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ParallelBuilder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
