"""The typed request/cursor protocol: streaming access to served views.

The paper's central contract is *enumeration* — answers stream one tuple
at a time with delay ``delay(Q, τ)`` — and the core layer honors it
(:meth:`~repro.core.structure.CompressedRepresentation.enumerate` is a
lazy generator). This module carries that contract up through the
serving stack instead of collapsing answers into lists:

* :class:`AccessRequest` names a registered view, fixes the bound
  tuple, and optionally caps the answer (``limit``), resumes a prior
  enumeration (``start_after``), or asks for delay measurement
  (``measure``).
* :class:`AnswerCursor` is the lazy iterator a server's ``open`` returns:
  tuples arrive in the representation's enumeration order (lexicographic
  head order for :class:`~repro.core.structure.CompressedRepresentation`
  and the sharded merge over it), and nothing beyond what the caller
  pulls is ever enumerated — ``limit=k`` touches O(k) tuples, which is
  the compressed representation's headline advantage for top-k and
  paginated workloads.

Resume tokens
-------------
A resume token is simply the last *delivered* free-variable value tuple
(:meth:`AnswerCursor.resume_token`). Feeding it back as ``start_after``
re-enters the enumeration strictly after that tuple without rescanning
the prefix: representations exposing ``enumerate_from`` (all three —
``supports_resume`` marks them) seek in one delay unit; anything else
degrades to a skip-scan that drops the prefix up to and including the
token (and yields nothing if the token never appears — a past-end or
foreign token is an empty page, never an error).

Delay statistics under ``limit``
--------------------------------
:meth:`AnswerCursor.stats` mirrors
:func:`~repro.measure.delay.measure_enumeration`: per-output wall/step
gaps, plus the closing gap *only when the underlying enumeration was
actually exhausted*. A cursor stopped by its ``limit`` never observes
exhaustion, so its stats cover exactly the tuples delivered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from itertools import islice
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ParameterError
from repro.joins.generic_join import JoinCounter
from repro.measure.delay import DelayStats

#: A resume token: the last delivered free-variable value tuple.
ResumeToken = Tuple


@dataclass(frozen=True)
class AccessRequest:
    """One typed access request against a registered view.

    Parameters
    ----------
    view:
        The registered serving name.
    access:
        The bound-variable value tuple (empty for fully-free views).
    limit:
        Maximum tuples the cursor delivers; ``None`` means all.
        ``limit=0`` is a legal empty page (useful to probe a token).
    start_after:
        Resume token — deliver only tuples strictly after this one in
        enumeration order. ``None`` starts from the beginning.
    tau:
        Optional τ override, as for ``answer_batch``.
    measure:
        Thread a :class:`~repro.joins.generic_join.JoinCounter` through
        the enumeration and record per-output delay statistics.
    """

    view: str
    access: Tuple = ()
    limit: Optional[int] = None
    start_after: Optional[Tuple] = None
    tau: Optional[float] = None
    measure: bool = False

    def __post_init__(self):
        object.__setattr__(self, "access", tuple(self.access))
        if self.start_after is not None:
            object.__setattr__(self, "start_after", tuple(self.start_after))
        if self.limit is not None and self.limit < 0:
            raise ParameterError(f"limit must be >= 0, got {self.limit}")

    def page_after(
        self, token: Optional[Sequence], limit: Optional[int] = None
    ) -> "AccessRequest":
        """The next-page request: same view/access, resumed after ``token``.

        ``limit=None`` keeps this request's limit (the page size).
        """
        return replace(
            self,
            start_after=tuple(token) if token is not None else None,
            limit=self.limit if limit is None else limit,
        )


def as_request(
    request: Union[AccessRequest, str],
    access: Optional[Sequence] = None,
    limit: Optional[int] = None,
    start_after: Optional[Sequence] = None,
    tau: Optional[float] = None,
    measure: bool = False,
) -> AccessRequest:
    """Normalize ``open``'s two calling conventions into one request.

    Servers accept either a ready-made :class:`AccessRequest` or the
    positional ``open(name, access, ...)`` shorthand.
    """
    if isinstance(request, AccessRequest):
        return request
    return AccessRequest(
        view=request,
        access=access if access is not None else (),
        limit=limit,
        start_after=start_after,
        tau=tau,
        measure=measure,
    )


class AnswerCursor:
    """Lazy iterator over one access request's answer stream.

    Produced by a server's ``open``; also usable directly over any
    representation via :func:`open_cursor`. Iteration is pull-driven:
    tuples are enumerated only as the caller consumes them, the
    ``limit`` stops pulling once reached, and :meth:`close` releases
    the underlying generators early. Sharded cursors expose their
    per-shard sub-cursors as :attr:`parts` (shard order), whose
    individual :meth:`stats` bound the per-shard enumeration work.
    """

    def __init__(
        self,
        request: AccessRequest,
        source: Iterator[Tuple],
        counter: Optional[JoinCounter] = None,
        parts: Sequence["AnswerCursor"] = (),
        gap_tracker=None,
    ):
        self.request = request
        self.parts: Tuple["AnswerCursor", ...] = tuple(parts)
        self._source = iter(source)
        self._counter = counter
        # A shared scan buffers rows ahead of delivery, so this cursor's
        # own delivery-relative step deltas would misattribute the gap;
        # the scan tracks per-state gaps at emission time instead and
        # hands them over through this object (``step_max_gap`` attr).
        self._gap_tracker = gap_tracker
        self._stats = DelayStats()
        self._last: Optional[Tuple] = None
        self._finished = False
        self._exhausted = False
        self._closed = False
        self._close_hooks: List = []
        self._hooks_fired = False
        now = time.perf_counter()
        self._started = now
        self._last_time = now
        self._last_steps = counter.steps if counter is not None else 0

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def __iter__(self) -> "AnswerCursor":
        return self

    def __next__(self) -> Tuple:
        if self._closed or self._finished:
            raise StopIteration
        limit = self.request.limit
        if limit is not None and self._stats.outputs >= limit:
            self._finished = True
            # A limit-stop ends this cursor's serving life as surely as
            # exhaustion does; holders of resources (topology pins) must
            # hear about it even if the caller never calls close().
            self._fire_close_hooks()
            raise StopIteration
        try:
            row = next(self._source)
        except StopIteration:
            self._observe_exhaustion()
            raise
        self._observe_output()
        self._last = row
        return row

    def _observe_output(self) -> None:
        self._stats.outputs += 1
        if not self.request.measure:
            return
        now = time.perf_counter()
        gap = now - self._last_time
        if self._stats.outputs == 1:
            self._stats.wall_first = gap
        self._stats.wall_max_gap = max(self._stats.wall_max_gap, gap)
        self._last_time = now
        if self._counter is not None:
            step_gap = self._counter.steps - self._last_steps
            self._stats.step_max_gap = max(
                self._stats.step_max_gap, step_gap
            )
            self._last_steps = self._counter.steps

    def _observe_exhaustion(self) -> None:
        self._finished = True
        self._exhausted = True
        if self.request.measure:
            # Mirror measure_enumeration's closing gap: the time from the
            # last output until exhaustion is part of the paper's delay.
            now = time.perf_counter()
            gap = now - self._last_time
            self._stats.wall_max_gap = max(self._stats.wall_max_gap, gap)
            if self._stats.outputs == 0:
                self._stats.wall_first = gap
            self._last_time = now
            if self._counter is not None:
                step_gap = self._counter.steps - self._last_steps
                self._stats.step_max_gap = max(
                    self._stats.step_max_gap, step_gap
                )
                self._last_steps = self._counter.steps
        # Hooks fire after the closing gap folds in, so a hook reading
        # stats() — the telemetry layer does — sees the final figures.
        self._fire_close_hooks()

    # ------------------------------------------------------------------
    # batched pulls
    # ------------------------------------------------------------------
    def fetchmany(self, size: int) -> List[Tuple]:
        """Up to ``size`` further tuples (empty list at the end)."""
        if size < 0:
            raise ParameterError(f"fetchmany size must be >= 0, got {size}")
        return list(islice(self, size))

    def fetchall(self) -> List[Tuple]:
        """Every remaining tuple (materializing — the wrapper path)."""
        return list(self)

    # ------------------------------------------------------------------
    # cursor state
    # ------------------------------------------------------------------
    @property
    def delivered(self) -> int:
        """Tuples this cursor has yielded so far."""
        return self._stats.outputs

    @property
    def exhausted(self) -> bool:
        """True once the underlying enumeration ran dry (not limit-stop)."""
        return self._exhausted

    def resume_token(self) -> Optional[ResumeToken]:
        """Token resuming strictly after the last delivered tuple.

        Before the first delivery this is the request's own
        ``start_after`` (so an empty page round-trips its token);
        ``None`` means "from the start".
        """
        if self._last is not None:
            return self._last
        return self.request.start_after

    def stats(self) -> DelayStats:
        """Delay statistics over the tuples delivered so far.

        With ``measure=True`` the shape matches
        :func:`~repro.measure.delay.measure_enumeration`; the closing
        gap is included only if the enumeration was exhausted. A merged
        (sharded) cursor reports its own wall/output figures and folds
        the per-shard step counters together.
        """
        stats = replace(self._stats, step_gaps=list(self._stats.step_gaps))
        if self._gap_tracker is not None:
            # Emission-time gaps from the shared scan: identical to what
            # a solo traversal of this state would have observed.
            stats.step_max_gap = self._gap_tracker.step_max_gap
        if self._counter is not None:
            stats.step_total = self._counter.steps
        elif self.parts:
            part_stats = [part.stats() for part in self.parts]
            stats.step_total = sum(p.step_total for p in part_stats)
            stats.step_max_gap = max(
                [stats.step_max_gap] + [p.step_max_gap for p in part_stats]
            )
        if self.request.measure:
            stats.wall_total = self._last_time - self._started
        return stats

    # ------------------------------------------------------------------
    # life cycle
    # ------------------------------------------------------------------
    def add_close_hook(self, hook) -> None:
        """Run ``hook()`` once when this cursor's serving life ends.

        The end of life is whichever comes first of :meth:`close`,
        exhaustion, or a limit-stop — exactly when the serving layer can
        release per-cursor resources (the sharded facade hangs its
        routing-table version pin here). A hook added after that point
        runs immediately; each hook runs at most once.
        """
        if self._hooks_fired:
            hook()
            return
        self._close_hooks.append(hook)

    def _fire_close_hooks(self) -> None:
        if self._hooks_fired:
            return
        self._hooks_fired = True
        hooks, self._close_hooks = self._close_hooks, []
        for hook in hooks:
            hook()

    def close(self) -> None:
        """Release the underlying enumeration(s); idempotent."""
        if self._closed:
            return
        self._closed = True
        self._finished = True
        closer = getattr(self._source, "close", None)
        if closer is not None:
            closer()
        for part in self.parts:
            part.close()
        self._fire_close_hooks()

    def __enter__(self) -> "AnswerCursor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ----------------------------------------------------------------------
# building cursors over representations
# ----------------------------------------------------------------------
def open_cursor(representation, request: AccessRequest) -> AnswerCursor:
    """A cursor over one representation, honoring the whole request.

    Works for any object with ``enumerate(access, counter=)`` —
    resumption uses ``enumerate_from`` when the class advertises
    ``supports_resume``, and degrades to a skip-scan otherwise.
    """
    counter = JoinCounter() if request.measure else None
    source = resume_enumeration(
        representation, request.access, request.start_after, counter
    )
    return AnswerCursor(request, source, counter=counter)


def resume_enumeration(
    representation,
    access: Sequence,
    start_after: Optional[Sequence],
    counter: Optional[JoinCounter] = None,
) -> Iterator[Tuple]:
    """The (possibly resumed) enumeration behind one cursor.

    ``start_after=None`` is a plain ``enumerate``. With a token, a
    resume-capable representation seeks via ``enumerate_after``
    (strictly after the token, one-delay-unit re-entry); others are
    skip-scanned past the token.
    """
    if start_after is None:
        return representation.enumerate(access, counter=counter)
    token = tuple(start_after)
    if getattr(representation, "supports_resume", False):
        return representation.enumerate_after(access, token, counter=counter)
    return _skip_scan(
        representation.enumerate(access, counter=counter), token
    )


def _skip_scan(iterator: Iterator[Tuple], token: Tuple):
    """Degraded resumption: drop everything up to and including the token.

    If the token never appears (past-end, or forged), nothing is
    yielded — a documented empty page, not an error.
    """
    iterator = iter(iterator)
    for row in iterator:
        if row == token:
            break
    yield from iterator
