"""The access-serving engine: registered views + cached representations.

:class:`ViewServer` is the long-lived serving layer the paper implies but
the CLI never had: register adorned views once against a database, then
answer access requests from a bounded cache of compressed representations
instead of rebuilding ``(T, D)`` per invocation.

Responsibilities
----------------
* **Registration** resolves each view to its natural-join form
  (:func:`~repro.query.rewriting.normalize_view`) and picks τ: a fixed
  value, or automatically from a space budget
  (:func:`~repro.optimizer.min_delay_cover` — the smallest delay the
  budget affords, Proposition 11) or a delay budget
  (:func:`~repro.optimizer.min_space_cover` — the smallest space meeting
  it, Proposition 12). Budget-selected covers are reused as the
  structure's fractional edge cover, so the built instance realizes the
  optimized tradeoff point.
* **Caching**: structures are built lazily on first request and kept in a
  :class:`~repro.engine.cache.RepresentationCache` keyed by
  ``(view name, τ)`` with LRU eviction under entry/cell bounds.
* **Streaming**: :meth:`ViewServer.open` is the serving primitive — it
  returns a lazy :class:`~repro.engine.api.AnswerCursor` honoring the
  request's ``limit``/``start_after``/``measure`` knobs, so top-k and
  paginated workloads enumerate only what they consume. ``answer``,
  ``answer_batch`` and ``serve_stream`` are materializing wrappers.
* **Batched serving**: :meth:`ViewServer.open_batch` is the batch
  primitive — a request group over one view rides ONE shared tree
  traversal (:mod:`repro.engine.shared_scan`), with duplicates sharing
  a lane and prefix-sharing accesses sharing subtrie descents;
  ``answer_batch``/``serve_stream`` are materializing wrappers over it.
  Per-request delay statistics follow
  :meth:`AnswerCursor.stats <repro.engine.api.AnswerCursor.stats>`
  semantics: the closing gap (trailing steps after the last output) is
  included **only when the cursor observed exhaustion**. ``answer_batch``
  drains every cursor fully, so its stats always include it — matching
  :func:`~repro.measure.delay.measure_enumeration` — while a
  limit-stopped cursor opened directly never does.
* **Telemetry**: pass ``telemetry=`` (a
  :class:`~repro.engine.telemetry.Telemetry`, or ``True`` to persist
  under ``snapshot_dir/telemetry/``) and the server instruments itself:
  request counters, serve-latency and delay-gap histograms, cache and
  shared-scan counters. ``None`` (the default) costs nothing. The
  :class:`~repro.engine.telemetry.AdaptiveTuner` closes the loop through
  :meth:`ViewServer.retune` / :meth:`ViewServer.serving_tau` /
  :meth:`ViewServer.prefetch` / :meth:`ViewServer.demote`.
* **Concurrency**: the cache is internally synchronized and provides
  the single-build guarantee through
  :meth:`~repro.engine.cache.RepresentationCache.get_or_build` (at most
  one build per key ever runs; waiters block on the builder's event,
  then hit the cache). A separate registry lock guards the server's own
  bookkeeping, and enumeration runs outside all locks — built
  structures are immutable, so concurrent readers never contend.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.dynamic import DynamicRepresentation
from repro.core.snapshot import (
    SnapshotStore,
    database_fingerprint,
    relation_fingerprints,
    view_state,
)
from repro.core.structure import CompressedRepresentation
from repro.database.catalog import Database
from repro.engine.api import (
    AccessRequest,
    AnswerCursor,
    as_request,
    open_cursor,
)
from repro.engine.cache import CacheStats, RepresentationCache
from repro.engine.dynamic_serving import (
    DeltaRecord,
    DynamicSnapshotStore,
    DynamicViewState,
)
from repro.engine.locking import named_lock
from repro.engine.parallel import ParallelBuilder
from repro.engine.shared_scan import SharedScan
from repro.engine.telemetry import GAP_BUCKETS, LATENCY_BUCKETS, Telemetry
from repro.exceptions import ParameterError, SchemaError, SnapshotError
from repro.measure.delay import DelayStats
from repro.optimizer.min_delay import min_delay_cover
from repro.optimizer.min_space import min_space_cover
from repro.query.adorned import AdornedView
from repro.query.parser import parse_view
from repro.query.rewriting import normalize_view
from repro.workloads.streams import batched

DEFAULT_TAU = 8.0

CacheKey = Tuple[str, float, int]


@dataclass(frozen=True)
class Registration:
    """One registered view: its natural-join form and resolved knobs.

    ``generation`` distinguishes re-registrations under a reused name:
    cache keys embed it, so a structure built for one generation can
    never be served (or hit by a waiter) as another generation's answer.
    """

    name: str
    view: AdornedView
    natural_view: AdornedView
    database: Database
    tau: float
    policy: str  # "fixed" | "space-budget" | "delay-budget"
    budget: Optional[float] = None
    weights: Optional[Mapping[int, float]] = None
    sizes: Mapping[int, int] = field(default_factory=dict)
    generation: int = 0


@dataclass(frozen=True)
class BatchResult:
    """Answers and measurements for one served batch.

    ``answers`` aligns with the submitted batch; duplicate requests share
    one answer list (the whole point of batching). ``request_stats`` holds
    one :class:`~repro.measure.delay.DelayStats` per *distinct* access.
    Batch cursors are drained to exhaustion, so each entry **includes the
    closing gap** (the trailing steps after its last output) — identical
    to :func:`~repro.measure.delay.measure_enumeration` on the same
    access. This is the exhaustion case of the cursor rule
    (:meth:`AnswerCursor.stats <repro.engine.api.AnswerCursor.stats>`):
    only a limit-stopped cursor, which never observes exhaustion, omits
    the closing gap.
    """

    accesses: Tuple[Tuple, ...]
    answers: Tuple[List[Tuple], ...]
    request_stats: Mapping[Tuple, DelayStats]
    unique_count: int

    @property
    def shared_count(self) -> int:
        """Requests answered without a traversal of their own."""
        return len(self.accesses) - self.unique_count

    @property
    def outputs(self) -> int:
        """Total tuples delivered, duplicates included."""
        return sum(len(rows) for rows in self.answers)

    @property
    def max_step_gap(self) -> int:
        """Worst logical delay observed across the batch's traversals."""
        if not self.request_stats:
            return 0
        return max(s.step_max_gap for s in self.request_stats.values())


@dataclass(frozen=True)
class ServingReport:
    """Aggregate of one request stream served through the engine.

    ``builds`` and ``cache`` are deltas observed during this stream, not
    server-lifetime totals — serving a warm cache reports zero builds.
    """

    requests: int
    unique_requests: int
    shared_requests: int
    outputs: int
    batches: int
    builds: int
    wall_seconds: float
    max_step_gap: int
    cache: CacheStats

    @property
    def requests_per_second(self) -> float:
        """Serving throughput over the report's wall-clock window."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.requests / self.wall_seconds


def drain_stream(
    server,
    name: str,
    accesses: Iterable[Sequence],
    batch_size: int = 32,
    tau: Optional[float] = None,
    measure: bool = True,
) -> ServingReport:
    """Drain a request stream through any serving back end, batch by batch.

    ``server`` needs the common serving surface — ``answer_batch``,
    ``total_builds()`` and ``cache_stats`` — which :class:`ViewServer`
    and :class:`~repro.engine.sharding.ShardedViewServer` both expose;
    their ``serve_stream`` methods are this helper, so stream accounting
    cannot drift between the plain and the sharded path.
    """
    started = time.perf_counter()
    builds_before = server.total_builds()
    stats_before = server.cache_stats
    requests = unique = outputs = batches = 0
    max_gap = 0
    for chunk in batched(accesses, batch_size):
        result = server.answer_batch(name, chunk, tau=tau, measure=measure)
        requests += len(result.accesses)
        unique += result.unique_count
        outputs += result.outputs
        batches += 1
        max_gap = max(max_gap, result.max_step_gap)
    return ServingReport(
        requests=requests,
        unique_requests=unique,
        shared_requests=requests - unique,
        outputs=outputs,
        batches=batches,
        builds=server.total_builds() - builds_before,
        wall_seconds=time.perf_counter() - started,
        max_step_gap=max_gap,
        cache=server.cache_stats.delta(stats_before),
    )


class ViewServer:
    """Serve access requests for registered views from a bounded cache.

    Parameters
    ----------
    db:
        The database all registered views are evaluated against.
    max_entries / max_cells:
        Bounds of the representation cache (see
        :class:`~repro.engine.cache.RepresentationCache`).
    snapshot_dir:
        Optional directory enabling the persistent warm-start tier:
        builds are snapshotted there (stamped with this database's
        fingerprint), misses consult it before building, and evictions
        demote to it. A restarted server pointed at the same directory
        and the same data decodes instead of rebuilding.
    cache_policy:
        ``"lru"`` or ``"cost"`` — see
        :class:`~repro.engine.cache.RepresentationCache`.
    build_workers / builder:
        Process-parallel builds: ``build_workers=N`` gives the server
        its own :class:`~repro.engine.parallel.ParallelBuilder` pool of
        N worker processes (closed by :meth:`close`); ``builder=``
        shares an existing pool (the sharded facade does this so total
        build parallelism stays bounded). Builds fall back in-process
        whenever the pool is unavailable.
    telemetry:
        ``None`` (default) disables instrumentation entirely. A
        :class:`~repro.engine.telemetry.Telemetry` instance instruments
        this server (and its cache) into that instance's registry —
        share one across servers to see the whole stack. ``True``
        creates a server-owned instance, persisting under
        ``snapshot_dir/telemetry/`` when a snapshot directory is set
        (in-memory otherwise); :meth:`close` flushes it.

    Example
    -------
    >>> from repro import ViewServer
    >>> from repro.workloads import triangle_database
    >>> server = ViewServer(triangle_database(nodes=30, edges=120, seed=1))
    >>> name = server.register(
    ...     "Delta^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)", tau=8,
    ... )
    >>> batch = server.answer_batch(name, [(3, 7), (1, 2), (3, 7)])
    >>> batch.unique_count, batch.shared_count
    (2, 1)
    """

    def __init__(
        self,
        db: Database,
        max_entries: Optional[int] = 8,
        max_cells: Optional[int] = None,
        snapshot_dir: Optional[Union[str, Path]] = None,
        cache_policy: str = "lru",
        build_workers: Optional[int] = None,
        builder: Optional[ParallelBuilder] = None,
        telemetry: Union[Telemetry, bool, None] = None,
    ):
        self.db = db
        store = None
        if snapshot_dir is not None:
            store = SnapshotStore(
                snapshot_dir, fingerprint=database_fingerprint(db)
            )
        self._owns_telemetry = telemetry is True
        if telemetry is True:
            telemetry = Telemetry(
                Path(snapshot_dir) / "telemetry"
                if snapshot_dir is not None
                else None
            )
        self._telemetry: Optional[Telemetry] = telemetry or None
        self._owns_builder = False
        if builder is None and build_workers is not None:
            builder = ParallelBuilder(build_workers)
            self._owns_builder = True
        self._builder = builder
        self._cache = RepresentationCache(
            max_entries=max_entries,
            max_cells=max_cells,
            policy=cache_policy,
            snapshot_store=store,
            metrics=(
                self._telemetry.registry
                if self._telemetry is not None
                else None
            ),
        )
        self._views: Dict[str, Registration] = {}
        self._dynamic: Dict[str, DynamicViewState] = {}
        self._dynamic_store = (
            DynamicSnapshotStore(Path(snapshot_dir) / "dynamic")
            if snapshot_dir is not None
            else None
        )
        # Replicas flip this off: they ingest shipped deltas but never
        # write snapshots or append to the delta event log.
        self._writes_dynamic_snapshots = True
        self._lock = named_lock("server")
        self._tau_overrides: Dict[str, float] = {}
        # Resolved metric handles per (view, mode): registry lookups
        # sort labels and verify buckets under a lock, which is too
        # much work to repeat on every cursor close in the hot path.
        # Races are benign — both writers cache identical handles.
        self._metric_handles: Dict[Tuple[str, str], Tuple] = {}
        self._build_counts: Dict[CacheKey, int] = {}
        # Monotonic lifetime total: per-key counters are pruned when their
        # generation dies, but stream build-deltas need a counter that
        # never runs backwards.
        self._total_builds = 0
        self._requests_served = 0
        self._generation = 0

    # ------------------------------------------------------------------
    # registration and τ selection
    # ------------------------------------------------------------------
    def register(
        self,
        view: Union[AdornedView, str],
        tau: Optional[float] = None,
        space_budget: Optional[float] = None,
        delay_budget: Optional[float] = None,
        name: Optional[str] = None,
        database: Optional[Database] = None,
    ) -> str:
        """Register an adorned view; returns the name requests refer to.

        Exactly one of ``tau``, ``space_budget`` and ``delay_budget`` may
        be given; with none, ``DEFAULT_TAU`` is used. Budgets are in the
        optimizer's units: space in cells (relative to the relation
        sizes), delay as the τ bound of Theorem 1.

        ``database`` overrides the server's database for this
        registration only — the sharded facade registers each view
        against a per-shard semijoin-reduced copy this way. The override
        must answer the view identically to the server's own database
        (the caller's contract); everything else on the server keeps
        using ``self.db``.
        """
        if isinstance(view, str):
            view = parse_view(view)
        base_db = database if database is not None else self.db
        knobs = [
            knob
            for knob in (tau, space_budget, delay_budget)
            if knob is not None
        ]
        if len(knobs) > 1:
            raise ParameterError(
                "give at most one of tau, space_budget, delay_budget"
            )
        name = name or view.name
        if view.is_natural_join():
            natural_view, eval_db = view, base_db
        else:
            normalized = normalize_view(view, base_db)
            natural_view, eval_db = normalized.view, normalized.database
        sizes = {
            label: len(eval_db[atom.relation])
            for label, atom in enumerate(natural_view.atoms)
        }
        weights: Optional[Mapping[int, float]] = None
        if space_budget is not None:
            optimum = min_delay_cover(natural_view, sizes, space_budget)
            policy, budget = "space-budget", float(space_budget)
            tau, weights = max(1.0, optimum.tau), dict(optimum.weights)
        elif delay_budget is not None:
            optimum = min_space_cover(natural_view, sizes, delay_budget)
            policy, budget = "delay-budget", float(delay_budget)
            tau, weights = max(1.0, optimum.tau), dict(optimum.weights)
        else:
            policy, budget = "fixed", None
            tau = float(tau) if tau is not None else DEFAULT_TAU
            if tau <= 0:
                raise ParameterError(f"tau must be positive, got {tau}")
        with self._lock:
            if name in self._views:
                raise SchemaError(f"view {name!r} is already registered")
            self._generation += 1
            self._views[name] = Registration(
                name=name,
                view=view,
                natural_view=natural_view,
                database=eval_db,
                tau=tau,
                policy=policy,
                budget=budget,
                weights=weights,
                sizes=sizes,
                generation=self._generation,
            )
        return name

    def unregister(self, name: str) -> bool:
        """Drop a registration and its cached structures; True if it existed."""
        with self._lock:
            registration = self._views.pop(name, None)
            dynamic_state = self._dynamic.pop(name, None)
        if dynamic_state is not None:
            # Dynamic entries live under per-version generations, not
            # the registration's: sweep every one of them by name.
            self._cache.invalidate_matching(
                lambda key: key[0] == name, drop_snapshot=False
            )
        if registration is None:
            return False
        # Scope the sweep to the popped generation: a concurrent
        # re-registration under the same name owns fresh keys that this
        # unregister must not evict. The sweep is atomic in the cache —
        # a racing build of this generation either publishes before it
        # (and is dropped here) or after (and is dropped by the orphan
        # check in :meth:`representation`).
        generation = registration.generation
        self._cache.invalidate_matching(
            lambda key: key[0] == name and key[2] == generation
        )
        with self._lock:
            # Dead generations can never be queried again; drop their
            # build counters so a churning server does not leak them.
            for key in list(self._build_counts):
                if key[0] == name and key[2] == registration.generation:
                    del self._build_counts[key]
            self._tau_overrides.pop(name, None)
        return True

    def registration(self, name: str) -> Registration:
        """The :class:`Registration` behind ``name``; SchemaError if unknown."""
        with self._lock:
            try:
                return self._views[name]
            except KeyError:
                raise SchemaError(f"unknown view {name!r}") from None

    def views(self) -> Tuple[str, ...]:
        """Names of every currently registered view."""
        with self._lock:
            return tuple(self._views.keys())

    # ------------------------------------------------------------------
    # the tuning surface (what AdaptiveTuner drives)
    # ------------------------------------------------------------------
    def serving_tau(self, name: str) -> float:
        """The τ requests with ``tau=None`` are currently served at.

        The registration's τ unless :meth:`retune` overrode it.
        """
        registration = self.registration(name)
        with self._lock:
            return self._tau_overrides.get(name, registration.tau)

    def retune(self, name: str, tau: float) -> float:
        """Override the serving τ of one view; returns the previous one.

        Subsequent requests that do not pin their own τ resolve to the
        override, lazily building the new structure on first use (or
        eagerly via :meth:`prefetch`). Structures built at the old τ
        stay cached — explicit ``tau=`` requests can still hit them —
        until eviction or :meth:`demote` moves them out. Registration
        is untouched: re-registering resets the override.
        """
        tau = float(tau)
        if tau <= 0:
            raise ParameterError(f"tau must be positive, got {tau}")
        previous = self.serving_tau(name)
        with self._lock:
            if name not in self._views:
                raise SchemaError(f"unknown view {name!r}")
            if name in self._dynamic:
                raise ParameterError(
                    f"dynamic view {name!r} serves at its registration "
                    "tau; re-register to change it"
                )
            self._tau_overrides[name] = tau
        return previous

    def prefetch(self, name: str, tau: Optional[float] = None) -> None:
        """Build (or warm-load) the serving structure ahead of demand."""
        self.representation(name, tau)

    def resident(self, name: str, tau: Optional[float] = None) -> bool:
        """Whether ``(name, serving τ)`` is in the memory cache right now."""
        registration = self.registration(name)
        return self._key(registration, tau) in self._cache

    def demote(self, name: str) -> int:
        """Drop one view's resident structures, keeping their snapshots.

        The tuner's cold path: unlike :meth:`invalidate` the disk tier
        is preserved, so a later request (or :meth:`prefetch`) warm-loads
        instead of rebuilding. Returns the entries dropped.
        """
        return self._cache.invalidate_matching(
            lambda key: key[0] == name, drop_snapshot=False
        )

    # ------------------------------------------------------------------
    # dynamic serving (deltas as a first-class primitive)
    # ------------------------------------------------------------------
    def register_dynamic(
        self,
        view: Union[AdornedView, str],
        tau: Optional[float] = None,
        name: Optional[str] = None,
        rebuild_fraction: float = 0.1,
    ) -> str:
        """Register a view for serving under updates; returns its name.

        The view is served through a
        :class:`~repro.core.dynamic.DynamicRepresentation`: deltas
        applied via :meth:`apply_deltas` buffer into it, every effective
        delta freezes a new immutable serving *version* for new
        requests, and cursors already open drain the version they
        pinned (see :mod:`repro.engine.dynamic_serving`). With a
        ``snapshot_dir``, registration warm-starts from the dynamic
        snapshot tier: the stored **per-relation** origin fingerprints
        are compared against this database, so churn in one relation
        refuses only the views that reference it, and the delta event
        log replays whatever was applied after the last snapshot.

        The view must be a natural join (deltas address base relations
        by name, which normalization would rewrite), and it serves at
        exactly the registration τ — per-request ``tau=`` pins and
        :meth:`retune` are rejected for dynamic views.
        """
        if isinstance(view, str):
            view = parse_view(view)
        if not view.is_natural_join():
            raise ParameterError(
                "dynamic serving requires a natural-join view: deltas "
                "address base relations by name, which normalization "
                "rewrites"
            )
        name = self.register(view, tau=tau, name=name)
        try:
            registration = self.registration(name)
            fingerprints = relation_fingerprints(registration.database)
            referenced = sorted(
                {atom.relation for atom in registration.natural_view.atoms}
            )
            origin = {
                relation: fingerprints[relation] for relation in referenced
            }
            dynamic, version, warm = self._dynamic_source(
                registration, rebuild_fraction, origin
            )
            with self._lock:
                self._generation += 1
                generation = self._generation
            state = DynamicViewState(
                name=name,
                view=registration.natural_view,
                tau=registration.tau,
                dynamic=dynamic,
                version=version,
                generation=generation,
                label=self._snapshot_label(registration, registration.tau),
                origin_relations=origin,
                rebuild_fraction=rebuild_fraction,
            )
            with self._lock:
                self._dynamic[name] = state
            _, current_generation, serving = state.current()
            self._cache.get_or_build(
                (name, state.tau, current_generation), lambda: serving, durable=False
            )
            store = self._dynamic_store
            if (
                not warm
                and store is not None
                and self._writes_dynamic_snapshots
            ):
                state.save_to(store)
                store.truncate_log(state.label)
            self._set_dynamic_gauges(state)
            return name
        except Exception:
            self.unregister(name)
            raise

    def _dynamic_source(
        self,
        registration: Registration,
        rebuild_fraction: float,
        origin: Mapping[str, str],
    ) -> Tuple[DynamicRepresentation, int, bool]:
        """(representation, version, warm?) for one dynamic registration.

        Warm start is per relation: the stored meta's fingerprints are
        compared against the current database relation by relation, and
        only a view whose *referenced* relations all match loads from
        disk (then replays the delta log's suffix). Anything else —
        missing meta, changed relation, unreadable snapshot — falls
        through to :meth:`_build_dynamic`, which replicas override to
        refuse.
        """
        store = self._dynamic_store
        if store is not None:
            label = self._snapshot_label(registration, registration.tau)
            meta = store.load_meta(label)
            if meta is not None:
                stored = meta["relations"]
                changed = sorted(
                    relation
                    for relation in origin
                    if stored.get(relation) != origin[relation]
                )
                if not changed:
                    dynamic = None
                    try:
                        dynamic = store.load(label)
                    except SnapshotError:
                        # Unusable snapshot bytes: fall through to the
                        # build path (replicas refuse there instead).
                        dynamic = None
                    if dynamic is not None:
                        version = int(meta["version"])
                        for record in store.read_log(label):
                            if record.version <= version:
                                continue
                            dynamic.apply_deltas(
                                record.relation,
                                record.inserts,
                                record.deletes,
                            )
                            version = record.version
                        return dynamic, version, True
        return self._build_dynamic(registration, rebuild_fraction), 0, False

    def _build_dynamic(
        self, registration: Registration, rebuild_fraction: float
    ) -> DynamicRepresentation:
        """Build a dynamic representation from scratch (the cold path)."""
        dynamic = DynamicRepresentation(
            registration.natural_view,
            registration.database,
            tau=registration.tau,
            rebuild_fraction=rebuild_fraction,
            weights=(
                dict(registration.weights)
                if registration.weights is not None
                else None
            ),
        )
        with self._lock:
            self._total_builds += 1
        if self._telemetry is not None:
            self._telemetry.histogram(
                "layout_compile_seconds",
                buckets=LATENCY_BUCKETS,
                view=registration.name,
            ).observe(dynamic.layout_compile_seconds)
        return dynamic

    def apply_deltas(
        self,
        relation: str,
        inserts: Iterable[Sequence] = (),
        deletes: Iterable[Sequence] = (),
        views: Optional[Sequence[str]] = None,
    ) -> Dict[str, int]:
        """Apply one base-relation delta to the dynamic views it feeds.

        Routes through every dynamic view referencing ``relation`` (or
        exactly the named ``views``); returns ``{view: effective
        changes}``. An *effective* change survives buffer annihilation —
        inserting a present row or deleting an absent one counts zero,
        and a view whose count is zero keeps its serving version, cache
        entry and event log untouched (the empty-delta no-op contract).
        Effective deltas create a fresh serving version: new requests
        see the post-delta view immediately, open cursors drain the
        version they pinned, and the amortized rebuild boundary
        (``rebuild_fraction``) rewrites the dynamic snapshot.

        Raises :class:`~repro.exceptions.ParameterError` when a named
        view is not dynamically registered, or when no dynamic view
        references ``relation`` — a silently dropped delta would read
        as applied.
        """
        inserts = [tuple(row) for row in inserts]
        deletes = [tuple(row) for row in deletes]
        if self._dynamic_store is not None and self._writes_dynamic_snapshots:
            # Fail before anything applies: a row the event log cannot
            # encode would otherwise tear serving state (applied) from
            # durable state (never logged).
            try:
                json.dumps([inserts, deletes])
            except (TypeError, ValueError) as error:
                raise SnapshotError(
                    "delta rows must be JSON-representable to be "
                    f"durable: {error}"
                ) from error
        with self._lock:
            dynamic = dict(self._dynamic)
        if views is not None:
            missing = [name for name in views if name not in dynamic]
            if missing:
                raise ParameterError(
                    f"view(s) {missing!r} are not registered for dynamic "
                    "serving — register_dynamic first"
                )
            targets = [dynamic[name] for name in views]
        else:
            targets = [
                state
                for state in dynamic.values()
                if relation in state.relations
            ]
            if not targets:
                raise ParameterError(
                    f"no dynamic view references relation {relation!r} — "
                    "register_dynamic a view over it first"
                )
        return {
            state.name: self._ingest_delta(state, relation, inserts, deletes)
            for state in targets
        }

    def _ingest_delta(
        self,
        state: DynamicViewState,
        relation: str,
        inserts: Sequence[Tuple],
        deletes: Sequence[Tuple],
        forced_version: Optional[int] = None,
    ) -> int:
        """Apply one delta to one view's state and publish the version."""

        def next_generation() -> int:
            with self._lock:
                self._generation += 1
                return self._generation

        outcome = state.apply_delta(
            relation, inserts, deletes, next_generation, forced_version
        )
        if outcome.record is None:
            return outcome.applied
        serving = outcome.serving
        self._cache.get_or_build(
            (state.name, state.tau, outcome.generation), lambda: serving, durable=False
        )
        for generation in outcome.retired_generations:
            self._cache.invalidate_matching(
                lambda key, generation=generation: (
                    key[0] == state.name and key[2] == generation
                ),
                drop_snapshot=False,
            )
        store = self._dynamic_store
        durable = (
            forced_version is None
            and store is not None
            and self._writes_dynamic_snapshots
        )
        if durable:
            store.append_log(state.label, outcome.record)
        if outcome.rebuilt:
            with self._lock:
                self._total_builds += 1
            if durable:
                state.save_to(store)
            if self._telemetry is not None:
                self._telemetry.counter(
                    "rebuild_triggered_total", view=state.name
                ).inc()
        if self._telemetry is not None and outcome.applied:
            self._telemetry.counter(
                "deltas_applied_total", view=state.name, relation=relation
            ).inc(outcome.applied)
        self._set_dynamic_gauges(state)
        return outcome.applied

    def apply_delta_records(
        self, records: Iterable[DeltaRecord]
    ) -> Dict[str, int]:
        """Ingest shipped delta records, strictly in version order.

        The replica half of :func:`~repro.engine.dynamic_serving.ship_deltas`:
        already-applied versions are skipped idempotently, a version gap
        raises :class:`~repro.exceptions.SnapshotError` (re-hydrate
        instead), and nothing here writes snapshots or log entries.
        Returns effective change counts per view.
        """
        applied: Dict[str, int] = {}
        ordered = sorted(records, key=lambda r: (r.view, r.version))
        for record in ordered:
            state = self._dynamic_state(record.view)
            count = self._ingest_delta(
                state,
                record.relation,
                record.inserts,
                record.deletes,
                forced_version=record.version,
            )
            applied[record.view] = applied.get(record.view, 0) + count
        return applied

    def _dynamic_state(self, name: str) -> DynamicViewState:
        """The dynamic serving state behind ``name`` (typed if absent)."""
        with self._lock:
            state = self._dynamic.get(name)
        if state is None:
            raise ParameterError(
                f"view {name!r} is not registered for dynamic serving — "
                "register_dynamic first"
            )
        return state

    def dynamic_views(self) -> Tuple[str, ...]:
        """Names of every view registered for dynamic serving."""
        with self._lock:
            return tuple(self._dynamic.keys())

    def delta_version(self, name: str) -> int:
        """The serving version of one dynamic view (0 = as registered)."""
        return self._dynamic_state(name).current_version()

    def delta_records_since(
        self, name: str, version: int
    ) -> Tuple[DeltaRecord, ...]:
        """This process's delta records of ``name`` newer than ``version``."""
        return self._dynamic_state(name).records_since(version)

    def save_dynamic_snapshot(self, name: str) -> int:
        """Write ``name``'s dynamic snapshot and meta now; returns version."""
        state = self._dynamic_state(name)
        if self._dynamic_store is None or not self._writes_dynamic_snapshots:
            raise ParameterError(
                "dynamic snapshots need a snapshot_dir on a primary "
                "server (replicas never write them)"
            )
        return state.save_to(self._dynamic_store)

    def rehydrate_dynamic(self, names: Optional[Iterable[str]] = None) -> int:
        """Reload dynamic views from snapshot + delta log; returns count.

        The churn-storm fallback of delta shipping: instead of replaying
        a long record stream, swap in a representation re-hydrated from
        the (freshly written) snapshot tier. Pinned versions keep
        draining; new requests serve the re-hydrated state.
        """
        targets = tuple(names) if names is not None else self.dynamic_views()
        for name in targets:
            state = self._dynamic_state(name)
            registration = self.registration(name)
            dynamic, version, warm = self._dynamic_source(
                registration, state.rebuild_fraction, state.origin_relations
            )
            with self._lock:
                self._generation += 1
                generation = self._generation
            for retired in state.replace(dynamic, version, generation):
                self._cache.invalidate_matching(
                    lambda key, retired=retired: (
                        key[0] == name and key[2] == retired
                    ),
                    drop_snapshot=False,
                )
            _, current_generation, serving = state.current()
            self._cache.get_or_build(
                (name, state.tau, current_generation), lambda: serving, durable=False
            )
            self._set_dynamic_gauges(state)
        return len(targets)

    def _open_dynamic(
        self, state: DynamicViewState, request: AccessRequest, started: float
    ) -> AnswerCursor:
        """Open a cursor pinned to the view's current serving version."""
        if request.tau is not None and float(request.tau) != state.tau:
            raise ParameterError(
                f"dynamic view {state.name!r} serves at its registration "
                f"tau={state.tau:g}; per-request tau pins are not "
                "supported under deltas"
            )
        version, generation, serving = state.pin()
        try:
            representation = self._cache.get_or_build(
                (state.name, state.tau, generation), lambda: serving, durable=False
            )
            with self._lock:
                self._requests_served += 1
            cursor = open_cursor(representation, request)
        except Exception:
            self._release_dynamic(state, version)
            raise
        cursor.add_close_hook(
            lambda: self._release_dynamic(state, version)
        )
        if self._telemetry is not None:
            path = (
                "columnar"
                if not request.measure and serving.kernel_ready
                else "fallback"
            )
            self._kernel_counter(request.view, path).inc()
            self._instrument_cursor(cursor, request, started, mode="open")
            self._set_dynamic_gauges(state)
        return cursor

    def _release_dynamic(self, state: DynamicViewState, version: int) -> None:
        """Drop one cursor pin; retire the version's entry on drain."""
        retired = state.release(version)
        if retired is not None:
            self._cache.invalidate_matching(
                lambda key: key[0] == state.name and key[2] == retired,
                drop_snapshot=False,
            )
        self._set_dynamic_gauges(state)

    def _set_dynamic_gauges(self, state: DynamicViewState) -> None:
        """Refresh the cursor-pin and live-version gauges of one view."""
        if self._telemetry is None:
            return
        key = (state.name, "dynamic")
        handles = self._metric_handles.get(key)
        if handles is None:
            handles = self._metric_handles[key] = (
                self._telemetry.gauge(
                    "dynamic_cursor_pins", view=state.name
                ),
                self._telemetry.gauge(
                    "dynamic_live_versions", view=state.name
                ),
            )
        pins, versions = handles
        pins.set(state.pin_count())
        versions.set(len(state.live_versions()))

    # ------------------------------------------------------------------
    # cached build
    # ------------------------------------------------------------------
    def _key(self, registration: Registration, tau: Optional[float]) -> CacheKey:
        # The registration's exact τ must round-trip through the key: _build
        # reuses the optimizer's cover only when the key τ matches it. The
        # generation keeps re-registrations under a reused name apart.
        # A tau-less request resolves through the retune override, so the
        # AdaptiveTuner's decisions take effect without re-registration.
        if tau is None:
            with self._lock:
                resolved = self._tau_overrides.get(
                    registration.name, registration.tau
                )
        else:
            resolved = float(tau)
        return (registration.name, resolved, registration.generation)

    def _snapshot_label(
        self, registration: Registration, tau: float
    ) -> str:
        """The disk-tier label of one ``(registration, τ)`` build.

        Deliberately excludes the generation (which restarts from 1 in a
        fresh process — the whole point is surviving restarts) and
        instead pins what actually determines the built structure: the
        view's structural digest, τ, and the τ-selection policy/budget.
        The database itself is covered by the store's fingerprint.
        """
        digest = hashlib.sha256(
            repr(view_state(registration.natural_view)).encode("utf-8")
        ).hexdigest()[:12]
        return (
            f"{registration.name}|{digest}|tau={tau!r}"
            f"|{registration.policy}|{registration.budget!r}"
        )

    def representation(
        self, name: str, tau: Optional[float] = None
    ) -> CompressedRepresentation:
        """The cached structure for ``(name, τ)``, building it on a miss.

        At most one thread ever builds a given key: late arrivals wait on
        the builder's event and then read the freshly cached entry.

        A dynamic view resolves to its *current* serving version (no
        pin — use :meth:`open` for drain-safe enumeration).
        """
        with self._lock:
            state = self._dynamic.get(name)
        if state is not None:
            if tau is not None and float(tau) != state.tau:
                raise ParameterError(
                    f"dynamic view {name!r} serves at its registration "
                    f"tau={state.tau:g}; per-request tau pins are not "
                    "supported under deltas"
                )
            _, generation, serving = state.current()
            return self._cache.get_or_build(
                (name, state.tau, generation), lambda: serving, durable=False
            )
        registration = self.registration(name)
        key = self._key(registration, tau)

        def build() -> CompressedRepresentation:
            built = self._build(registration, key[1])
            with self._lock:
                self._total_builds += 1
                # Skip the per-key counter for a generation unregistered
                # mid-build, or the sweep in unregister() races back in.
                if self._views.get(name) is registration:
                    self._build_counts[key] = (
                        self._build_counts.get(key, 0) + 1
                    )
            return built

        label = (
            self._snapshot_label(registration, key[1])
            if self._cache.snapshot_store is not None
            else None
        )
        built = self._cache.get_or_build(key, build, snapshot_label=label)
        with self._lock:
            # Identity, not name: a concurrent unregister + re-register
            # under the same name is a different generation, and this
            # structure was built from the old one.
            registered = self._views.get(name) is registration
        if not registered:
            # An unregister raced the build: its invalidate ran before the
            # publish, so drop the orphan here (whichever of the two
            # cleanups runs last sees the entry). The caller still gets
            # the structure — its request predates the unregistration.
            self._cache.invalidate(key)
        return built

    def _build(
        self, registration: Registration, tau: float
    ) -> CompressedRepresentation:
        # The optimizer's cover is tied to the τ it was solved for; a
        # caller-supplied τ falls back to the default max-slack cover.
        weights = (
            registration.weights if tau == registration.tau else None
        )
        if self._builder is not None:
            built = self._builder.build(
                registration.natural_view,
                registration.database,
                tau=tau,
                weights=weights,
            )
        else:
            built = CompressedRepresentation(
                registration.natural_view,
                registration.database,
                tau=tau,
                weights=weights,
            )
        if self._telemetry is not None:
            seconds = getattr(built, "layout_compile_seconds", None)
            if seconds is not None:
                self._telemetry.histogram(
                    "layout_compile_seconds",
                    buckets=LATENCY_BUCKETS,
                    view=registration.name,
                ).observe(seconds)
        return built

    def build_count(self, name: str, tau: Optional[float] = None) -> int:
        """How many times ``(name, τ)`` was actually built (cache misses)."""
        registration = self.registration(name)
        key = self._key(registration, tau)
        with self._lock:
            return self._build_counts.get(key, 0)

    def total_builds(self) -> int:
        """Builds over the server's lifetime (monotonic — unregistering a
        view prunes its per-key counters but never this total)."""
        with self._lock:
            return self._total_builds

    def invalidate(self, name: str) -> int:
        """Drop all cached structures of one view; returns entries dropped.

        The key match and removal are one atomic cache operation
        (:meth:`~repro.engine.cache.RepresentationCache.invalidate_matching`),
        so builds or evictions racing this call cannot make the sweep
        iterate a stale key snapshot.
        """
        return self._cache.invalidate_matching(lambda key: key[0] == name)

    # ------------------------------------------------------------------
    # serving (the cursor primitive and its materializing wrappers)
    # ------------------------------------------------------------------
    def open(
        self,
        request: Union[AccessRequest, str],
        access: Optional[Sequence] = None,
        limit: Optional[int] = None,
        start_after: Optional[Sequence] = None,
        tau: Optional[float] = None,
        measure: bool = False,
    ) -> AnswerCursor:
        """Open a streaming cursor over one access request — the primitive.

        Accepts a ready :class:`~repro.engine.api.AccessRequest` or the
        ``open(name, access, ...)`` shorthand. Tuples stream lazily in
        lexicographic head order; ``limit=k`` enumerates O(k) tuples,
        ``start_after=token`` re-enters mid-traversal via the
        structure's one-delay-unit seek (see
        :meth:`~repro.core.structure.CompressedRepresentation.enumerate_from`),
        and ``measure=True`` threads a
        :class:`~repro.joins.generic_join.JoinCounter` so
        :meth:`~repro.engine.api.AnswerCursor.stats` reports logical
        delay. ``answer``/``answer_batch``/``serve_stream`` are thin
        materializing wrappers over this.
        """
        started = time.perf_counter()
        request = as_request(
            request,
            access,
            limit=limit,
            start_after=start_after,
            tau=tau,
            measure=measure,
        )
        with self._lock:
            state = self._dynamic.get(request.view)
        if state is not None:
            return self._open_dynamic(state, request, started)
        representation = self.representation(request.view, request.tau)
        with self._lock:
            self._requests_served += 1
        cursor = open_cursor(representation, request)
        if self._telemetry is not None:
            path = (
                "columnar"
                if not request.measure
                and getattr(representation, "kernel_ready", False)
                else "fallback"
            )
            self._kernel_counter(request.view, path).inc()
            self._instrument_cursor(cursor, request, started, mode="open")
        return cursor

    def _kernel_counter(self, view: str, path: str):
        """Resolved ``kernel_enumerations_total`` handle for (view, path)."""
        key = (view, f"kernel:{path}")
        handles = self._metric_handles.get(key)
        if handles is None:
            handles = self._metric_handles[key] = (
                self._telemetry.counter(
                    "kernel_enumerations_total", view=view, path=path
                ),
            )
        return handles[0]

    def _cursor_metrics(self, view: str, mode: str) -> Tuple:
        """Resolved (requests, answers, latency, gap) metric handles."""
        key = (view, mode)
        handles = self._metric_handles.get(key)
        if handles is None:
            telemetry = self._telemetry
            handles = self._metric_handles[key] = (
                telemetry.counter("requests_total", view=view, mode=mode),
                telemetry.counter("answers_total", view=view),
                telemetry.histogram(
                    "serve_seconds", buckets=LATENCY_BUCKETS, view=view
                ),
                telemetry.histogram(
                    "delay_step_gap", buckets=GAP_BUCKETS, view=view
                ),
            )
        return handles

    def _instrument_cursor(
        self,
        cursor: AnswerCursor,
        request: AccessRequest,
        started: float,
        mode: str,
    ) -> None:
        # Counts at open; latency/gap observations ride the close hook,
        # which fires exactly once on close or exhaustion — after the
        # cursor's stats are final.
        requests, answers, latency, gap = self._cursor_metrics(
            request.view, mode
        )
        requests.inc()

        def finalize() -> None:
            stats = cursor.stats()
            answers.inc(stats.outputs)
            latency.observe(time.perf_counter() - started)
            if request.measure:
                gap.observe(stats.step_max_gap)

        cursor.add_close_hook(finalize)

    def _instrument_scan(
        self,
        view: str,
        scan: SharedScan,
        scan_cursors: Sequence[AnswerCursor],
        requests: Sequence[AccessRequest],
        started: float,
    ) -> None:
        # Lane/state counts are known at construction; subtrie sharing
        # and pruning accrue while the group drains, so they are read
        # once, when the group's last cursor closes.
        telemetry = self._telemetry
        initial = scan.stats()
        telemetry.counter("shared_scan_lanes_total", view=view).inc(
            initial.requests
        )
        telemetry.counter("shared_scan_states_total", view=view).inc(
            initial.states
        )
        remaining = [len(scan_cursors)]
        scan_lock = named_lock("server.shared_scan")

        def finalize_scan() -> None:
            with scan_lock:
                remaining[0] -= 1
                if remaining[0]:
                    return
            final = scan.stats()
            telemetry.counter(
                "shared_scan_subtrie_hits_total", view=view
            ).inc(final.subtrie_hits)
            telemetry.counter(
                "shared_scan_subtrie_misses_total", view=view
            ).inc(final.subtrie_misses)
            telemetry.counter(
                "shared_scan_pruned_total", view=view
            ).inc(final.pruned_states)

        for request, cursor in zip(requests, scan_cursors):
            self._instrument_cursor(cursor, request, started, mode="batch")
            cursor.add_close_hook(finalize_scan)

    def open_batch(
        self, requests: Iterable[Union[AccessRequest, str]]
    ) -> List[AnswerCursor]:
        """Open cursors for a whole request batch — the batch primitive.

        Requests are grouped by ``(view, τ)`` and each group rides ONE
        shared scan (:class:`~repro.engine.shared_scan.SharedScan`): the
        group's distinct ``(access, resume point)`` pairs descend the
        tree together in a single merged traversal, per-atom trie
        descents are shared across prefix-sharing accesses, and
        duplicate requests share a traversal lane outright. The returned
        cursors align with the submitted requests and behave exactly
        like :meth:`open`'s — lazy, limit/resume/measure-aware — except
        that pulling one may buffer tuples for its group peers (and a
        group shares fate: an error raised mid-scan surfaces on
        whichever cursor is being pulled). Consume a batch's cursors
        from a single thread, as with any generator.
        """
        started = time.perf_counter()
        batch = [as_request(request) for request in requests]
        cursors: List[Optional[AnswerCursor]] = [None] * len(batch)
        groups: Dict[Tuple[str, Optional[float]], List[int]] = {}
        for index, request in enumerate(batch):
            groups.setdefault((request.view, request.tau), []).append(index)
        for (view, tau), indexes in groups.items():
            with self._lock:
                state = self._dynamic.get(view)
            if state is not None:
                if tau is not None and float(tau) != state.tau:
                    raise ParameterError(
                        f"dynamic view {view!r} serves at its "
                        f"registration tau={state.tau:g}; per-request "
                        "tau pins are not supported under deltas"
                    )
                version, generation, serving = state.pin()
                for _ in range(len(indexes) - 1):
                    state.repin(version)
                representation = self._cache.get_or_build(
                    (view, state.tau, generation), lambda: serving, durable=False
                )
            else:
                representation = self.representation(view, tau)
            group = [batch[index] for index in indexes]
            try:
                scan = SharedScan(representation, group)
                scan_cursors = scan.cursors()
            except Exception:
                if state is not None:
                    for _ in indexes:
                        self._release_dynamic(state, version)
                raise
            for index, cursor in zip(indexes, scan_cursors):
                cursors[index] = cursor
            if state is not None:
                # One pin per group cursor; each close hook drops its
                # own, and the last release retires a drained version.
                for cursor in scan_cursors:
                    cursor.add_close_hook(
                        lambda state=state, version=version: (
                            self._release_dynamic(state, version)
                        )
                    )
            if self._telemetry is not None:
                self._kernel_counter(view, scan.kernel_path).inc(
                    len(group)
                )
                self._instrument_scan(
                    view, scan, scan_cursors, group, started
                )
        with self._lock:
            self._requests_served += len(batch)
        return cursors

    def answer(self, name: str, access: Sequence) -> List[Tuple]:
        """Answer one access request fully (materializing wrapper)."""
        with self.open(name, access) as cursor:
            return cursor.fetchall()

    def answer_batch(
        self,
        name: str,
        accesses: Iterable[Sequence],
        tau: Optional[float] = None,
        measure: bool = True,
    ) -> BatchResult:
        """Serve a batch of access requests with one shared traversal.

        A thin materializing wrapper over :meth:`open_batch`: the batch
        is deduplicated and its distinct accesses (sorted — the tree is
        laid out lexicographically, so nearby bound values touch nearby
        dictionary entries) ride one shared scan; every duplicate
        request shares the answer list computed by its representative.
        With ``measure=True`` per-access delay accounting matches
        :func:`~repro.measure.delay.measure_enumeration` — closing gap
        included, because the cursors are drained to exhaustion here
        (see :class:`BatchResult`). The structure is resolved once per
        batch, so cache accounting is unchanged.
        """
        batch = tuple(tuple(access) for access in accesses)
        unique = sorted(set(batch))
        cursors = self.open_batch(
            AccessRequest(view=name, access=access, tau=tau, measure=measure)
            for access in unique
        )
        answers_by_access: Dict[Tuple, List[Tuple]] = {}
        stats: Dict[Tuple, DelayStats] = {}
        for access, cursor in zip(unique, cursors):
            answers_by_access[access] = cursor.fetchall()
            if measure:
                stats[access] = cursor.stats()
        with self._lock:
            # open_batch counted the distinct requests; the duplicates
            # it deduplicated away were still served.
            self._requests_served += len(batch) - len(unique)
        return BatchResult(
            accesses=batch,
            answers=tuple(answers_by_access[access] for access in batch),
            request_stats=stats,
            unique_count=len(unique),
        )

    def serve_stream(
        self,
        name: str,
        accesses: Iterable[Sequence],
        batch_size: int = 32,
        tau: Optional[float] = None,
        measure: bool = True,
    ) -> ServingReport:
        """Drain a request stream in batches and aggregate the measurements."""
        return drain_stream(
            self, name, accesses, batch_size=batch_size, tau=tau, measure=measure
        )

    # ------------------------------------------------------------------
    # life cycle and introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release owned resources: the build pool and owned telemetry.

        Serving keeps working afterwards (builds fall back in-process);
        shared builders and shared telemetry are the owner's to close.
        An owned telemetry instance (``telemetry=True``) gets its final
        flush here, so its persisted history covers the whole session.
        """
        if self._owns_builder and self._builder is not None:
            self._builder.close()
        if self._owns_telemetry and self._telemetry is not None:
            self._telemetry.close()

    @property
    def builder(self) -> Optional[ParallelBuilder]:
        """The process-parallel build pool, if any."""
        return self._builder

    @property
    def telemetry(self) -> Optional[Telemetry]:
        """The telemetry instance instrumenting this server, if any."""
        return self._telemetry

    @property
    def snapshot_store(self) -> Optional[SnapshotStore]:
        """The warm-start snapshot tier, if a ``snapshot_dir`` was given."""
        return self._cache.snapshot_store

    @property
    def cache(self) -> RepresentationCache:
        """The representation cache behind this server."""
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        """A point-in-time copy of the cache's lifetime counters."""
        return self._cache.stats_snapshot()

    @property
    def requests_served(self) -> int:
        """Requests served over this server's lifetime (cursor opens)."""
        with self._lock:
            return self._requests_served
