"""Routing tables: versioned rendezvous placement of the bound-value space.

Modulo placement (``stable_hash(v) % n``) freezes the topology at
construction: changing the shard count remaps nearly every key, so a hot
shard has nowhere to go without a full repartition. This module replaces
it with *hierarchical rendezvous hashing* (highest random weight):

* Every shard is a named node. A key ranks all candidate nodes by a
  restart-stable per-``(node, key)`` weight and lands on the maximum —
  no modulus anywhere, so membership changes only move the keys whose
  winning node changed.
* A :class:`RoutingTable` arranges the nodes as a shallow tree: the
  initial shards are the roots, and splitting a shard replaces that
  *leaf* with two children. Resolution descends by rendezvous at every
  level, so a split remaps **only the split shard's keys** (they
  re-rendezvous between its two children); every other shard's key set
  is untouched by construction, and at most ``1/n`` of all keys move.
* Tables are **versioned** (each split bumps the version) and
  **serializable** (:meth:`to_state` / :meth:`from_state` round-trip
  plain data), and placement is **restart-stable**: weights derive from
  :func:`stable_hash` and CRC32 of node names, never from process-salted
  ``hash``.

:class:`~repro.engine.sharding.ShardedViewServer` keeps one live table
per topology version; in-flight cursors pin the version they opened
under while new requests take the newest table (the drain protocol).
"""

from __future__ import annotations

import json
import zlib
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ParameterError


def stable_hash(value: object) -> int:
    """An equality-consistent, restart-stable hash of one bound value.

    Routing must agree with ``==`` (equal values answer identically on an
    unsharded server, so they must pin the same shard) and ideally not
    move across process restarts. Python's builtin ``hash`` is
    equality-consistent by contract but salted per process for strings,
    while textual hashing is restart-stable but blind to equality
    (``1`` vs ``1.0``, or ``(1,)`` vs ``(1.0,)``). So: strings and bytes
    hash via CRC32 of their contents, tuples via a CRC fold of their
    elements' ``stable_hash`` (restart-stable all the way down), and
    everything else — numbers, user types, exotic containers — via the
    builtin ``hash``. The fallback keeps equality-consistency always;
    restart stability there is only as strong as the value's own
    ``__hash__`` (exact for numbers, salted for e.g. frozensets of
    strings).
    """
    if value is None:
        # hash(None) derives from id() before Python 3.13 — a fresh
        # process would route NULL keys to a different shard.
        return zlib.crc32(b"None")
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return zlib.crc32(bytes(value))
    if isinstance(value, tuple):
        # Fold element hashes so equal tuples of equal (possibly
        # mixed-type) elements agree, e.g. (1,) and (1.0,).
        acc = len(value)
        for element in value:
            acc = zlib.crc32(stable_hash(element).to_bytes(4, "big"), acc)
        return acc
    return hash(value) & 0xFFFFFFFF


def rendezvous_choice(candidates: Sequence[str], key_hash: int) -> str:
    """The highest-random-weight winner among ``candidates`` for one key.

    The weight of ``(node, key)`` is the CRC32 of the node's name seeded
    with the key's hash — restart-stable, uniform enough per node, and
    independent across nodes, which is all rendezvous hashing needs. The
    node name breaks exact weight ties deterministically.
    """
    if not candidates:
        raise ParameterError("rendezvous over an empty candidate set")
    seed = zlib.crc32((key_hash & 0xFFFFFFFF).to_bytes(4, "big"))
    return max(
        candidates,
        key=lambda node: (zlib.crc32(node.encode("utf-8"), seed), node),
    )


class RoutingTable:
    """A versioned, serializable rendezvous placement of keys on shards.

    The table is a two-tier tree: ``roots`` are the initial shard names,
    and ``splits`` maps a split shard to its (recursively splittable)
    children. A key resolves by rendezvous among the roots, then among
    the children of every split node it lands on; the leaves are the
    live shards (:attr:`shard_ids`, in deterministic depth-first order).

    Tables are immutable: :meth:`split` returns a *new* table with the
    version bumped, which is what lets a server keep several versions
    live at once while in-flight cursors drain.
    """

    def __init__(
        self,
        roots: Sequence[str],
        splits: Optional[Mapping[str, Sequence[str]]] = None,
        version: int = 1,
        hash_fn=stable_hash,
    ):
        self.roots: Tuple[str, ...] = tuple(str(node) for node in roots)
        if not self.roots:
            raise ParameterError("a routing table needs at least one shard")
        if len(set(self.roots)) != len(self.roots):
            raise ParameterError(f"duplicate root shards in {self.roots!r}")
        if version < 1:
            raise ParameterError(f"version must be >= 1, got {version}")
        self.version = int(version)
        self.hash_fn = hash_fn
        self.splits: Dict[str, Tuple[str, ...]] = {}
        seen = set(self.roots)
        for parent, children in dict(splits or {}).items():
            children = tuple(str(child) for child in children)
            if len(children) < 2:
                raise ParameterError(
                    f"split of {parent!r} needs >= 2 children, "
                    f"got {children!r}"
                )
            for child in children:
                if child in seen:
                    raise ParameterError(
                        f"shard name {child!r} appears twice in the table"
                    )
                seen.add(child)
            self.splits[str(parent)] = children
        for parent in self.splits:
            if parent not in seen:
                raise ParameterError(
                    f"split parent {parent!r} is not a node of the table"
                )
        self._leaves = tuple(self._walk_leaves())
        self._index = {leaf: i for i, leaf in enumerate(self._leaves)}

    @classmethod
    def fresh(
        cls, n_shards: int, hash_fn=stable_hash
    ) -> "RoutingTable":
        """Version-1 table of ``n_shards`` root shards named ``"0"…"n-1"``."""
        if n_shards < 1:
            raise ParameterError(f"n_shards must be >= 1, got {n_shards}")
        return cls([str(i) for i in range(n_shards)], hash_fn=hash_fn)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def _walk_leaves(self):
        stack = list(reversed(self.roots))
        while stack:
            node = stack.pop()
            children = self.splits.get(node)
            if children is None:
                yield node
            else:
                stack.extend(reversed(children))

    @property
    def shard_ids(self) -> Tuple[str, ...]:
        """The live shards (leaves), in deterministic depth-first order."""
        return self._leaves

    @property
    def n_shards(self) -> int:
        """How many live shards the table currently routes to."""
        return len(self._leaves)

    def is_leaf(self, shard_id: str) -> bool:
        """Whether ``shard_id`` is a live shard (not split away)."""
        return str(shard_id) in self._index

    def children(self, shard_id: str) -> Tuple[str, ...]:
        """The split children of one node (empty tuple for leaves)."""
        return self.splits.get(str(shard_id), ())

    def index_of(self, shard_id: str) -> int:
        """Position of one live shard within :attr:`shard_ids`."""
        try:
            return self._index[str(shard_id)]
        except KeyError:
            raise ParameterError(
                f"shard {shard_id!r} is not a live shard of routing-table "
                f"version {self.version}"
            ) from None

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def shard_for(self, value: object) -> str:
        """The live shard owning one bound value (hierarchical rendezvous)."""
        key_hash = self.hash_fn(value)
        node = rendezvous_choice(self.roots, key_hash)
        while node in self.splits:
            node = rendezvous_choice(self.splits[node], key_hash)
        return node

    def index_for(self, value: object) -> int:
        """The :attr:`shard_ids` index owning one bound value."""
        return self._index[self.shard_for(value)]

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------
    def split(self, shard_id: str) -> "RoutingTable":
        """A new table (version + 1) with one leaf split into two children.

        Children are named ``<parent>.0`` and ``<parent>.1``. Only the
        split shard's keys re-rendezvous (between the two children);
        every other leaf keeps its exact key set, so splitting one shard
        of ``n`` moves at most ``1/n`` of all keys.
        """
        shard_id = str(shard_id)
        if shard_id not in self._index:
            raise ParameterError(
                f"cannot split {shard_id!r}: not a live shard of "
                f"routing-table version {self.version} "
                f"(live: {list(self._leaves)!r})"
            )
        splits = {parent: list(kids) for parent, kids in self.splits.items()}
        splits[shard_id] = [f"{shard_id}.0", f"{shard_id}.1"]
        return RoutingTable(
            self.roots,
            splits,
            version=self.version + 1,
            hash_fn=self.hash_fn,
        )

    # ------------------------------------------------------------------
    # serialization (plain data; restart-stable placement by design)
    # ------------------------------------------------------------------
    def to_state(self) -> Dict:
        """The table as plain data (version, roots, split tree)."""
        return {
            "version": self.version,
            "roots": list(self.roots),
            "splits": {
                parent: list(children)
                for parent, children in sorted(self.splits.items())
            },
        }

    @classmethod
    def from_state(cls, state: Mapping, hash_fn=stable_hash) -> "RoutingTable":
        """Rebuild a table from :meth:`to_state` data (same placement)."""
        return cls(
            state["roots"],
            state.get("splits", {}),
            version=state.get("version", 1),
            hash_fn=hash_fn,
        )

    def to_json(self) -> str:
        """Canonical JSON form of :meth:`to_state` (restart-stable)."""
        return json.dumps(self.to_state(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str, hash_fn=stable_hash) -> "RoutingTable":
        """Rebuild a table serialized by :meth:`to_json`."""
        return cls.from_state(json.loads(text), hash_fn=hash_fn)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoutingTable):
            return NotImplemented
        return (
            self.version == other.version
            and self.roots == other.roots
            and self.splits == other.splits
        )

    def __hash__(self) -> int:
        return hash(
            (self.version, self.roots, tuple(sorted(self.splits.items())))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoutingTable(version={self.version}, "
            f"shards={list(self._leaves)!r})"
        )


def assignment_of(
    table: RoutingTable, values
) -> Dict[str, List]:
    """Group ``values`` by the shard each one lands on (diagnostics/CLI)."""
    owners: Dict[str, List] = {shard: [] for shard in table.shard_ids}
    for value in values:
        owners[table.shard_for(value)].append(value)
    return owners
