"""The access-serving engine (representation cache + view server).

The paper's structures answer *access requests*; this package turns them
into a serving layer: :class:`ViewServer` keeps built
:class:`~repro.core.structure.CompressedRepresentation` instances in a
bounded LRU :class:`RepresentationCache`, auto-selects τ from space or
delay budgets via the Section 6 optimizers, serves deduplicated sorted
batches, and is safe for concurrent readers (single-build guarantee,
lock-free enumeration).
"""

from repro.engine.cache import CacheStats, RepresentationCache, representation_cells
from repro.engine.server import (
    DEFAULT_TAU,
    BatchResult,
    Registration,
    ServingReport,
    ViewServer,
)

__all__ = [
    "CacheStats",
    "RepresentationCache",
    "representation_cells",
    "DEFAULT_TAU",
    "BatchResult",
    "Registration",
    "ServingReport",
    "ViewServer",
]
