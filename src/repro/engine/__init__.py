"""The access-serving engine (representation cache + view servers).

The paper's structures answer *access requests*; this package turns them
into a serving layer: :class:`ViewServer` keeps built
:class:`~repro.core.structure.CompressedRepresentation` instances in a
bounded LRU :class:`RepresentationCache` (internally thread-safe, with a
single-build :meth:`~RepresentationCache.get_or_build` guarantee),
auto-selects τ from space or delay budgets via the Section 6 optimizers,
and serves deduplicated sorted batches. Serving is cursor-first: a typed
:class:`AccessRequest` opened via ``server.open`` yields a lazy
:class:`AnswerCursor` (limits, resume tokens, delay stats — see
:mod:`repro.engine.api`), and the materializing ``answer*`` calls are
wrappers over it. :class:`ShardedViewServer` hash-partitions the
bound-value space across per-shard servers (routing bound requests,
lazily heap-merging per-shard cursors for free ones), and
:class:`AsyncViewServer` multiplexes request streams over either back
end from an event loop, with thread-pool execution, backpressure,
per-batch delay accounting, and an async ``stream`` face for the
cursor API.

Every layer reports into one optional :class:`Telemetry` sink
(:mod:`repro.engine.telemetry`): counters, fixed-bucket histograms, and
traced spans that persist as versioned JSONL and merge across restarts.
:class:`AdaptiveTuner` closes the loop, re-deriving each view's serving
τ from the observed delay-gap percentiles against its budget.
"""

from repro.engine.api import (
    AccessRequest,
    AnswerCursor,
    ResumeToken,
    open_cursor,
)
from repro.engine.async_server import (
    AsyncBatchResult,
    AsyncServingReport,
    AsyncViewServer,
)
from repro.engine.cache import (
    CacheStats,
    RepresentationCache,
    build_seconds_of,
    representation_cells,
)
from repro.engine.dynamic_serving import (
    DeltaRecord,
    DynamicSnapshotStore,
    DynamicViewState,
    FrozenDynamicView,
    ship_deltas,
)
from repro.engine.parallel import ParallelBuilder
from repro.engine.replica import ReplicaServer
from repro.engine.server import (
    DEFAULT_TAU,
    BatchResult,
    Registration,
    ServingReport,
    ViewServer,
)
from repro.engine.shared_scan import (
    SharedScan,
    SharedScanStats,
    open_group,
)
from repro.engine.sharding import (
    ShardedViewServer,
    SplitReport,
    infer_shard_key,
    merge_delay_stats,
    partition_database,
    semijoin_reduce_database,
    stable_hash,
)
from repro.engine.telemetry import (
    GAP_BUCKETS,
    LATENCY_BUCKETS,
    AdaptiveTuner,
    MetricsRegistry,
    Telemetry,
    TelemetryStore,
    TuningDecision,
)
from repro.engine.topology import RoutingTable, rendezvous_choice

__all__ = [
    "AccessRequest",
    "AnswerCursor",
    "ResumeToken",
    "open_cursor",
    "CacheStats",
    "RepresentationCache",
    "ParallelBuilder",
    "build_seconds_of",
    "representation_cells",
    "DEFAULT_TAU",
    "BatchResult",
    "DeltaRecord",
    "DynamicSnapshotStore",
    "DynamicViewState",
    "FrozenDynamicView",
    "Registration",
    "ServingReport",
    "ViewServer",
    "ship_deltas",
    "SharedScan",
    "SharedScanStats",
    "open_group",
    "ReplicaServer",
    "RoutingTable",
    "ShardedViewServer",
    "SplitReport",
    "infer_shard_key",
    "merge_delay_stats",
    "partition_database",
    "rendezvous_choice",
    "semijoin_reduce_database",
    "stable_hash",
    "AsyncBatchResult",
    "AsyncServingReport",
    "AsyncViewServer",
    "AdaptiveTuner",
    "GAP_BUCKETS",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "Telemetry",
    "TelemetryStore",
    "TuningDecision",
]
