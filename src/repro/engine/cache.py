"""The representation cache: bounded, LRU-evicting, cell-accounted.

A served view is a long-lived artifact (the covers/factorized-results
literature treats the compressed representation itself as the thing a
system keeps around), so the engine caches built
:class:`~repro.core.structure.CompressedRepresentation` instances across
requests. Entries are keyed by ``(view key, τ)`` — the same view served at
two different points of the space/delay tradeoff is two distinct
structures.

Size is accounted in the library's implementation-independent *cells*
(:mod:`repro.measure.space`): an entry charges the cells the structure
owns beyond the shared input tuples — its trie indexes plus the tree,
dictionary and any materialized tuples (``total_cells − base_tuples``).
Eviction is least-recently-used, triggered by either bound: a maximum
entry count or a maximum total cell budget. A single entry larger than
the cell budget is still admitted (and everything else evicted) — the
alternative is rebuilding it on every request, which is strictly worse.

The cache is internally synchronized: every public operation holds the
cache lock, and :meth:`RepresentationCache.get_or_build` provides the
single-build guarantee (at most one thread ever runs the factory for a
given key; late arrivals wait on the builder's event, then read the
freshly cached entry). Builds and cell measurement run *outside* the
lock — only bookkeeping is serialized — and a publish re-checks for a
resident entry so that an eviction or invalidation racing a build in
flight can never double-count cells: ``total_cells`` always equals the
sum of :func:`representation_cells` over the current residents.

Two orthogonal knobs extend the plain LRU design:

* **Eviction policy** — ``policy="lru"`` (default) evicts by recency
  alone; ``policy="cost"`` weighs what an eviction throws away, scoring
  residents by ``build_seconds × cells`` (both from the structure's own
  :class:`~repro.core.structure.BuildStats`) and evicting the cheapest
  first, recency as the tie-break. Under a mixed workload this keeps the
  slow-to-rebuild structures resident while fast cheap ones churn.
* **Disk tier** — give the cache a
  :class:`~repro.core.snapshot.SnapshotStore` and entries become
  durable: ``get_or_build`` consults the store before running the
  factory (a warm start decodes instead of rebuilding), writes a
  snapshot after each successful build, and eviction *demotes* entries
  to disk rather than discarding them outright. Snapshot I/O runs
  outside the cache lock; a failed write degrades to memory-only
  behavior, and a corrupted or wrong-database snapshot is treated as a
  miss (the store's fingerprint check refuses to decode it).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Hashable, List, Optional, Tuple

from repro.core.snapshot import SnapshotStore
from repro.core.structure import CompressedRepresentation
from repro.engine.locking import named_lock
from repro.engine.telemetry import MetricsRegistry
from repro.exceptions import ParameterError, SnapshotError

EVICTION_POLICIES = ("lru", "cost")


@dataclass
class CacheStats:
    """Counters describing one cache's lifetime behavior."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    insertions: int = 0
    disk_hits: int = 0
    disk_writes: int = 0

    @property
    def requests(self) -> int:
        """Total lookups: hits plus misses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from memory (0.0 when unused)."""
        return self.hits / self.requests if self.requests else 0.0

    def delta(self, before: "CacheStats") -> "CacheStats":
        """The counters accumulated since the ``before`` snapshot."""
        return CacheStats(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            evictions=self.evictions - before.evictions,
            insertions=self.insertions - before.insertions,
            disk_hits=self.disk_hits - before.disk_hits,
            disk_writes=self.disk_writes - before.disk_writes,
        )

    def add(self, other: "CacheStats") -> "CacheStats":
        """Accumulate another counter set into this one (returns self)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.insertions += other.insertions
        self.disk_hits += other.disk_hits
        self.disk_writes += other.disk_writes
        return self


@dataclass
class _Entry:
    representation: CompressedRepresentation
    cells: int = field(default=0)
    build_seconds: float = field(default=0.0)
    snapshot_label: Optional[str] = field(default=None)
    on_disk: bool = field(default=False)


def representation_cells(representation: CompressedRepresentation) -> int:
    """Cells an instance owns beyond the shared input tuples."""
    report = representation.space_report()
    return report.total_cells - report.base_tuples


def build_seconds_of(representation) -> float:
    """Seconds the structure took to build (0.0 when unmeasured)."""
    stats = getattr(representation, "stats", None)
    if stats is not None:
        return float(getattr(stats, "build_seconds", 0.0))
    return float(getattr(representation, "build_seconds", 0.0))


class RepresentationCache:
    """Thread-safe bounded cache of built compressed representations.

    Parameters
    ----------
    max_entries:
        Maximum number of cached structures; ``None`` means unbounded.
    max_cells:
        Maximum total cells across cached structures (see
        :func:`representation_cells`); ``None`` means unbounded.
    policy:
        Eviction policy: ``"lru"`` (recency only) or ``"cost"``
        (evict the resident with the smallest ``build_seconds × cells``
        first — the cheapest entry to lose — recency as the tie-break).
    snapshot_store:
        Optional :class:`~repro.core.snapshot.SnapshotStore` enabling the
        disk tier: warm loads on miss, snapshot writes on build, and
        demotion (rather than discard) on eviction.
    metrics:
        Optional :class:`~repro.engine.telemetry.MetricsRegistry`; every
        :class:`CacheStats` mutation is mirrored into
        ``cache_<counter>_total{policy=...}`` counters there (hits,
        misses, evictions, insertions, disk hits, disk writes), so one
        registry can watch many caches by policy. ``None`` costs
        nothing.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        max_cells: Optional[int] = None,
        policy: str = "lru",
        snapshot_store: Optional[SnapshotStore] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ParameterError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        if max_cells is not None and max_cells < 1:
            raise ParameterError(f"max_cells must be >= 1, got {max_cells}")
        if policy not in EVICTION_POLICIES:
            raise ParameterError(
                f"unknown eviction policy {policy!r}; "
                f"expected one of {EVICTION_POLICIES}"
            )
        self.max_entries = max_entries
        self.max_cells = max_cells
        self.policy = policy
        self.snapshot_store = snapshot_store
        self.stats = CacheStats()
        # Pre-resolved telemetry counters: the hot path pays one guarded
        # dict lookup plus an atomic increment, nothing more.
        self._metric_counters = (
            {
                counted: metrics.counter(
                    f"cache_{counted}_total", policy=policy
                )
                for counted in (
                    "hits",
                    "misses",
                    "evictions",
                    "insertions",
                    "disk_hits",
                    "disk_writes",
                )
            }
            if metrics is not None
            else None
        )
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._total_cells = 0
        self._lock = named_lock("cache", reentrant=True)
        self._building: "OrderedDict[Hashable, threading.Event]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    # mapping-ish interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Tuple[Hashable, ...]:
        """Keys from least- to most-recently used."""
        with self._lock:
            return tuple(self._entries.keys())

    @property
    def total_cells(self) -> int:
        """Cells currently held across all entries."""
        with self._lock:
            return self._total_cells

    def cells_of(self, key: Hashable) -> Optional[int]:
        """The resident entry's cell count, or None when not resident."""
        with self._lock:
            entry = self._entries.get(key)
            return entry.cells if entry is not None else None

    def stats_snapshot(self) -> CacheStats:
        """A consistent point-in-time copy of the lifetime counters."""
        with self._lock:
            return replace(self.stats)

    def _bump(self, counted: str, amount: int = 1) -> None:
        """Mirror one :class:`CacheStats` mutation into the registry."""
        if self._metric_counters is not None:
            self._metric_counters[counted].inc(amount)

    # ------------------------------------------------------------------
    # cache operations
    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[CompressedRepresentation]:
        """The cached structure for ``key``, refreshing its recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                self._bump("misses")
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self._bump("hits")
            return entry.representation

    def peek(self, key: Hashable) -> Optional[CompressedRepresentation]:
        """Like :meth:`get` but touching neither recency nor stats."""
        with self._lock:
            entry = self._entries.get(key)
            return entry.representation if entry is not None else None

    def put(
        self,
        key: Hashable,
        representation: CompressedRepresentation,
        snapshot_label: Optional[str] = None,
    ) -> List[Hashable]:
        """Insert (or replace) an entry; returns the keys evicted for it.

        The cell measurement (a walk of the structure's tries) runs
        outside the lock; only the bookkeeping is serialized. With a disk
        tier, evicted entries are demoted to snapshots (also outside the
        lock) instead of discarded.
        """
        cells = representation_cells(representation)
        with self._lock:
            evicted = self._publish(
                key,
                representation,
                cells,
                build_seconds_of(representation),
                self._label_for(key, snapshot_label),
                on_disk=False,
            )
        self._demote(evicted)
        return [victim for victim, _ in evicted]

    def _label_for(
        self, key: Hashable, snapshot_label: Optional[str]
    ) -> Optional[str]:
        if self.snapshot_store is None:
            return None
        # repr of the standard key shapes (tuples of names and numbers)
        # is restart-stable, so the default label round-trips a reboot.
        return snapshot_label if snapshot_label is not None else repr(key)

    def _publish(
        self,
        key: Hashable,
        representation: CompressedRepresentation,
        cells: int,
        build_seconds: float = 0.0,
        snapshot_label: Optional[str] = None,
        on_disk: bool = False,
    ) -> List[Tuple[Hashable, _Entry]]:
        # Caller holds the lock. Popping any resident entry first is what
        # keeps the accounting exact when a build in flight races an
        # eviction or a concurrent replacement: the new charge is only
        # added after the old one (if any) has been subtracted.
        old = self._entries.pop(key, None)
        if old is not None:
            self._total_cells -= old.cells
        self._entries[key] = _Entry(
            representation,
            cells,
            build_seconds=build_seconds,
            snapshot_label=snapshot_label,
            on_disk=on_disk,
        )
        self._total_cells += cells
        self.stats.insertions += 1
        self._bump("insertions")
        return self._evict()

    def get_or_build(
        self,
        key: Hashable,
        factory: Callable[[], CompressedRepresentation],
        snapshot_label: Optional[str] = None,
        durable: bool = True,
    ) -> CompressedRepresentation:
        """The cached structure for ``key``, building it on a miss.

        At most one thread ever runs ``factory`` for a given key: late
        arrivals block on the builder's event and then read the freshly
        cached entry (or claim the build themselves if the builder failed
        or its entry was already evicted). The factory runs outside the
        cache lock, so concurrent builds of *different* keys — and all
        reads — proceed unhindered.

        With a disk tier, a miss first consults the snapshot store under
        ``snapshot_label`` (default: ``repr(key)``): a valid snapshot is
        decoded instead of built — the warm-start path — and a fresh
        build is snapshotted before it is published. Corrupt or
        wrong-database snapshots count as plain misses.
        ``durable=False`` keeps the entry out of the disk tier entirely —
        for values with their own durability story (dynamic serving
        versions persist through the delta snapshot/log tier instead).
        """
        missed = False
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    if not missed:
                        # A wait-then-hit call already recorded its miss;
                        # one call is one request, not two.
                        self.stats.hits += 1
                        self._bump("hits")
                    return entry.representation
                if not missed:
                    # One logical miss per call, however many retries the
                    # build race takes.
                    self.stats.misses += 1
                    self._bump("misses")
                    missed = True
                event = self._building.get(key)
                if event is None:
                    event = threading.Event()
                    self._building[key] = event
                    claimed = True
                else:
                    claimed = False
            if not claimed:
                event.wait()
                continue  # the builder published (or failed); re-check
            try:
                label = (
                    self._label_for(key, snapshot_label)
                    if durable
                    else None
                )
                built, from_disk = self._warm_load(label)
                if built is None:
                    built = factory()
                cells = representation_cells(built)
                on_disk = from_disk
                if not from_disk and label is not None:
                    # Snapshot before publishing: once the entry is
                    # visible, eviction can race the write, and a
                    # demotion would only duplicate it.
                    on_disk = self.snapshot_store.save(label, built)
                with self._lock:
                    if from_disk:
                        self.stats.disk_hits += 1
                        self._bump("disk_hits")
                    elif on_disk:
                        self.stats.disk_writes += 1
                        self._bump("disk_writes")
                    evicted = self._publish(
                        key,
                        built,
                        cells,
                        build_seconds_of(built),
                        label,
                        on_disk=on_disk,
                    )
                self._demote(evicted)
                return built
            finally:
                with self._lock:
                    del self._building[key]
                event.set()

    def _warm_load(
        self, label: Optional[str]
    ) -> Tuple[Optional[CompressedRepresentation], bool]:
        """(decoded snapshot, True) on a disk hit, (None, False) otherwise."""
        if self.snapshot_store is None or label is None:
            return None, False
        try:
            restored = self.snapshot_store.load(label)
        except SnapshotError:
            # Corrupt, truncated, version-mismatched, or built from a
            # different database: a miss, not a serving failure.
            return None, False
        if restored is None:
            return None, False
        return restored, True

    def demote_all(self) -> int:
        """Flush every resident, not-yet-on-disk entry to the disk tier.

        The elastic-topology hook: a shard about to retire (or ship its
        structures to a replica) demotes its residents so the snapshots
        on disk are complete — warm loads and replica hydration then
        cover everything the cache held. Entries stay resident and are
        marked ``on_disk`` (a later eviction will not write them again).
        Snapshot I/O runs outside the lock; returns snapshots written.
        Without a disk tier this is a no-op.
        """
        if self.snapshot_store is None:
            return 0
        with self._lock:
            pending = [
                (key, entry)
                for key, entry in self._entries.items()
                if not entry.on_disk and entry.snapshot_label is not None
            ]
        written = 0
        for key, entry in pending:
            if self.snapshot_store.save(
                entry.snapshot_label, entry.representation
            ):
                written += 1
                with self._lock:
                    # Only mark the entry if it is still the resident one
                    # (a concurrent rebuild replaces the _Entry object).
                    if self._entries.get(key) is entry:
                        entry.on_disk = True
                    self.stats.disk_writes += 1
                    self._bump("disk_writes")
        return written

    def _demote(self, evicted: List[Tuple[Hashable, _Entry]]) -> None:
        """Write evicted entries to the disk tier (outside the lock)."""
        if self.snapshot_store is None:
            return
        written = 0
        for _, entry in evicted:
            if entry.on_disk or entry.snapshot_label is None:
                continue
            if self.snapshot_store.save(
                entry.snapshot_label, entry.representation
            ):
                written += 1
        if written:
            with self._lock:
                self.stats.disk_writes += written
                self._bump("disk_writes", written)

    def _evict(self) -> List[Tuple[Hashable, _Entry]]:
        evicted: List[Tuple[Hashable, _Entry]] = []
        while self._over_budget():
            victim = self._pick_victim()
            entry = self._entries.pop(victim)
            self._total_cells -= entry.cells
            self.stats.evictions += 1
            self._bump("evictions")
            evicted.append((victim, entry))
        return evicted

    def _pick_victim(self) -> Hashable:
        """The next eviction victim under the configured policy."""
        if self.policy == "cost":
            # Cheapest loss first: the least build work × footprint. The
            # iteration order is least- to most-recently used, and the
            # strict < keeps the earliest (stalest) minimum on ties.
            victim = None
            victim_score = None
            for key, entry in self._entries.items():
                score = entry.build_seconds * max(1, entry.cells)
                if victim_score is None or score < victim_score:
                    victim, victim_score = key, score
            return victim
        return next(iter(self._entries))  # LRU: least recently used

    def _over_budget(self) -> bool:
        if len(self._entries) <= 1:
            return False  # an oversized singleton is admitted regardless
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            return True
        if self.max_cells is not None and self._total_cells > self.max_cells:
            return True
        return False

    def invalidate(self, key: Hashable, drop_snapshot: bool = True) -> bool:
        """Drop one entry; True when it was present.

        Unlike eviction (which demotes), invalidation means the structure
        is no longer valid to serve — by default its disk snapshot is
        removed too, so a later warm load cannot resurrect it.
        """
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._total_cells -= entry.cells
        if (
            drop_snapshot
            and self.snapshot_store is not None
            and entry.snapshot_label is not None
        ):
            self.snapshot_store.remove(entry.snapshot_label)
        return True

    def invalidate_matching(
        self,
        predicate: Callable[[Hashable], bool],
        drop_snapshot: bool = True,
    ) -> int:
        """Atomically drop every entry whose key satisfies ``predicate``.

        The match and removal happen under one lock acquisition, so a
        concurrent build or eviction can neither slip a matching key in
        behind the sweep nor have the sweep iterate a stale key list —
        the race a snapshot-then-invalidate loop over :meth:`keys` is
        open to. Snapshot removal (like all snapshot I/O) runs outside
        the lock. Returns the number of entries dropped.
        """
        with self._lock:
            victims = [key for key in self._entries if predicate(key)]
            removed: List[_Entry] = []
            for key in victims:
                entry = self._entries.pop(key)
                self._total_cells -= entry.cells
                removed.append(entry)
        if drop_snapshot and self.snapshot_store is not None:
            for entry in removed:
                if entry.snapshot_label is not None:
                    self.snapshot_store.remove(entry.snapshot_label)
        return len(removed)

    def clear(self) -> None:
        """Drop every resident entry (the disk tier is untouched)."""
        with self._lock:
            self._entries.clear()
            self._total_cells = 0
