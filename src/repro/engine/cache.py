"""The representation cache: bounded, LRU-evicting, cell-accounted.

A served view is a long-lived artifact (the covers/factorized-results
literature treats the compressed representation itself as the thing a
system keeps around), so the engine caches built
:class:`~repro.core.structure.CompressedRepresentation` instances across
requests. Entries are keyed by ``(view key, τ)`` — the same view served at
two different points of the space/delay tradeoff is two distinct
structures.

Size is accounted in the library's implementation-independent *cells*
(:mod:`repro.measure.space`): an entry charges the cells the structure
owns beyond the shared input tuples — its trie indexes plus the tree,
dictionary and any materialized tuples (``total_cells − base_tuples``).
Eviction is least-recently-used, triggered by either bound: a maximum
entry count or a maximum total cell budget. A single entry larger than
the cell budget is still admitted (and everything else evicted) — the
alternative is rebuilding it on every request, which is strictly worse.

The cache is internally synchronized: every public operation holds the
cache lock, and :meth:`RepresentationCache.get_or_build` provides the
single-build guarantee (at most one thread ever runs the factory for a
given key; late arrivals wait on the builder's event, then read the
freshly cached entry). Builds and cell measurement run *outside* the
lock — only bookkeeping is serialized — and a publish re-checks for a
resident entry so that an eviction or invalidation racing a build in
flight can never double-count cells: ``total_cells`` always equals the
sum of :func:`representation_cells` over the current residents.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Hashable, List, Optional, Tuple

from repro.core.structure import CompressedRepresentation
from repro.exceptions import ParameterError


@dataclass
class CacheStats:
    """Counters describing one cache's lifetime behavior."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    insertions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def delta(self, before: "CacheStats") -> "CacheStats":
        """The counters accumulated since the ``before`` snapshot."""
        return CacheStats(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            evictions=self.evictions - before.evictions,
            insertions=self.insertions - before.insertions,
        )

    def add(self, other: "CacheStats") -> "CacheStats":
        """Accumulate another counter set into this one (returns self)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.insertions += other.insertions
        return self


@dataclass
class _Entry:
    representation: CompressedRepresentation
    cells: int = field(default=0)


def representation_cells(representation: CompressedRepresentation) -> int:
    """Cells an instance owns beyond the shared input tuples."""
    report = representation.space_report()
    return report.total_cells - report.base_tuples


class RepresentationCache:
    """Thread-safe LRU cache of built compressed representations.

    Parameters
    ----------
    max_entries:
        Maximum number of cached structures; ``None`` means unbounded.
    max_cells:
        Maximum total cells across cached structures (see
        :func:`representation_cells`); ``None`` means unbounded.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        max_cells: Optional[int] = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ParameterError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        if max_cells is not None and max_cells < 1:
            raise ParameterError(f"max_cells must be >= 1, got {max_cells}")
        self.max_entries = max_entries
        self.max_cells = max_cells
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._total_cells = 0
        self._lock = threading.RLock()
        self._building: "OrderedDict[Hashable, threading.Event]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    # mapping-ish interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Tuple[Hashable, ...]:
        """Keys from least- to most-recently used."""
        with self._lock:
            return tuple(self._entries.keys())

    @property
    def total_cells(self) -> int:
        """Cells currently held across all entries."""
        with self._lock:
            return self._total_cells

    def cells_of(self, key: Hashable) -> Optional[int]:
        with self._lock:
            entry = self._entries.get(key)
            return entry.cells if entry is not None else None

    def stats_snapshot(self) -> CacheStats:
        """A consistent point-in-time copy of the lifetime counters."""
        with self._lock:
            return replace(self.stats)

    # ------------------------------------------------------------------
    # cache operations
    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[CompressedRepresentation]:
        """The cached structure for ``key``, refreshing its recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.representation

    def peek(self, key: Hashable) -> Optional[CompressedRepresentation]:
        """Like :meth:`get` but touching neither recency nor stats."""
        with self._lock:
            entry = self._entries.get(key)
            return entry.representation if entry is not None else None

    def put(
        self, key: Hashable, representation: CompressedRepresentation
    ) -> List[Hashable]:
        """Insert (or replace) an entry; returns the keys evicted for it.

        The cell measurement (a walk of the structure's tries) runs
        outside the lock; only the bookkeeping is serialized.
        """
        cells = representation_cells(representation)
        with self._lock:
            return self._publish(key, representation, cells)

    def _publish(
        self,
        key: Hashable,
        representation: CompressedRepresentation,
        cells: int,
    ) -> List[Hashable]:
        # Caller holds the lock. Popping any resident entry first is what
        # keeps the accounting exact when a build in flight races an
        # eviction or a concurrent replacement: the new charge is only
        # added after the old one (if any) has been subtracted.
        old = self._entries.pop(key, None)
        if old is not None:
            self._total_cells -= old.cells
        self._entries[key] = _Entry(representation, cells)
        self._total_cells += cells
        self.stats.insertions += 1
        return self._evict()

    def get_or_build(
        self,
        key: Hashable,
        factory: Callable[[], CompressedRepresentation],
    ) -> CompressedRepresentation:
        """The cached structure for ``key``, building it on a miss.

        At most one thread ever runs ``factory`` for a given key: late
        arrivals block on the builder's event and then read the freshly
        cached entry (or claim the build themselves if the builder failed
        or its entry was already evicted). The factory runs outside the
        cache lock, so concurrent builds of *different* keys — and all
        reads — proceed unhindered.
        """
        missed = False
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    if not missed:
                        # A wait-then-hit call already recorded its miss;
                        # one call is one request, not two.
                        self.stats.hits += 1
                    return entry.representation
                if not missed:
                    # One logical miss per call, however many retries the
                    # build race takes.
                    self.stats.misses += 1
                    missed = True
                event = self._building.get(key)
                if event is None:
                    event = threading.Event()
                    self._building[key] = event
                    claimed = True
                else:
                    claimed = False
            if not claimed:
                event.wait()
                continue  # the builder published (or failed); re-check
            try:
                built = factory()
                cells = representation_cells(built)
                with self._lock:
                    self._publish(key, built, cells)
                return built
            finally:
                with self._lock:
                    del self._building[key]
                event.set()

    def _evict(self) -> List[Hashable]:
        evicted: List[Hashable] = []
        while self._over_budget():
            victim, entry = self._entries.popitem(last=False)
            self._total_cells -= entry.cells
            self.stats.evictions += 1
            evicted.append(victim)
        return evicted

    def _over_budget(self) -> bool:
        if len(self._entries) <= 1:
            return False  # an oversized singleton is admitted regardless
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            return True
        if self.max_cells is not None and self._total_cells > self.max_cells:
            return True
        return False

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; True when it was present."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._total_cells -= entry.cells
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._total_cells = 0
