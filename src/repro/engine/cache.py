"""The representation cache: bounded, LRU-evicting, cell-accounted.

A served view is a long-lived artifact (the covers/factorized-results
literature treats the compressed representation itself as the thing a
system keeps around), so the engine caches built
:class:`~repro.core.structure.CompressedRepresentation` instances across
requests. Entries are keyed by ``(view key, τ)`` — the same view served at
two different points of the space/delay tradeoff is two distinct
structures.

Size is accounted in the library's implementation-independent *cells*
(:mod:`repro.measure.space`): an entry charges the cells the structure
owns beyond the shared input tuples — its trie indexes plus the tree,
dictionary and any materialized tuples (``total_cells − base_tuples``).
Eviction is least-recently-used, triggered by either bound: a maximum
entry count or a maximum total cell budget. A single entry larger than
the cell budget is still admitted (and everything else evicted) — the
alternative is rebuilding it on every request, which is strictly worse.

The cache itself is not synchronized; :class:`~repro.engine.server.ViewServer`
performs all cache bookkeeping under its registry lock and serves
enumeration outside any lock.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.structure import CompressedRepresentation
from repro.exceptions import ParameterError


@dataclass
class CacheStats:
    """Counters describing one cache's lifetime behavior."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    insertions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


@dataclass
class _Entry:
    representation: CompressedRepresentation
    cells: int = field(default=0)


def representation_cells(representation: CompressedRepresentation) -> int:
    """Cells an instance owns beyond the shared input tuples."""
    report = representation.space_report()
    return report.total_cells - report.base_tuples


class RepresentationCache:
    """LRU cache of built compressed representations.

    Parameters
    ----------
    max_entries:
        Maximum number of cached structures; ``None`` means unbounded.
    max_cells:
        Maximum total cells across cached structures (see
        :func:`representation_cells`); ``None`` means unbounded.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        max_cells: Optional[int] = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ParameterError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        if max_cells is not None and max_cells < 1:
            raise ParameterError(f"max_cells must be >= 1, got {max_cells}")
        self.max_entries = max_entries
        self.max_cells = max_cells
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._total_cells = 0

    # ------------------------------------------------------------------
    # mapping-ish interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def keys(self) -> Tuple[Hashable, ...]:
        """Keys from least- to most-recently used."""
        return tuple(self._entries.keys())

    @property
    def total_cells(self) -> int:
        """Cells currently held across all entries."""
        return self._total_cells

    def cells_of(self, key: Hashable) -> Optional[int]:
        entry = self._entries.get(key)
        return entry.cells if entry is not None else None

    # ------------------------------------------------------------------
    # cache operations
    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[CompressedRepresentation]:
        """The cached structure for ``key``, refreshing its recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.representation

    def peek(self, key: Hashable) -> Optional[CompressedRepresentation]:
        """Like :meth:`get` but touching neither recency nor stats."""
        entry = self._entries.get(key)
        return entry.representation if entry is not None else None

    def put(
        self, key: Hashable, representation: CompressedRepresentation
    ) -> List[Hashable]:
        """Insert (or replace) an entry; returns the keys evicted for it."""
        cells = representation_cells(representation)
        old = self._entries.pop(key, None)
        if old is not None:
            self._total_cells -= old.cells
        self._entries[key] = _Entry(representation, cells)
        self._total_cells += cells
        self.stats.insertions += 1
        return self._evict()

    def _evict(self) -> List[Hashable]:
        evicted: List[Hashable] = []
        while self._over_budget():
            victim, entry = self._entries.popitem(last=False)
            self._total_cells -= entry.cells
            self.stats.evictions += 1
            evicted.append(victim)
        return evicted

    def _over_budget(self) -> bool:
        if len(self._entries) <= 1:
            return False  # an oversized singleton is admitted regardless
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            return True
        if self.max_cells is not None and self._total_cells > self.max_cells:
            return True
        return False

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; True when it was present."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._total_cells -= entry.cells
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._total_cells = 0
