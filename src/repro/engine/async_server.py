"""The asyncio serving front end: multiplex request streams over one engine.

The compressed representations only pay off when a resident structure
amortizes over many access requests;
:class:`~repro.engine.server.ViewServer` keeps structures alive but serves
from the caller's thread. :class:`AsyncViewServer` puts an event loop in
front: builds and batch answering run on a bounded
``ThreadPoolExecutor`` (builds already carry the single-build guarantee
and enumeration is lock-free for readers, so worker threads never
contend), a bounded semaphore applies backpressure to over-eager
producers, and every served batch reports its queue and service delay.

The back end is duck-typed: a plain ``ViewServer`` or a
:class:`~repro.engine.sharding.ShardedViewServer`. For a sharded back
end the front end splits each batch along the shard plan and awaits the
per-shard sub-batches concurrently — scatter-gather requests fan out to
every shard, routed requests touch exactly one — and every fan-out pins
the backend's routing-table version for its whole plan→answer→merge
span, so a live :meth:`~repro.engine.sharding.ShardedViewServer.split_shard`
cuts over *between* batches, never under one.

Read replicas and admission control
-----------------------------------
A plain back end can be fronted by
:class:`~repro.engine.replica.ReplicaServer` instances (``replicas=``):
read batches are balanced across them — ``balancer="round-robin"`` or
``"least-pending"`` (pick the replica with the fewest batches in
flight) — while registration still goes everywhere, so every replica
serves the same views from its shipped snapshots. Per-tenant admission
control (``max_pending_per_tenant=``) bounds how many in-flight batches
any single tenant may hold *before* it competes for the global
``max_pending`` — one hot tenant cannot starve the rest.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from itertools import islice
from pathlib import Path
from typing import (
    AsyncIterator,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.database.catalog import Database
from repro.engine.api import AccessRequest, as_request
from repro.engine.cache import CacheStats
from repro.engine.server import BatchResult, Registration, ViewServer
from repro.engine.sharding import ShardedViewServer
from repro.engine.telemetry import LATENCY_BUCKETS, Telemetry
from repro.exceptions import ParameterError
from repro.query.adorned import AdornedView
from repro.workloads.streams import batched

Backend = Union[ViewServer, ShardedViewServer]


@dataclass(frozen=True)
class AsyncBatchResult:
    """One served batch plus its life-cycle timing.

    ``queue_seconds`` spans submission to the first worker picking the
    batch up (semaphore wait + executor queueing — the backpressure
    delay); ``service_seconds`` spans first pickup to the last shard
    finishing.
    """

    result: BatchResult
    queue_seconds: float
    service_seconds: float
    shards: Tuple[int, ...] = ()
    replica: Optional[int] = None  # which read replica served it, if any

    @property
    def turnaround_seconds(self) -> float:
        """Submission-to-done wall time (queue plus service)."""
        return self.queue_seconds + self.service_seconds


@dataclass(frozen=True)
class AsyncServingReport:
    """Aggregate of one request stream served through the async front end.

    ``builds`` and ``cache`` are deltas observed during this stream (a
    warm engine reports zero builds); queue/service statistics aggregate
    the per-batch :class:`AsyncBatchResult` timings.
    """

    requests: int
    unique_requests: int
    shared_requests: int
    outputs: int
    batches: int
    builds: int
    wall_seconds: float
    max_step_gap: int
    queue_seconds_max: float
    queue_seconds_mean: float
    service_seconds_mean: float
    cache: CacheStats

    @property
    def requests_per_second(self) -> float:
        """Stream throughput over the whole drain (inf for a zero wall)."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.requests / self.wall_seconds


class AsyncViewServer:
    """Async facade over a ``ViewServer`` or ``ShardedViewServer``.

    Parameters
    ----------
    backend:
        A database (a fresh ``ViewServer`` is created over it) or an
        existing back end to wrap.
    max_workers:
        Thread-pool width. Builds and per-shard sub-batches occupy
        workers; readers never block each other, so a handful suffices.
    max_pending:
        Backpressure bound: at most this many :meth:`serve` calls may be
        in flight (queued + executing). Further callers — and
        :meth:`serve_stream`'s intake — wait.
    max_entries / max_cells / snapshot_dir / cache_policy / build_workers:
        Backend construction knobs (cache bounds, warm-start snapshot
        directory, eviction policy, process-parallel build pool), used
        only when ``backend`` is a database; see :class:`ViewServer`.
        A backend built here is owned here: :meth:`close` releases its
        build pool along with the serving threads.
    replicas:
        Read replicas (typically
        :class:`~repro.engine.replica.ReplicaServer` instances) to
        balance read batches across. Only valid with a *plain* back end
        — a sharded back end already is its own fan-out layer. Replicas
        are caller-owned (``close()`` leaves them alone); registration
        through this facade reaches every replica, so they stay in sync.
    balancer:
        ``"round-robin"`` (rotate) or ``"least-pending"`` (the replica
        with the fewest batches currently in flight, rotation as the
        tie-break).
    max_pending_per_tenant:
        Per-tenant admission bound: a tenant (the ``tenant=`` argument
        of :meth:`serve` / :meth:`answer_requests`) may hold at most
        this many in-flight batches before its next one waits — acquired
        *before* the global ``max_pending`` slot, so a saturated tenant
        queues outside the shared pool instead of monopolizing it.
        ``None`` disables per-tenant gating.
    telemetry:
        ``True`` creates an owned :class:`~repro.engine.telemetry.Telemetry`
        (persisted under ``snapshot_dir/telemetry`` when this facade also
        builds the backend); an instance is shared; ``None`` adopts the
        backend's own sink when it has one. The front end records
        ``async_queue_depth``, ``async_queue_seconds`` /
        ``async_service_seconds``, ``admission_waits_total{gate}``, and
        ``balancer_picks_total{replica}`` on top of whatever the backend
        records.

    One event loop at a time: the internal semaphores bind to the loop
    of the first ``await``, so drive a given instance from a single
    ``asyncio.run`` (or call :meth:`reset` between loops).
    """

    def __init__(
        self,
        backend: Union[Backend, Database],
        max_workers: int = 4,
        max_pending: int = 32,
        max_entries: Optional[int] = 8,
        max_cells: Optional[int] = None,
        snapshot_dir=None,
        cache_policy: str = "lru",
        build_workers: Optional[int] = None,
        replicas: Sequence[ViewServer] = (),
        balancer: str = "round-robin",
        max_pending_per_tenant: Optional[int] = None,
        telemetry: Union[Telemetry, bool, None] = None,
    ):
        if max_workers < 1:
            raise ParameterError(f"max_workers must be >= 1, got {max_workers}")
        if max_pending < 1:
            raise ParameterError(f"max_pending must be >= 1, got {max_pending}")
        if balancer not in ("round-robin", "least-pending"):
            raise ParameterError(
                f"unknown balancer {balancer!r}; expected 'round-robin' "
                "or 'least-pending'"
            )
        if (
            max_pending_per_tenant is not None
            and max_pending_per_tenant < 1
        ):
            raise ParameterError(
                "max_pending_per_tenant must be >= 1, got "
                f"{max_pending_per_tenant}"
            )
        self._owns_backend = isinstance(backend, Database)
        self._owns_telemetry = telemetry is True
        if telemetry is True:
            telemetry = Telemetry(
                Path(snapshot_dir) / "telemetry"
                if self._owns_backend and snapshot_dir is not None
                else None
            )
        elif telemetry is None and not self._owns_backend:
            # Wrapping an instrumented backend: record into its sink so
            # front-end and engine metrics land in one registry.
            telemetry = getattr(backend, "telemetry", None)
        self._telemetry: Optional[Telemetry] = telemetry or None
        if isinstance(backend, Database):
            backend = ViewServer(
                backend,
                max_entries=max_entries,
                max_cells=max_cells,
                snapshot_dir=snapshot_dir,
                cache_policy=cache_policy,
                build_workers=build_workers,
                telemetry=self._telemetry,
            )
        if replicas and isinstance(backend, ShardedViewServer):
            raise ParameterError(
                "replicas balance a plain backend; a sharded backend "
                "already fans out per shard (replicate the shards "
                "themselves instead)"
            )
        self.backend: Backend = backend
        self.max_pending = max_pending
        self.max_pending_per_tenant = max_pending_per_tenant
        self._replicas: Tuple[ViewServer, ...] = tuple(replicas)
        self._balancer = balancer
        # Loop-confined balancer state: mutated only on the event-loop
        # thread (executor work happens after the pick), so no lock.
        self._rr = 0
        self._replica_pending = [0] * len(self._replicas)
        self._tenant_gates: dict = {}
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._semaphore = asyncio.Semaphore(max_pending)

    # ------------------------------------------------------------------
    # passthrough registration
    # ------------------------------------------------------------------
    def register(
        self,
        view: Union[AdornedView, str],
        tau: Optional[float] = None,
        space_budget: Optional[float] = None,
        delay_budget: Optional[float] = None,
        name: Optional[str] = None,
    ) -> str:
        """Register a view on the backend and every replica; serving name."""
        resolved = self.backend.register(
            view,
            tau=tau,
            space_budget=space_budget,
            delay_budget=delay_budget,
            name=name,
        )
        # Replicas serve the same views under the same knobs (identical
        # knobs -> identical snapshot labels -> hydration finds the
        # primary's shipped structures). Pre-registered replicas keep
        # their registration.
        for replica in self._replicas:
            if resolved not in replica.views():
                replica.register(
                    view,
                    tau=tau,
                    space_budget=space_budget,
                    delay_budget=delay_budget,
                    name=resolved,
                )
        return resolved

    def registration(self, name: str) -> Registration:
        """The backend's registration record for one view."""
        return self.backend.registration(name)

    def views(self) -> Tuple[str, ...]:
        """Names of every registered view, from the backend."""
        return self.backend.views()

    @property
    def is_sharded(self) -> bool:
        """True when the wrapped backend is a :class:`ShardedViewServer`."""
        return isinstance(self.backend, ShardedViewServer)

    @property
    def replicas(self) -> Tuple[ViewServer, ...]:
        """The read replicas this facade balances read batches across."""
        return self._replicas

    @property
    def telemetry(self) -> Optional[Telemetry]:
        """The telemetry sink (owned, shared, or adopted), or ``None``."""
        return self._telemetry

    @property
    def replica_loads(self) -> Tuple[int, ...]:
        """In-flight batch counts per replica (the balancer's view)."""
        return tuple(self._replica_pending)

    # ------------------------------------------------------------------
    # balancing and admission
    # ------------------------------------------------------------------
    def _pick_replica(self) -> Optional[int]:
        """The replica index the next read batch goes to (None: backend)."""
        n = len(self._replicas)
        if n == 0:
            return None
        start = self._rr % n
        self._rr += 1
        if self._balancer == "least-pending":
            # Fewest in-flight batches wins; rotation breaks ties so
            # equal loads still spread.
            offset = min(
                range(n),
                key=lambda k: (self._replica_pending[(start + k) % n], k),
            )
            start = (start + offset) % n
        if self._telemetry is not None:
            self._telemetry.counter(
                "balancer_picks_total", replica=str(start)
            ).inc()
        return start

    def _count_wait(self, gate_name: str) -> None:
        """Record one admission stall (a slot was full when asked for)."""
        if self._telemetry is not None:
            self._telemetry.counter(
                "admission_waits_total", gate=gate_name
            ).inc()

    def _queue_depth(self, delta: int) -> None:
        if self._telemetry is not None:
            self._telemetry.gauge("async_queue_depth").add(delta)

    def _tenant_gate(self, tenant: Optional[str]):
        if tenant is None or self.max_pending_per_tenant is None:
            return None
        gate = self._tenant_gates.get(tenant)
        if gate is None:
            gate = asyncio.Semaphore(self.max_pending_per_tenant)
            self._tenant_gates[tenant] = gate
        return gate

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    async def serve(
        self,
        name: str,
        accesses: Iterable[Sequence],
        tau: Optional[float] = None,
        measure: bool = True,
        tenant: Optional[str] = None,
    ) -> AsyncBatchResult:
        """Serve one batch on the thread pool; await the merged result.

        With a sharded back end the batch is split along its shard plan
        and the non-empty sub-batches run concurrently (under one pinned
        routing-table version); with read replicas the whole batch goes
        to the balancer's pick. ``tenant`` engages per-tenant admission
        control when the server was built with
        ``max_pending_per_tenant`` — the tenant's slot is acquired
        before the global one, and both waits count as queue time.
        """
        batch = [tuple(access) for access in accesses]
        loop = asyncio.get_running_loop()
        submitted = time.perf_counter()
        gate = self._tenant_gate(tenant)
        self._queue_depth(+1)
        try:
            if gate is not None:
                if gate.locked():
                    self._count_wait("tenant")
                async with gate:
                    served = await self._serve_admitted(
                        loop, name, batch, tau, measure, submitted
                    )
            else:
                served = await self._serve_admitted(
                    loop, name, batch, tau, measure, submitted
                )
        finally:
            self._queue_depth(-1)
        if self._telemetry is not None:
            self._telemetry.histogram(
                "async_queue_seconds", buckets=LATENCY_BUCKETS
            ).observe(served.queue_seconds)
            self._telemetry.histogram(
                "async_service_seconds", buckets=LATENCY_BUCKETS
            ).observe(served.service_seconds)
        return served

    async def _serve_admitted(
        self,
        loop: asyncio.AbstractEventLoop,
        name: str,
        batch: List[Tuple],
        tau: Optional[float],
        measure: bool,
        submitted: float,
    ) -> AsyncBatchResult:
        if self._semaphore.locked():
            self._count_wait("global")
        async with self._semaphore:
            if isinstance(self.backend, ShardedViewServer):
                return await self._serve_sharded(
                    loop, name, batch, tau, measure, submitted
                )
            replica = self._pick_replica()
            server = (
                self.backend if replica is None else self._replicas[replica]
            )
            if replica is not None:
                self._replica_pending[replica] += 1
            try:
                (result, started, finished) = await loop.run_in_executor(
                    self._executor,
                    self._timed_batch,
                    server,
                    None,
                    name,
                    batch,
                    tau,
                    measure,
                )
            finally:
                if replica is not None:
                    self._replica_pending[replica] -= 1
            return AsyncBatchResult(
                result=result,
                queue_seconds=started - submitted,
                service_seconds=finished - started,
                replica=replica,
            )

    async def _serve_sharded(
        self,
        loop: asyncio.AbstractEventLoop,
        name: str,
        batch: List[Tuple],
        tau: Optional[float],
        measure: bool,
        submitted: float,
    ) -> AsyncBatchResult:
        backend: ShardedViewServer = self.backend
        # One route resolution serves plan and merge (a concurrent
        # re-registration must not flip the mode mid-batch), one pinned
        # topology version spans plan → answer → merge (a concurrent
        # split_shard must not shift shard indexes mid-fan-out), and the
        # per-access hash planning runs off the loop thread.
        route = backend.route(name)
        version = backend.pin_version()
        try:
            plan = await loop.run_in_executor(
                self._executor, backend.plan_batch, name, batch, route, version
            )
            work = [
                (index, sub_batch)
                for index, sub_batch in enumerate(plan)
                if sub_batch
            ]
            timed = await asyncio.gather(
                *(
                    loop.run_in_executor(
                        self._executor,
                        self._timed_batch,
                        backend,
                        index,
                        name,
                        sub_batch,
                        tau,
                        measure,
                        version,
                    )
                    for index, sub_batch in work
                )
            )
            shard_results: List[Optional[BatchResult]] = [None] * len(plan)
            started = time.perf_counter()  # >= every sub_started; min() folds down
            finished = 0.0
            for (index, _), (result, sub_started, sub_finished) in zip(work, timed):
                shard_results[index] = result
                started = min(started, sub_started)
                finished = max(finished, sub_finished)
            # The gather merge is O(total outputs); keep it off the loop
            # thread so other batches keep flowing while it runs — but its
            # duration is real service time, so it extends the span.
            merged = await loop.run_in_executor(
                self._executor, backend.merge_batch, name, batch, shard_results, route
            )
        finally:
            backend.release_version(version)
        finished = max(finished, time.perf_counter())
        return AsyncBatchResult(
            result=merged,
            queue_seconds=started - submitted,
            service_seconds=max(0.0, finished - started),
            shards=tuple(index for index, _ in work),
        )

    @staticmethod
    def _timed_batch(
        backend, shard_index, name, accesses, tau, measure, version=None
    ):
        started = time.perf_counter()
        if shard_index is None:
            result = backend.answer_batch(name, accesses, tau=tau, measure=measure)
        else:
            result = backend.answer_shard(
                shard_index, name, accesses, tau=tau, measure=measure,
                version=version,
            )
        return result, started, time.perf_counter()

    async def answer_requests(
        self,
        requests: Iterable[Union[AccessRequest, str]],
        tenant: Optional[str] = None,
    ) -> List[List[Tuple]]:
        """Serve a typed request batch as whole shared-scan groups.

        The async face of ``open_batch``: the batch is NOT split into
        per-request jobs — each back-end group (the whole batch for a
        plain server; one group per shard for a sharded one, scatter
        requests fanning to every shard) is submitted to the worker pool
        as a unit, so one thread pays one shared traversal for many
        requests and drains it there. Returns the materialized answers
        aligned with the submitted requests, each honoring its own
        ``limit``/``start_after`` knobs; per-shard scatter answers are
        heap-merged (disjoint sorted streams) and re-capped at the
        request's limit. Holds one unit of the server's semaphore (and
        the tenant's admission slot, when gated), like :meth:`serve`;
        with read replicas the whole batch drains on the balancer's
        pick. Sharded batches pin one routing-table version for the
        whole fan-out.
        """
        batch = [as_request(request) for request in requests]
        loop = asyncio.get_running_loop()
        gate = self._tenant_gate(tenant)
        self._queue_depth(+1)
        try:
            if gate is not None:
                if gate.locked():
                    self._count_wait("tenant")
                async with gate:
                    return await self._answer_admitted(loop, batch)
            return await self._answer_admitted(loop, batch)
        finally:
            self._queue_depth(-1)

    async def _answer_admitted(
        self, loop: asyncio.AbstractEventLoop, batch: List[AccessRequest]
    ) -> List[List[Tuple]]:
        if self._semaphore.locked():
            self._count_wait("global")
        async with self._semaphore:
            if not isinstance(self.backend, ShardedViewServer):
                replica = self._pick_replica()
                server = (
                    self.backend
                    if replica is None
                    else self._replicas[replica]
                )
                if replica is not None:
                    self._replica_pending[replica] += 1
                try:
                    return await loop.run_in_executor(
                        self._executor, self._drain_open_batch, server, batch
                    )
                finally:
                    if replica is not None:
                        self._replica_pending[replica] -= 1
            backend: ShardedViewServer = self.backend
            version = backend.pin_version()
            try:
                jobs: dict = {}
                fanouts: List[int] = []
                shard_count = backend.shard_count(version)
                for index, request in enumerate(batch):
                    shard = backend.shard_of(
                        request.view, request.access, version=version
                    )
                    targets = (
                        range(shard_count) if shard is None else (shard,)
                    )
                    fanouts.append(len(targets))
                    for target in targets:
                        jobs.setdefault(target, []).append((index, request))
                job_items = list(jobs.items())
                drained = await asyncio.gather(
                    *(
                        loop.run_in_executor(
                            self._executor,
                            self._drain_open_batch,
                            backend.shard_server(shard, version),
                            [request for _, request in items],
                        )
                        for shard, items in job_items
                    )
                )
            finally:
                backend.release_version(version)
            parts: List[List[List[Tuple]]] = [[] for _ in batch]
            for (_, items), rows_per_request in zip(job_items, drained):
                for (index, _), rows in zip(items, rows_per_request):
                    parts[index].append(rows)
            answers: List[List[Tuple]] = []
            for request, pieces, fanout in zip(batch, parts, fanouts):
                if fanout == 1:
                    answers.append(pieces[0])
                    continue
                # Scatter: per-shard streams are disjoint and sorted;
                # each shard already honored the limit, so the merged
                # stream only needs re-capping.
                merged = heapq.merge(*pieces)
                if request.limit is not None:
                    answers.append(list(islice(merged, request.limit)))
                else:
                    answers.append(list(merged))
            return answers

    @staticmethod
    def _drain_open_batch(server, requests: List[AccessRequest]):
        """One worker's unit: a whole shared-scan group, opened and drained."""
        cursors = server.open_batch(requests)
        answers = []
        for cursor in cursors:
            try:
                answers.append(cursor.fetchall())
            finally:
                cursor.close()
        return answers

    async def stream(
        self,
        request: Union[AccessRequest, str],
        access: Optional[Sequence] = None,
        chunk_size: int = 32,
        limit: Optional[int] = None,
        start_after: Optional[Sequence] = None,
        tau: Optional[float] = None,
        measure: bool = False,
    ) -> AsyncIterator[List[Tuple]]:
        """Stream one access request as bounded chunks off the worker pool.

        The async face of the cursor API: the back end's ``open`` runs
        on the thread pool, then each ``chunk_size`` page is pulled with
        :meth:`~repro.engine.api.AnswerCursor.fetchmany` — also on the
        pool, so the event loop never blocks on enumeration. Every pull
        holds one unit of the server's semaphore, which is the same
        backpressure bound batches obey: a slow consumer parks the
        cursor between chunks (nothing is enumerated ahead of demand)
        rather than buffering the answer. The underlying cursor is
        closed when the generator finishes or is closed early.
        """
        if chunk_size < 1:
            raise ParameterError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        request = as_request(
            request,
            access,
            limit=limit,
            start_after=start_after,
            tau=tau,
            measure=measure,
        )
        loop = asyncio.get_running_loop()
        replica = (
            self._pick_replica()
            if not isinstance(self.backend, ShardedViewServer)
            else None
        )
        server = self.backend if replica is None else self._replicas[replica]
        if replica is not None:
            # The cursor occupies its replica for its whole life: the
            # least-pending balancer steers new work elsewhere until the
            # stream finishes.
            self._replica_pending[replica] += 1
        try:
            async with self._semaphore:
                cursor = await loop.run_in_executor(
                    self._executor, server.open, request
                )
            try:
                while True:
                    async with self._semaphore:
                        chunk = await loop.run_in_executor(
                            self._executor, cursor.fetchmany, chunk_size
                        )
                    if not chunk:
                        break
                    yield chunk
            finally:
                cursor.close()
        finally:
            if replica is not None:
                self._replica_pending[replica] -= 1

    async def serve_stream(
        self,
        name: str,
        accesses: Union[Iterable[Sequence], AsyncIterator[List[Tuple]]],
        batch_size: int = 32,
        tau: Optional[float] = None,
        measure: bool = True,
    ) -> AsyncServingReport:
        """Drain a stream, keeping up to ``max_pending`` batches in flight.

        ``accesses`` is either a plain iterable of access tuples (chunked
        into ``batch_size`` batches here) or an async iterator *of
        batches* — e.g. :func:`repro.workloads.streams.arrivals`, which
        paces batches like live traffic. Intake is backpressured: once
        ``max_pending`` batches are in flight the producer is not read
        until one completes.
        """
        started = time.perf_counter()
        builds_before = self.backend.total_builds()
        stats_before = self._stats_snapshot()
        pending = set()
        results: List[AsyncBatchResult] = []

        async def flush(keep: int) -> None:
            nonlocal pending
            while len(pending) > keep:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                # Retrieve every completed task's outcome before raising,
                # so sibling failures in the same round are not dropped as
                # never-retrieved exceptions.
                failures = []
                for task in done:
                    error = task.exception()
                    if error is not None:
                        failures.append(error)
                    else:
                        results.append(task.result())
                if failures:
                    raise failures[0]

        async def submit(chunk: List[Tuple]) -> None:
            await flush(self.max_pending - 1)
            pending.add(
                asyncio.create_task(
                    self.serve(name, chunk, tau=tau, measure=measure)
                )
            )

        try:
            if hasattr(accesses, "__aiter__"):
                async for chunk in accesses:
                    await submit([tuple(access) for access in chunk])
            else:
                for chunk in batched(accesses, batch_size):
                    await submit(chunk)
            await flush(0)
        except BaseException:
            # A failed batch must not strand its siblings: cancel and
            # drain everything still in flight before propagating.
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
            raise

        stats_after = self._stats_snapshot()
        wall = time.perf_counter() - started
        requests = sum(len(r.result.accesses) for r in results)
        unique = sum(r.result.unique_count for r in results)
        queue_times = [r.queue_seconds for r in results]
        service_times = [r.service_seconds for r in results]
        return AsyncServingReport(
            requests=requests,
            unique_requests=unique,
            shared_requests=requests - unique,
            outputs=sum(r.result.outputs for r in results),
            batches=len(results),
            builds=self.backend.total_builds() - builds_before,
            wall_seconds=wall,
            max_step_gap=max(
                (r.result.max_step_gap for r in results), default=0
            ),
            queue_seconds_max=max(queue_times, default=0.0),
            queue_seconds_mean=(
                sum(queue_times) / len(queue_times) if queue_times else 0.0
            ),
            service_seconds_mean=(
                sum(service_times) / len(service_times)
                if service_times
                else 0.0
            ),
            cache=stats_after.delta(stats_before),
        )

    def _stats_snapshot(self) -> CacheStats:
        return self.backend.cache_stats

    # ------------------------------------------------------------------
    # life cycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Re-arm the semaphores for a fresh event loop (idle servers only)."""
        self._semaphore = asyncio.Semaphore(self.max_pending)
        # Tenant gates bind to the old loop too; they re-create lazily.
        self._tenant_gates.clear()

    def close(self) -> None:
        """Shut the thread pool down (idempotent).

        A backend constructed by this facade (from a bare database) is
        owned by it, so its build worker pool is released too.
        """
        self._executor.shutdown(wait=True)
        if self._owns_backend:
            self.backend.close()
        if self._owns_telemetry and self._telemetry is not None:
            self._telemetry.close()

    async def __aenter__(self) -> "AsyncViewServer":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        # shutdown(wait=True) joins worker threads; keep that off the
        # event loop so sibling tasks are not frozen behind a slow build.
        await asyncio.get_running_loop().run_in_executor(None, self.close)
