"""Named lock construction with a pluggable factory.

Every lock in the engine is created through :func:`named_lock` instead
of calling ``threading.Lock()`` directly. In production the two are
identical — the default factory returns plain ``threading`` locks with
zero overhead. The indirection exists for the dynamic lock-order
detector (:mod:`repro.analysis.lockorder`): installing a factory with
:func:`set_lock_factory` lets a test session substitute instrumented
locks that record the runtime acquisition graph, without the engine
modules knowing anything about instrumentation.

Lock *names* are stable identifiers (``"cache"``, ``"sharding.admin"``)
naming the role, not the instance: many instances of a class share one
name, and the lock-order graph reasons at name granularity. Names never
appear in error messages users see; they exist for diagnostics.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

#: A factory takes ``(name, reentrant)`` and returns a lock object
#: honouring the context-manager protocol plus ``acquire``/``release``.
LockFactory = Callable[[str, bool], object]

_factory: Optional[LockFactory] = None


def named_lock(name: str, *, reentrant: bool = False) -> object:
    """Create a lock for the role ``name`` via the installed factory.

    With no factory installed (the production default) this returns
    ``threading.RLock()`` when ``reentrant`` else ``threading.Lock()``.
    """
    if _factory is not None:
        return _factory(name, reentrant)
    return threading.RLock() if reentrant else threading.Lock()


def set_lock_factory(factory: Optional[LockFactory]) -> Optional[LockFactory]:
    """Install ``factory`` (or ``None`` to restore the default).

    Returns the previously installed factory so callers can restore it
    — the pytest lock-order fixture does exactly that. Only locks
    created *after* installation go through the factory; existing locks
    are untouched, so install before constructing the objects under
    test.
    """
    global _factory
    previous = _factory
    _factory = factory
    return previous
