"""Hash-sharded serving: partition the bound-value space across servers.

The ROADMAP's scale-out step: one :class:`~repro.engine.server.ViewServer`
per shard, each owning a slice of the database and its own bounded
:class:`~repro.engine.cache.RepresentationCache`. Sharding multiplies the
aggregate cache capacity (per-shard structures are fractions of the full
ones, so a fixed per-process cell budget holds *all* hot views instead of
thrashing) and gives the async front end independent back ends to fan
batches out to.

Partitioning
------------
A *shard key* maps relation names to column positions that all hold the
same query variable. Every listed relation is split by
``stable_hash(value) % n_shards`` on its key column; unlisted relations
are shared (the same immutable :class:`~repro.database.relation.Relation`
object in every shard, no copies). Because a result tuple binding the
shard variable to ``v`` can only draw key-relation tuples carrying ``v``,
each result lives in exactly one shard: per-shard answers are disjoint
and their union is the full answer.

Routing
-------
Per registered view, the shard key's columns must resolve to one head
variable of the view (validated at registration — self-joins that place
different variables on a key column are rejected):

* variable **bound** → every access request pins its shard; batches are
  split and routed, each shard serving only its slice;
* variable **free** → *scatter-gather*: every shard answers the full
  batch over its slice and the sorted per-shard answer lists are merged
  (disjointness makes the merge a plain ordered union);
* view touches **no sharded relation** → its relations are replicated in
  every shard, so requests are pinned to shard 0.
"""

from __future__ import annotations

import heapq
import threading
import zlib
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.structure import CompressedRepresentation
from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.engine.api import AccessRequest, AnswerCursor, as_request
from repro.engine.cache import CacheStats
from repro.engine.parallel import ParallelBuilder
from repro.engine.server import (
    BatchResult,
    Registration,
    ServingReport,
    ViewServer,
    drain_stream,
)
from repro.exceptions import ParameterError, SchemaError
from repro.measure.delay import DelayStats
from repro.query.adorned import AdornedView
from repro.query.atoms import Variable
from repro.query.parser import parse_view

ShardKey = Mapping[str, int]

# Routing modes resolved at registration time.
ROUTED = "routed"
SCATTER = "scatter"
PINNED = "pinned"


def stable_hash(value: object) -> int:
    """An equality-consistent, restart-stable hash of one bound value.

    Routing must agree with ``==`` (equal values answer identically on an
    unsharded server, so they must pin the same shard) and ideally not
    move across process restarts. Python's builtin ``hash`` is
    equality-consistent by contract but salted per process for strings,
    while textual hashing is restart-stable but blind to equality
    (``1`` vs ``1.0``, or ``(1,)`` vs ``(1.0,)``). So: strings and bytes
    hash via CRC32 of their contents, tuples via a CRC fold of their
    elements' ``stable_hash`` (restart-stable all the way down), and
    everything else — numbers, user types, exotic containers — via the
    builtin ``hash``. The fallback keeps equality-consistency always;
    restart stability there is only as strong as the value's own
    ``__hash__`` (exact for numbers, salted for e.g. frozensets of
    strings).
    """
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return zlib.crc32(bytes(value))
    if isinstance(value, tuple):
        # Fold element hashes so equal tuples of equal (possibly
        # mixed-type) elements agree, e.g. (1,) and (1.0,).
        acc = len(value)
        for element in value:
            acc = zlib.crc32(stable_hash(element).to_bytes(4, "big"), acc)
        return acc
    return hash(value) & 0xFFFFFFFF


def infer_shard_key(view: AdornedView) -> Dict[str, int]:
    """Derive a shard key from one view: the first shardable head variable.

    Bound head variables are preferred (their requests route to a single
    shard); free head variables are the fallback (scatter-gather). A
    variable is shardable when every atom mentioning it uses a consistent
    column per relation — self-joins that move it between columns
    disqualify it.
    """
    for var in view.bound_variables + view.free_variables:
        key: Dict[str, int] = {}
        consistent = True
        found = False
        for atom in view.atoms:
            positions = atom.variable_positions(var)
            if not positions:
                continue
            found = True
            column = positions[0]
            if key.setdefault(atom.relation, column) != column:
                consistent = False
                break
        if not (found and consistent):
            continue
        # Partitioning splits *every* atom of a listed relation, so a
        # self-join whose other atom binds a different variable on the
        # key column disqualifies the candidate too.
        if all(
            atom.terms[key[atom.relation]] == var
            for atom in view.atoms
            if atom.relation in key
        ):
            return key
    raise SchemaError(
        f"view {view.name!r}: no head variable occupies a consistent "
        "column per relation; pass an explicit shard key"
    )


def partition_database(
    db: Database,
    shard_key: ShardKey,
    n_shards: int,
    hash_fn=stable_hash,
) -> List[Database]:
    """Split ``db`` into ``n_shards`` databases along the shard key.

    Listed relations are partitioned by ``hash_fn(row[column]) % n_shards``;
    all other relations are shared by reference. Empty slices are kept
    (a shard may legitimately own no tuples of some relation).
    """
    if n_shards < 1:
        raise ParameterError(f"n_shards must be >= 1, got {n_shards}")
    if not shard_key:
        raise ParameterError("shard_key must list at least one relation")
    for name, column in shard_key.items():
        relation = db[name]  # raises SchemaError for unknown relations
        if not 0 <= column < relation.arity:
            raise ParameterError(
                f"shard key column {column} out of range for relation "
                f"{name!r} of arity {relation.arity}"
            )
    buckets: Dict[str, List[List[Tuple]]] = {
        name: [[] for _ in range(n_shards)] for name in shard_key
    }
    for name, column in shard_key.items():
        rows_by_shard = buckets[name]
        for row in db[name]:
            rows_by_shard[hash_fn(row[column]) % n_shards].append(row)
    shards: List[Database] = []
    for index in range(n_shards):
        relations = []
        for relation in db:
            if relation.name in shard_key:
                relations.append(
                    Relation(
                        relation.name,
                        relation.arity,
                        buckets[relation.name][index],
                    )
                )
            else:
                relations.append(relation)
        shards.append(Database(relations))
    return shards


def merge_delay_stats(parts: Sequence[DelayStats]) -> DelayStats:
    """Conservatively combine per-shard stats of one scattered request.

    Outputs, steps and wall totals add up; gaps take the worst shard
    (the merged enumeration interleaves shards, so no merged gap exceeds
    the worst per-shard gap plus merge overhead, which cells don't see).
    """
    merged = DelayStats()
    for stats in parts:
        merged.outputs += stats.outputs
        merged.wall_total += stats.wall_total
        merged.wall_max_gap = max(merged.wall_max_gap, stats.wall_max_gap)
        merged.wall_first = max(merged.wall_first, stats.wall_first)
        merged.step_total += stats.step_total
        merged.step_max_gap = max(merged.step_max_gap, stats.step_max_gap)
        merged.step_gaps.extend(stats.step_gaps)
    return merged


class ShardedViewServer:
    """N hash-partitioned :class:`ViewServer` back ends behind one facade.

    Mirrors the ``ViewServer`` serving surface (``register`` / ``open`` /
    ``open_batch`` / ``answer`` / ``answer_batch`` / ``serve_stream`` /
    ``total_builds`` / ``cache_stats``) so callers — including
    :class:`~repro.engine.async_server.AsyncViewServer`, which fans the
    per-shard sub-batches out to its thread pool — can treat both
    interchangeably.

    Parameters
    ----------
    db:
        The full database; it is partitioned once at construction.
    n_shards:
        Number of shards (>= 1).
    shard_key:
        Mapping of relation names to key column positions (required and
        non-empty). Every listed relation is partitioned; the rest are
        shared. :func:`infer_shard_key` derives one from a
        representative view.
    max_entries / max_cells:
        Representation-cache bounds **per shard** — sharding multiplies
        the aggregate budget, which is exactly its point.
    snapshot_dir:
        Optional warm-start directory; each shard persists under its own
        ``shard-N`` subdirectory, fingerprinted with its own database
        slice (so a resharded or re-keyed partition refuses stale
        snapshots shard by shard).
    cache_policy:
        Per-shard cache eviction policy (``"lru"`` or ``"cost"``).
    build_workers:
        Size of ONE :class:`~repro.engine.parallel.ParallelBuilder`
        process pool shared by every shard, so per-shard structure
        construction uses real cores while total build parallelism stays
        bounded. ``None`` keeps builds in-process.
    """

    def __init__(
        self,
        db: Database,
        n_shards: int,
        shard_key: ShardKey,
        max_entries: Optional[int] = 8,
        max_cells: Optional[int] = None,
        hash_fn=stable_hash,
        snapshot_dir: Optional[Union[str, Path]] = None,
        cache_policy: str = "lru",
        build_workers: Optional[int] = None,
    ):
        self.shard_key: Dict[str, int] = dict(shard_key or {})
        self.databases = partition_database(
            db, self.shard_key, n_shards, hash_fn=hash_fn
        )
        self._builder: Optional[ParallelBuilder] = (
            ParallelBuilder(build_workers)
            if build_workers is not None
            else None
        )
        self.shards: List[ViewServer] = [
            ViewServer(
                shard_db,
                max_entries=max_entries,
                max_cells=max_cells,
                snapshot_dir=(
                    Path(snapshot_dir) / f"shard-{index}"
                    if snapshot_dir is not None
                    else None
                ),
                cache_policy=cache_policy,
                builder=self._builder,
            )
            for index, shard_db in enumerate(self.databases)
        ]
        self._hash_fn = hash_fn
        # Maps name -> (mode, bound position); None marks a registration
        # in flight (the name is claimed but not yet routable).
        self._routes: Dict[str, Optional[Tuple[str, Optional[int]]]] = {}
        self._routes_lock = threading.Lock()
        self._served_lock = threading.Lock()
        self._requests_served = 0

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------
    # registration and routing
    # ------------------------------------------------------------------
    def _resolve_route(self, view: AdornedView) -> Tuple[str, Optional[int]]:
        """(mode, bound position) the shard key implies for one view."""
        variables = set()
        for atom in view.atoms:
            column = self.shard_key.get(atom.relation)
            if column is None:
                continue
            if column >= atom.arity:
                raise SchemaError(
                    f"view {view.name!r}: shard key column {column} out of "
                    f"range for atom {atom!r}"
                )
            term = atom.terms[column]
            if not isinstance(term, Variable):
                raise SchemaError(
                    f"view {view.name!r}: shard key column of {atom!r} "
                    f"holds constant {term!r}; shard routing needs a "
                    "variable"
                )
            variables.add(term)
        if not variables:
            return (PINNED, 0)  # no sharded relation: replicated everywhere
        if len(variables) > 1:
            raise SchemaError(
                f"view {view.name!r}: shard key columns bind distinct "
                f"variables {sorted(v.name for v in variables)}; per-shard "
                "answers would not partition the result"
            )
        (variable,) = variables
        bound = view.bound_variables
        if variable in bound:
            return (ROUTED, bound.index(variable))
        if variable in view.free_variables:
            return (SCATTER, None)
        raise SchemaError(
            f"view {view.name!r}: shard variable {variable.name!r} is "
            "projected away; per-shard answers may overlap (pick a head "
            "variable as the shard key)"
        )

    def register(
        self,
        view: Union[AdornedView, str],
        tau: Optional[float] = None,
        space_budget: Optional[float] = None,
        delay_budget: Optional[float] = None,
        name: Optional[str] = None,
    ) -> str:
        """Register a view on every shard; returns the serving name.

        Budget-driven τ selection runs per shard against the shard's own
        relation sizes — shards sit at their own points of the
        space/delay tradeoff, which is what a per-shard cache budget
        means.
        """
        if isinstance(view, str):
            view = parse_view(view)
        route = self._resolve_route(view)
        intended = name or view.name
        with self._routes_lock:
            # Claim the name first so concurrent registrations of the
            # same name fail fast instead of half-registering both.
            if intended in self._routes:
                raise SchemaError(f"view {intended!r} is already registered")
            self._routes[intended] = None
        registered: List[ViewServer] = []
        try:
            for server in self.shards:
                resolved = server.register(
                    view,
                    tau=tau,
                    space_budget=space_budget,
                    delay_budget=delay_budget,
                    name=name,
                )
                assert resolved == intended
                registered.append(server)
        except BaseException:
            # All shards or none: a half-registered view would wedge the
            # name (unroutable here, 'already registered' on retry).
            for server in registered:
                server.unregister(intended)
            with self._routes_lock:
                del self._routes[intended]
            raise
        with self._routes_lock:
            self._routes[intended] = route
        return intended

    def unregister(self, name: str) -> bool:
        """Drop a view from every shard and the route table; True if known."""
        with self._routes_lock:
            # A None route is a registration still in flight — not ours
            # to drop; concurrent unregisters see the claim gone and
            # return False instead of racing the per-shard sweep.
            if self._routes.get(name) is None:
                return False
            del self._routes[name]
        for server in self.shards:
            server.unregister(name)
        return True

    def route(self, name: str) -> Tuple[str, Optional[int]]:
        """The (mode, bound position) pair a view was registered with."""
        with self._routes_lock:
            route = self._routes.get(name)
        if route is None:  # unknown, or a registration still in flight
            raise SchemaError(f"unknown view {name!r}")
        return route

    def registration(self, name: str) -> Registration:
        """Shard 0's registration — representative, not universal.

        Under a budget policy each shard optimizes τ against its own
        relation sizes, so other shards may sit at different τ; inspect
        ``server.shards[i].registration(name)`` for the full picture.
        """
        self.route(name)
        return self.shards[0].registration(name)

    def views(self) -> Tuple[str, ...]:
        with self._routes_lock:
            return tuple(
                name
                for name, route in self._routes.items()
                if route is not None
            )

    def shard_of(self, name: str, access: Sequence) -> Optional[int]:
        """The shard one access pins, or ``None`` for scatter views."""
        mode, position = self.route(name)
        if mode == SCATTER:
            return None
        if mode == PINNED:
            return 0
        access = tuple(access)
        if position >= len(access):
            raise SchemaError(
                f"view {name!r}: access tuple {access!r} too short for "
                f"bound position {position}"
            )
        return self._hash_fn(access[position]) % self.n_shards

    # ------------------------------------------------------------------
    # builds
    # ------------------------------------------------------------------
    def prebuild(
        self, name: str, tau: Optional[float] = None
    ) -> List[CompressedRepresentation]:
        """Build (or warm-load) one view's structure on every shard, at once.

        Lazy serving builds each shard's structure on its first request —
        fine for routed traffic, but a scatter view's first batch pays
        every shard's build back to back. This fans the builds out: one
        thread per shard drives that shard's cached build path, and with
        a shared :class:`~repro.engine.parallel.ParallelBuilder` the
        builds land on worker *processes*, using real cores. Returns the
        per-shard structures, shard order.
        """
        self.route(name)  # unknown views fail before any build starts
        if self.n_shards == 1:
            return [self.shards[0].representation(name, tau)]
        with ThreadPoolExecutor(
            max_workers=self.n_shards, thread_name_prefix="repro-prebuild"
        ) as pool:
            futures = [
                pool.submit(server.representation, name, tau)
                for server in self.shards
            ]
            return [future.result() for future in futures]

    def close(self) -> None:
        """Release the shared build worker pool (serving keeps working)."""
        for server in self.shards:
            server.close()
        if self._builder is not None:
            self._builder.close()

    @property
    def builder(self) -> Optional[ParallelBuilder]:
        return self._builder

    # ------------------------------------------------------------------
    # batch planning, execution, merging
    # ------------------------------------------------------------------
    def plan_batch(
        self,
        name: str,
        accesses: Iterable[Sequence],
        route: Optional[Tuple[str, Optional[int]]] = None,
    ) -> List[List[Tuple]]:
        """Per-shard sub-batches for one batch (index-aligned to shards).

        Scatter views repeat the whole batch on every shard; routed views
        split it; shards with no work get an empty list, which execution
        skips. Callers serving a whole batch resolve the route once and
        pass it to both this and :meth:`merge_batch`, so a concurrent
        re-registration cannot flip the mode between plan and merge.
        """
        batch = [tuple(access) for access in accesses]
        mode, position = route or self.route(name)
        if mode == SCATTER:
            return [list(batch) for _ in range(self.n_shards)]
        if mode == PINNED:
            return [batch] + [[] for _ in range(self.n_shards - 1)]
        sub_batches: List[List[Tuple]] = [[] for _ in range(self.n_shards)]
        for access in batch:
            if position >= len(access):
                raise SchemaError(
                    f"view {name!r}: access tuple {access!r} too short for "
                    f"bound position {position}"
                )
            sub_batches[
                self._hash_fn(access[position]) % self.n_shards
            ].append(access)
        return sub_batches

    def answer_shard(
        self,
        shard_index: int,
        name: str,
        accesses: Sequence[Sequence],
        tau: Optional[float] = None,
        measure: bool = True,
    ) -> BatchResult:
        """One shard's answer to its sub-batch (the fan-out work unit)."""
        return self.shards[shard_index].answer_batch(
            name, accesses, tau=tau, measure=measure
        )

    def merge_batch(
        self,
        name: str,
        accesses: Iterable[Sequence],
        shard_results: Sequence[Optional[BatchResult]],
        route: Optional[Tuple[str, Optional[int]]] = None,
    ) -> BatchResult:
        """Gather per-shard results back into one batch-aligned result.

        ``route`` must be the same resolution the batch was planned with
        (see :meth:`plan_batch`); merging scatter-planned results in
        routed mode would silently drop rows.
        """
        batch = tuple(tuple(access) for access in accesses)
        mode, _ = route or self.route(name)
        unique = sorted(set(batch))
        answers_by_access: Dict[Tuple, List[Tuple]] = {}
        stats: Dict[Tuple, DelayStats] = {}
        if mode == SCATTER:
            per_shard: List[Dict[Tuple, List[Tuple]]] = []
            per_shard_stats: List[Dict[Tuple, DelayStats]] = []
            for result in shard_results:
                if result is None:
                    continue
                per_shard.append(dict(zip(result.accesses, result.answers)))
                per_shard_stats.append(dict(result.request_stats))
            for access in unique:
                parts = [
                    shard_answers[access]
                    for shard_answers in per_shard
                    if access in shard_answers
                ]
                # Shards partition the result space, so the sorted
                # per-shard lists are disjoint: merging is a plain union.
                answers_by_access[access] = list(heapq.merge(*parts))
                measured = [
                    shard_stats[access]
                    for shard_stats in per_shard_stats
                    if access in shard_stats
                ]
                if measured:
                    stats[access] = merge_delay_stats(measured)
        else:
            for result in shard_results:
                if result is None:
                    continue
                for access, rows in zip(result.accesses, result.answers):
                    answers_by_access[access] = rows
                stats.update(result.request_stats)
        missing = [a for a in unique if a not in answers_by_access]
        if missing:
            raise SchemaError(
                f"view {name!r}: shard results missing accesses {missing!r}"
            )
        with self._served_lock:
            # Facade-level count: a scattered request is still one request,
            # however many shards its fan-out touched.
            self._requests_served += len(batch)
        return BatchResult(
            accesses=batch,
            answers=tuple(answers_by_access[access] for access in batch),
            request_stats=stats,
            unique_count=len(unique),
        )

    # ------------------------------------------------------------------
    # serving (sequential executor; the async front end parallelizes)
    # ------------------------------------------------------------------
    def open(
        self,
        request: Union[AccessRequest, str],
        access: Optional[Sequence] = None,
        limit: Optional[int] = None,
        start_after: Optional[Sequence] = None,
        tau: Optional[float] = None,
        measure: bool = False,
    ) -> AnswerCursor:
        """Open a streaming cursor through the routing layer.

        Routed and pinned views return the owning shard's cursor
        directly. Scatter views open one cursor per shard and merge them
        lazily with a k-way heap (per-shard answers are disjoint and
        sorted, so the merged stream is the full answer in lexicographic
        head order) — the materialize-then-merge path is gone from the
        cursor plane: with ``limit=k`` each shard enumerates at most k
        tuples (the shared limit caps every sub-cursor, and the heap
        pulls lazily), instead of its full per-shard answer. Resume
        tokens distribute as-is: every shard seeks past the token within
        its own slice. The per-shard sub-cursors are exposed as the
        merged cursor's ``parts`` (shard order), whose ``stats()``
        bound the per-shard enumeration work.
        """
        request = as_request(
            request,
            access,
            limit=limit,
            start_after=start_after,
            tau=tau,
            measure=measure,
        )
        mode, position = self.route(request.view)
        if mode != SCATTER:
            shard = 0
            if mode == ROUTED:
                if position >= len(request.access):
                    raise SchemaError(
                        f"view {request.view!r}: access tuple "
                        f"{request.access!r} too short for bound position "
                        f"{position}"
                    )
                shard = (
                    self._hash_fn(request.access[position]) % self.n_shards
                )
            cursor = self.shards[shard].open(request)
        else:
            parts: List[AnswerCursor] = []
            try:
                for server in self.shards:
                    parts.append(server.open(request))
            except BaseException:
                for part in parts:
                    part.close()
                raise
            cursor = AnswerCursor(request, heapq.merge(*parts), parts=parts)
        with self._served_lock:
            # Facade-level count: one request, however many shards the
            # scatter fan-out touched.
            self._requests_served += 1
        return cursor

    def open_batch(
        self, requests: Iterable[Union[AccessRequest, str]]
    ) -> List[AnswerCursor]:
        """Open cursors for a whole request batch through the routing layer.

        Routed and pinned requests are grouped per owning shard and each
        shard serves its sub-batch as ONE shared scan
        (:meth:`ViewServer.open_batch <repro.engine.server.ViewServer.open_batch>`);
        scatter requests ride one shared scan *per shard* over the whole
        scatter sub-batch, and each request gets a lazy k-way heap merge
        of its per-shard cursors (disjoint sorted streams, exactly as
        :meth:`open` builds them, ``parts`` exposed in shard order). The
        returned cursors align with the submitted requests; the usual
        shared-scan caveats apply per shard group (single-threaded
        consumption, group fate sharing).
        """
        batch = [as_request(request) for request in requests]
        cursors: List[Optional[AnswerCursor]] = [None] * len(batch)
        by_shard: Dict[int, List[int]] = {}
        scatter: List[int] = []
        for index, request in enumerate(batch):
            shard = self.shard_of(request.view, request.access)
            if shard is None:
                scatter.append(index)
            else:
                by_shard.setdefault(shard, []).append(index)
        for shard, indexes in by_shard.items():
            shard_cursors = self.shards[shard].open_batch(
                [batch[index] for index in indexes]
            )
            for index, cursor in zip(indexes, shard_cursors):
                cursors[index] = cursor
        if scatter:
            scatter_requests = [batch[index] for index in scatter]
            per_shard: List[List[AnswerCursor]] = []
            try:
                for server in self.shards:
                    per_shard.append(server.open_batch(scatter_requests))
            except BaseException:
                for opened in per_shard:
                    for cursor in opened:
                        cursor.close()
                raise
            for position, index in enumerate(scatter):
                parts = [opened[position] for opened in per_shard]
                cursors[index] = AnswerCursor(
                    batch[index], heapq.merge(*parts), parts=parts
                )
        with self._served_lock:
            self._requests_served += len(batch)
        return cursors

    def answer(self, name: str, access: Sequence) -> List[Tuple]:
        """Answer one access request through the routing layer."""
        with self.open(name, access) as cursor:
            return cursor.fetchall()

    def answer_batch(
        self,
        name: str,
        accesses: Iterable[Sequence],
        tau: Optional[float] = None,
        measure: bool = True,
    ) -> BatchResult:
        batch = [tuple(access) for access in accesses]
        route = self.route(name)
        plan = self.plan_batch(name, batch, route=route)
        shard_results: List[Optional[BatchResult]] = [
            self.answer_shard(index, name, sub_batch, tau=tau, measure=measure)
            if sub_batch
            else None
            for index, sub_batch in enumerate(plan)
        ]
        return self.merge_batch(name, batch, shard_results, route=route)

    def serve_stream(
        self,
        name: str,
        accesses: Iterable[Sequence],
        batch_size: int = 32,
        tau: Optional[float] = None,
        measure: bool = True,
    ) -> ServingReport:
        """Drain a stream through the routing layer, one batch at a time."""
        return drain_stream(
            self, name, accesses, batch_size=batch_size, tau=tau, measure=measure
        )

    # ------------------------------------------------------------------
    # aggregation and introspection
    # ------------------------------------------------------------------
    def total_builds(self) -> int:
        return sum(server.total_builds() for server in self.shards)

    @property
    def cache_stats(self) -> CacheStats:
        merged = CacheStats()
        for server in self.shards:
            merged.add(server.cache_stats)
        return merged

    @property
    def total_cache_cells(self) -> int:
        """Cells resident across every shard's cache (aggregate budget)."""
        return sum(server.cache.total_cells for server in self.shards)

    @property
    def requests_served(self) -> int:
        with self._served_lock:
            return self._requests_served

    def invalidate(self, name: str) -> int:
        self.route(name)
        return sum(server.invalidate(name) for server in self.shards)
