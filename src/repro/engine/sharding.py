"""Hash-sharded serving: partition the bound-value space across servers.

The ROADMAP's scale-out step: one :class:`~repro.engine.server.ViewServer`
per shard, each owning a slice of the database and its own bounded
:class:`~repro.engine.cache.RepresentationCache`. Sharding multiplies the
aggregate cache capacity (per-shard structures are fractions of the full
ones, so a fixed per-process cell budget holds *all* hot views instead of
thrashing) and gives the async front end independent back ends to fan
batches out to.

Partitioning
------------
A *shard key* maps relation names to column positions that all hold the
same query variable. Every listed relation is split along a
:class:`~repro.engine.topology.RoutingTable` — versioned rendezvous
placement over :func:`~repro.engine.topology.stable_hash` — on its key
column; unlisted relations are **copied** into every shard (each shard's
``Database`` owns its relations — no aliasing, so a delta applied through
one shard can never bleed into a sibling or a replica), and optionally
*semijoin-reduced* per registered view against the shard's slice so
per-shard structures shrink. Because a result tuple binding the shard
variable to ``v`` can only draw key-relation tuples carrying ``v``, each
result lives in exactly one shard: per-shard answers are disjoint and
their union is the full answer.

Routing
-------
Per registered view, the shard key's columns must resolve to one head
variable of the view (validated at registration — self-joins that place
different variables on a key column are rejected):

* variable **bound** → every access request pins its shard; batches are
  split and routed, each shard serving only its slice;
* variable **free** → *scatter-gather*: every shard answers the full
  batch over its slice and the sorted per-shard answer lists are merged
  (disjointness makes the merge a plain ordered union);
* view touches **no sharded relation** → its relations are replicated in
  every shard, so requests are pinned to shard 0.

Elastic topology
----------------
:meth:`ShardedViewServer.split_shard` grows the topology live: the hot
shard's slice — and only that slice — is re-partitioned between two
child shards by the next routing-table version, the children register
every current view and warm their structures through the shared
:class:`~repro.engine.parallel.ParallelBuilder` while the old topology
keeps serving, and then the new table is cut over atomically. In-flight
cursors and shared scans *pin* the routing-table version they opened
under (released by a cursor close hook); new requests take the new
table; the old shard retires — its resident structures demoted to its
snapshot tier — once its version's pin count drains to zero.
"""

from __future__ import annotations

import heapq
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.structure import CompressedRepresentation
from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.engine.api import AccessRequest, AnswerCursor, as_request
from repro.engine.cache import CacheStats
from repro.engine.locking import named_lock
from repro.engine.parallel import ParallelBuilder
from repro.engine.server import (
    BatchResult,
    Registration,
    ServingReport,
    ViewServer,
    drain_stream,
)
from repro.engine.telemetry import Telemetry
from repro.engine.topology import RoutingTable, stable_hash
from repro.exceptions import ParameterError, SchemaError
from repro.joins.semijoin import semijoin
from repro.measure.delay import DelayStats
from repro.query.adorned import AdornedView
from repro.query.atoms import Variable
from repro.query.parser import parse_view

__all__ = [
    "ShardedViewServer",
    "SplitReport",
    "infer_shard_key",
    "merge_delay_stats",
    "partition_database",
    "semijoin_reduce_database",
    "stable_hash",
]

ShardKey = Mapping[str, int]

# Routing modes resolved at registration time.
ROUTED = "routed"
SCATTER = "scatter"
PINNED = "pinned"


def infer_shard_key(view: AdornedView) -> Dict[str, int]:
    """Derive a shard key from one view: the first shardable head variable.

    Bound head variables are preferred (their requests route to a single
    shard); free head variables are the fallback (scatter-gather). A
    variable is shardable when every atom mentioning it uses a consistent
    column per relation — self-joins that move it between columns
    disqualify it.
    """
    for var in view.bound_variables + view.free_variables:
        key: Dict[str, int] = {}
        consistent = True
        found = False
        for atom in view.atoms:
            positions = atom.variable_positions(var)
            if not positions:
                continue
            found = True
            column = positions[0]
            if key.setdefault(atom.relation, column) != column:
                consistent = False
                break
        if not (found and consistent):
            continue
        # Partitioning splits *every* atom of a listed relation, so a
        # self-join whose other atom binds a different variable on the
        # key column disqualifies the candidate too.
        if all(
            atom.terms[key[atom.relation]] == var
            for atom in view.atoms
            if atom.relation in key
        ):
            return key
    raise SchemaError(
        f"view {view.name!r}: no head variable occupies a consistent "
        "column per relation; pass an explicit shard key"
    )


def _validate_shard_key(db: Database, shard_key: ShardKey) -> None:
    if not shard_key:
        raise ParameterError("shard_key must list at least one relation")
    for name, column in shard_key.items():
        relation = db[name]  # raises SchemaError for unknown relations
        if not 0 <= column < relation.arity:
            raise ParameterError(
                f"shard key column {column} out of range for relation "
                f"{name!r} of arity {relation.arity}"
            )


def partition_database(
    db: Database,
    shard_key: ShardKey,
    topology: Union[int, RoutingTable],
    hash_fn=stable_hash,
) -> List[Database]:
    """Split ``db`` into per-shard databases along the routing table.

    ``topology`` is either a shard count (a fresh version-1
    :class:`~repro.engine.topology.RoutingTable` is built over
    ``hash_fn``) or an existing table (its own hash function governs;
    ``hash_fn`` is ignored). Listed relations are partitioned by
    rendezvous placement of ``row[column]``; all other relations are
    **copied** per shard — never shared by reference, so one shard's
    database can be mutated, swapped, or shipped without aliasing its
    siblings. Empty slices are kept (a shard may legitimately own no
    tuples of some relation). Returns one database per
    ``topology.shard_ids`` entry, in that order.
    """
    if not isinstance(topology, RoutingTable):
        topology = RoutingTable.fresh(int(topology), hash_fn=hash_fn)
    _validate_shard_key(db, shard_key)
    buckets: Dict[str, Dict[str, List[Tuple]]] = {
        name: {shard: [] for shard in topology.shard_ids}
        for name in shard_key
    }
    for name, column in shard_key.items():
        rows_by_shard = buckets[name]
        for row in db[name]:
            rows_by_shard[topology.shard_for(row[column])].append(row)
    shards: List[Database] = []
    for shard in topology.shard_ids:
        relations = []
        for relation in db:
            rows = (
                buckets[relation.name][shard]
                if relation.name in shard_key
                else relation.rows
            )
            relations.append(Relation(relation.name, relation.arity, rows))
        shards.append(Database(relations))
    return shards


def semijoin_reduce_database(
    db: Database, view: AdornedView, shard_key: ShardKey
) -> Database:
    """Shrink one shard's replicated relations to rows that can join its slice.

    Unpartitioned (replicated) relations carry every tuple into every
    shard, but a shard can only produce answers joining its *own* slice
    of the sharded relations — so for one view, a replicated row that
    agrees with no slice row on the variables they share is dangling and
    can be dropped. Per atom over a replicated relation, survivors are
    semijoined against every sharded atom sharing at least one variable
    (self-join occurrences union their survivor sets); the filter only
    ever keeps a superset of the rows any per-shard answer can use, so
    per-shard answers are unchanged while per-shard structures shrink.
    Relations the view never mentions are left untouched (the reduction
    is applied per *registration*, never to the shard's shared database).
    """
    sharded_atoms = [
        atom for atom in view.atoms if atom.relation in shard_key
    ]
    replicated = {
        atom.relation
        for atom in view.atoms
        if atom.relation not in shard_key
    }
    if not sharded_atoms or not replicated:
        return db
    reduced = db
    for name in sorted(replicated):
        relation = db[name]
        kept: set = set()
        filtered = False
        for atom in view.atoms:
            if atom.relation != name:
                continue
            survivors = {tuple(row) for row in relation}
            atom_vars = {
                term for term in atom.terms if isinstance(term, Variable)
            }
            for partner in sharded_atoms:
                partner_vars = {
                    term
                    for term in partner.terms
                    if isinstance(term, Variable)
                }
                if not (atom_vars & partner_vars):
                    continue
                filtered = True
                survivors = semijoin(
                    survivors,
                    atom.terms,
                    db[partner.relation],
                    partner.terms,
                )
            kept |= survivors
        if filtered and len(kept) < len(relation):
            reduced = reduced.replace(
                Relation(name, relation.arity, kept)
            )
    return reduced


def merge_delay_stats(parts: Sequence[DelayStats]) -> DelayStats:
    """Conservatively combine per-shard stats of one scattered request.

    Outputs, steps and wall totals add up; gaps take the worst shard
    (the merged enumeration interleaves shards, so no merged gap exceeds
    the worst per-shard gap plus merge overhead, which cells don't see).
    """
    merged = DelayStats()
    for stats in parts:
        merged.outputs += stats.outputs
        merged.wall_total += stats.wall_total
        merged.wall_max_gap = max(merged.wall_max_gap, stats.wall_max_gap)
        merged.wall_first = max(merged.wall_first, stats.wall_first)
        merged.step_total += stats.step_total
        merged.step_max_gap = max(merged.step_max_gap, stats.step_max_gap)
        merged.step_gaps.extend(stats.step_gaps)
    return merged


@dataclass(frozen=True)
class SplitReport:
    """What one :meth:`ShardedViewServer.split_shard` actually did."""

    shard_id: str
    children: Tuple[str, ...]
    version_before: int
    version_after: int
    moved_rows: int  # key-relation rows re-placed (all from the split shard)
    demoted_snapshots: int  # parent structures demoted to its disk tier
    warmed_views: Tuple[str, ...]
    retired_immediately: bool  # no pins held: the parent retired at cutover


class _Topology:
    """One live routing-table version: its table, shard servers, and pins."""

    __slots__ = ("table", "shard_ids", "servers", "pins")

    def __init__(self, table: RoutingTable, servers: Sequence[ViewServer]):
        self.table = table
        self.shard_ids = table.shard_ids
        self.servers: Tuple[ViewServer, ...] = tuple(servers)
        self.pins = 0

    @property
    def version(self) -> int:
        return self.table.version


class ShardedViewServer:
    """N hash-partitioned :class:`ViewServer` back ends behind one facade.

    Mirrors the ``ViewServer`` serving surface (``register`` / ``open`` /
    ``open_batch`` / ``answer`` / ``answer_batch`` / ``serve_stream`` /
    ``total_builds`` / ``cache_stats``) so callers — including
    :class:`~repro.engine.async_server.AsyncViewServer`, which fans the
    per-shard sub-batches out to its thread pool — can treat both
    interchangeably.

    Parameters
    ----------
    db:
        The full database; it is partitioned once at construction.
    n_shards:
        Number of shards (>= 1), or a ready
        :class:`~repro.engine.topology.RoutingTable` (e.g. one
        deserialized from a previous run — placement is restart-stable).
    shard_key:
        Mapping of relation names to key column positions (required and
        non-empty). Every listed relation is partitioned; the rest are
        copied per shard. :func:`infer_shard_key` derives one from a
        representative view.
    max_entries / max_cells:
        Representation-cache bounds **per shard** — sharding multiplies
        the aggregate budget, which is exactly its point.
    snapshot_dir:
        Optional warm-start directory; each shard persists under its own
        ``shard-<id>`` subdirectory, fingerprinted with its own database
        slice (so a resharded or re-keyed partition refuses stale
        snapshots shard by shard).
    cache_policy:
        Per-shard cache eviction policy (``"lru"`` or ``"cost"``).
    build_workers:
        Size of ONE :class:`~repro.engine.parallel.ParallelBuilder`
        process pool shared by every shard, so per-shard structure
        construction uses real cores while total build parallelism stays
        bounded. ``None`` keeps builds in-process.
    semijoin_reduce:
        Reduce each registration's replicated relations against the
        shard's slice (:func:`semijoin_reduce_database`) so per-shard
        structures shrink. On by default; answers are unchanged either
        way.
    telemetry:
        ``True`` creates an owned :class:`~repro.engine.telemetry.Telemetry`
        (persisted under ``snapshot_dir/telemetry`` when snapshotting); a
        ready instance is shared. Every shard server records into the
        SAME registry, so per-view counters aggregate across shards
        while the facade adds routing-level metrics
        (``shard_requests_total{shard,mode}``, ``shard_splits_total``).
    """

    def __init__(
        self,
        db: Database,
        n_shards: Union[int, RoutingTable],
        shard_key: ShardKey,
        max_entries: Optional[int] = 8,
        max_cells: Optional[int] = None,
        hash_fn=stable_hash,
        snapshot_dir: Optional[Union[str, Path]] = None,
        cache_policy: str = "lru",
        build_workers: Optional[int] = None,
        semijoin_reduce: bool = True,
        telemetry: Union[Telemetry, bool, None] = None,
    ):
        self.shard_key: Dict[str, int] = dict(shard_key or {})
        self._hash_fn = hash_fn
        self._max_entries = max_entries
        self._max_cells = max_cells
        self._snapshot_dir = (
            Path(snapshot_dir) if snapshot_dir is not None else None
        )
        self._cache_policy = cache_policy
        self._semijoin_reduce = semijoin_reduce
        self._owns_telemetry = telemetry is True
        if telemetry is True:
            telemetry = Telemetry(
                self._snapshot_dir / "telemetry"
                if self._snapshot_dir is not None
                else None
            )
        self._telemetry: Optional[Telemetry] = telemetry or None
        if isinstance(n_shards, RoutingTable):
            table = n_shards
        else:
            table = RoutingTable.fresh(n_shards, hash_fn=hash_fn)
        slices = partition_database(db, self.shard_key, table)
        self._builder: Optional[ParallelBuilder] = (
            ParallelBuilder(build_workers)
            if build_workers is not None
            else None
        )
        # Every live shard server/database, across all live versions
        # (retiring shards stay here until their version's pins drain).
        self._databases: Dict[str, Database] = dict(
            zip(table.shard_ids, slices)
        )
        self._servers: Dict[str, ViewServer] = {
            shard_id: self._make_shard_server(shard_id, shard_db)
            for shard_id, shard_db in self._databases.items()
        }
        self._current = _Topology(
            table, [self._servers[sid] for sid in table.shard_ids]
        )
        self._topologies: Dict[int, _Topology] = {
            table.version: self._current
        }
        self._topology_lock = named_lock("sharding.topology", reentrant=True)
        # Serializes registration changes against splits, so a split
        # replays a consistent registration set onto its children.
        self._admin_lock = named_lock("sharding.admin")
        # Registration knobs by name, replayed onto split children.
        self._registrations: Dict[str, Dict] = {}
        # Maps name -> (mode, bound position); None marks a registration
        # in flight (the name is claimed but not yet routable).
        self._routes: Dict[str, Optional[Tuple[str, Optional[int]]]] = {}
        self._routes_lock = named_lock("sharding.routes")
        self._served_lock = named_lock("sharding.served")
        self._requests_served = 0
        # Counters of retired shards fold in here so the facade's totals
        # stay monotonic across splits.
        self._retired_builds = 0
        self._retired_cache = CacheStats()

    def _make_shard_server(
        self, shard_id: str, shard_db: Database
    ) -> ViewServer:
        # Shard servers share the facade's Telemetry instance (never
        # construct their own): one registry aggregates per-view metrics
        # across shards, and the facade owns the flush/close lifecycle.
        return ViewServer(
            shard_db,
            max_entries=self._max_entries,
            max_cells=self._max_cells,
            snapshot_dir=(
                self._snapshot_dir / f"shard-{shard_id}"
                if self._snapshot_dir is not None
                else None
            ),
            cache_policy=self._cache_policy,
            builder=self._builder,
            telemetry=self._telemetry,
        )

    # ------------------------------------------------------------------
    # topology: versions, pins, and the current view of the world
    # ------------------------------------------------------------------
    @property
    def topology(self) -> RoutingTable:
        """The current routing table (new requests route through it)."""
        with self._topology_lock:
            return self._current.table

    @property
    def shards(self) -> List[ViewServer]:
        """The current topology's shard servers, in shard-id order."""
        with self._topology_lock:
            return list(self._current.servers)

    @property
    def databases(self) -> List[Database]:
        """The current topology's shard databases, in shard-id order."""
        with self._topology_lock:
            return [
                self._databases[sid] for sid in self._current.shard_ids
            ]

    @property
    def n_shards(self) -> int:
        """Shard count of the current topology (grows across splits)."""
        with self._topology_lock:
            return len(self._current.shard_ids)

    @property
    def shard_ids(self) -> Tuple[str, ...]:
        """The current topology's shard identifiers, in routing order."""
        with self._topology_lock:
            return self._current.shard_ids

    def _topology_for(self, version: Optional[int]) -> _Topology:
        with self._topology_lock:
            if version is None:
                return self._current
            top = self._topologies.get(version)
            if top is None:
                raise ParameterError(
                    f"routing-table version {version} is not live"
                )
            return top

    def shard_server(
        self, shard_index: int, version: Optional[int] = None
    ) -> ViewServer:
        """The shard server at one index of a (pinned or current) version."""
        return self._topology_for(version).servers[shard_index]

    def shard_count(self, version: Optional[int] = None) -> int:
        """Shards in a (pinned or current) routing-table version."""
        return len(self._topology_for(version).shard_ids)

    def pin_version(self) -> int:
        """Pin the current routing-table version; returns its number.

        A pinned version's shards cannot retire — in-flight cursors and
        shared scans keep serving the topology they opened under while
        a split cuts new requests over. Balance every pin with one
        :meth:`release_version` (cursor close hooks do this for the
        serving paths).
        """
        with self._topology_lock:
            self._current.pins += 1
            return self._current.version

    def release_version(self, version: int) -> None:
        """Drop one pin; a drained non-current version retires its shards."""
        retired: List[ViewServer] = []
        with self._topology_lock:
            top = self._topologies.get(version)
            if top is None:
                return
            top.pins = max(0, top.pins - 1)
            if top.pins == 0 and top is not self._current:
                retired = self._retire_version_locked(top)
        for server in retired:
            self._finalize_retired(server)

    def version_pins(self, version: Optional[int] = None) -> int:
        """Open pins on a (pinned or current) routing-table version."""
        with self._topology_lock:
            return self._topology_for(version).pins

    def live_versions(self) -> Tuple[int, ...]:
        """Routing-table versions still live (current plus draining)."""
        with self._topology_lock:
            return tuple(sorted(self._topologies))

    def _retire_version_locked(self, top: _Topology) -> List[ViewServer]:
        # Caller holds the topology lock. Shards still referenced by any
        # other live version (i.e. everything but the split parent) stay.
        del self._topologies[top.version]
        live = set()
        for other in self._topologies.values():
            live.update(other.shard_ids)
        retired: List[ViewServer] = []
        for shard_id in top.shard_ids:
            if shard_id in live:
                continue
            server = self._servers.pop(shard_id, None)
            if server is None:
                continue
            self._databases.pop(shard_id, None)
            self._retired_builds += server.total_builds()
            self._retired_cache.add(server.cache_stats)
            retired.append(server)
        return retired

    def _finalize_retired(self, server: ViewServer) -> None:
        # Demotion and teardown do I/O; they run outside the topology
        # lock. Demoting first keeps the retiring shard's structures
        # shippable (replicas hydrate from exactly these snapshots).
        server.cache.demote_all()
        server.cache.clear()
        server.close()

    # ------------------------------------------------------------------
    # registration and routing
    # ------------------------------------------------------------------
    def _resolve_route(self, view: AdornedView) -> Tuple[str, Optional[int]]:
        """(mode, bound position) the shard key implies for one view."""
        variables = set()
        for atom in view.atoms:
            column = self.shard_key.get(atom.relation)
            if column is None:
                continue
            if column >= atom.arity:
                raise SchemaError(
                    f"view {view.name!r}: shard key column {column} out of "
                    f"range for atom {atom!r}"
                )
            term = atom.terms[column]
            if not isinstance(term, Variable):
                raise SchemaError(
                    f"view {view.name!r}: shard key column of {atom!r} "
                    f"holds constant {term!r}; shard routing needs a "
                    "variable"
                )
            variables.add(term)
        if not variables:
            return (PINNED, 0)  # no sharded relation: replicated everywhere
        if len(variables) > 1:
            raise SchemaError(
                f"view {view.name!r}: shard key columns bind distinct "
                f"variables {sorted(v.name for v in variables)}; per-shard "
                "answers would not partition the result"
            )
        (variable,) = variables
        bound = view.bound_variables
        if variable in bound:
            return (ROUTED, bound.index(variable))
        if variable in view.free_variables:
            return (SCATTER, None)
        raise SchemaError(
            f"view {view.name!r}: shard variable {variable.name!r} is "
            "projected away; per-shard answers may overlap (pick a head "
            "variable as the shard key)"
        )

    def _shard_view_database(
        self, view: AdornedView, shard_db: Database
    ) -> Optional[Database]:
        """The per-registration database override for one shard (or None)."""
        if not self._semijoin_reduce:
            return None
        reduced = semijoin_reduce_database(shard_db, view, self.shard_key)
        return None if reduced is shard_db else reduced

    def register(
        self,
        view: Union[AdornedView, str],
        tau: Optional[float] = None,
        space_budget: Optional[float] = None,
        delay_budget: Optional[float] = None,
        name: Optional[str] = None,
    ) -> str:
        """Register a view on every shard; returns the serving name.

        Budget-driven τ selection runs per shard against the shard's own
        relation sizes — shards sit at their own points of the
        space/delay tradeoff, which is what a per-shard cache budget
        means. With ``semijoin_reduce`` on, each shard's registration
        evaluates against a slice-reduced copy of the replicated
        relations (answers are identical; structures are smaller). The
        registration is recorded so a later :meth:`split_shard` replays
        it onto the child shards.
        """
        if isinstance(view, str):
            view = parse_view(view)
        route = self._resolve_route(view)
        intended = name or view.name
        with self._routes_lock:
            # Claim the name first so concurrent registrations of the
            # same name fail fast instead of half-registering both.
            if intended in self._routes:
                raise SchemaError(f"view {intended!r} is already registered")
            self._routes[intended] = None
        registered: List[ViewServer] = []
        try:
            with self._admin_lock:
                with self._topology_lock:
                    targets = [
                        (self._servers[sid], self._databases[sid])
                        for sid in self._current.shard_ids
                    ]
                for server, shard_db in targets:
                    resolved = server.register(
                        view,
                        tau=tau,
                        space_budget=space_budget,
                        delay_budget=delay_budget,
                        name=name,
                        database=self._shard_view_database(view, shard_db),
                    )
                    assert resolved == intended
                    registered.append(server)
                self._registrations[intended] = {
                    "view": view,
                    "tau": tau,
                    "space_budget": space_budget,
                    "delay_budget": delay_budget,
                    "name": name,
                }
        except BaseException:
            # All shards or none: a half-registered view would wedge the
            # name (unroutable here, 'already registered' on retry).
            for server in registered:
                server.unregister(intended)
            with self._routes_lock:
                del self._routes[intended]
            raise
        with self._routes_lock:
            self._routes[intended] = route
        return intended

    def register_dynamic(
        self,
        view: Union[AdornedView, str],
        tau: Optional[float] = None,
        name: Optional[str] = None,
        rebuild_fraction: float = 0.1,
    ) -> str:
        """Register a dynamic view on every shard; returns its name.

        Each shard serves its slice through its own
        :class:`~repro.core.dynamic.DynamicRepresentation`;
        :meth:`apply_deltas` routes every delta tuple to its owning
        shard, so per-shard versions advance independently (a shard a
        delta never reaches keeps serving its current version — the
        no-op contract, per shard). Dynamic registrations skip the
        semijoin reduction: deltas address raw base-relation tuples,
        which a slice-reduced replica copy could silently drop.
        """
        if isinstance(view, str):
            view = parse_view(view)
        route = self._resolve_route(view)
        intended = name or view.name
        with self._routes_lock:
            if intended in self._routes:
                raise SchemaError(f"view {intended!r} is already registered")
            self._routes[intended] = None
        registered: List[ViewServer] = []
        try:
            with self._admin_lock:
                with self._topology_lock:
                    targets = [
                        self._servers[sid]
                        for sid in self._current.shard_ids
                    ]
                for server in targets:
                    resolved = server.register_dynamic(
                        view,
                        tau=tau,
                        name=name,
                        rebuild_fraction=rebuild_fraction,
                    )
                    assert resolved == intended
                    registered.append(server)
                self._registrations[intended] = {
                    "view": view,
                    "tau": tau,
                    "space_budget": None,
                    "delay_budget": None,
                    "name": name,
                    "dynamic": True,
                    "rebuild_fraction": rebuild_fraction,
                }
        except BaseException:
            for server in registered:
                server.unregister(intended)
            with self._routes_lock:
                del self._routes[intended]
            raise
        with self._routes_lock:
            self._routes[intended] = route
        return intended

    def dynamic_views(self) -> Tuple[str, ...]:
        """Names registered for dynamic serving (identical on all shards)."""
        with self._routes_lock:
            names = tuple(
                name
                for name, route in self._routes.items()
                if route is not None
            )
        with self._topology_lock:
            representative = self._current.servers[0]
        dynamic = set(representative.dynamic_views())
        return tuple(name for name in names if name in dynamic)

    def apply_deltas(
        self,
        relation: str,
        inserts: Iterable[Sequence] = (),
        deletes: Iterable[Sequence] = (),
        views: Optional[Sequence[str]] = None,
    ) -> Dict[str, int]:
        """Apply one delta across the topology, tuple by owning shard.

        Rows of a *sharded* relation go only to the shard that owns
        their key value (the same rendezvous placement
        :func:`partition_database` used); rows of a replicated relation
        broadcast to every shard. Returns per-view counts summed across
        shards — the facade-level effective change, matching
        :meth:`ViewServer.apply_deltas
        <repro.engine.server.ViewServer.apply_deltas>` semantics
        shard by shard.
        """
        inserts = [tuple(row) for row in inserts]
        deletes = [tuple(row) for row in deletes]
        column = self.shard_key.get(relation)
        version = self.pin_version()
        try:
            top = self._topology_for(version)
            shard_inserts = {sid: inserts for sid in top.shard_ids}
            shard_deletes = {sid: deletes for sid in top.shard_ids}
            if column is not None:
                shard_inserts = {sid: [] for sid in top.shard_ids}
                shard_deletes = {sid: [] for sid in top.shard_ids}
                for rows, buckets in (
                    (inserts, shard_inserts),
                    (deletes, shard_deletes),
                ):
                    for row in rows:
                        if column >= len(row):
                            raise SchemaError(
                                f"delta row {row!r} for {relation!r} has no "
                                f"shard key column {column}"
                            )
                        owner = top.table.shard_for(row[column])
                        buckets[owner].append(row)
            totals: Dict[str, int] = {}
            # Every shard sees the delta (possibly empty for it): the
            # per-shard no-op contract keeps empty calls version-stable,
            # and running them keeps validation and the result's view
            # set identical on every shard.
            for sid, server in zip(top.shard_ids, top.servers):
                applied = server.apply_deltas(
                    relation,
                    shard_inserts[sid],
                    shard_deletes[sid],
                    views=views,
                )
                for view_name, count in applied.items():
                    totals[view_name] = totals.get(view_name, 0) + count
            return totals
        finally:
            self.release_version(version)

    def unregister(self, name: str) -> bool:
        """Drop a view from every shard and the route table; True if known."""
        with self._routes_lock:
            # A None route is a registration still in flight — not ours
            # to drop; concurrent unregisters see the claim gone and
            # return False instead of racing the per-shard sweep.
            if self._routes.get(name) is None:
                return False
            del self._routes[name]
        with self._admin_lock:
            self._registrations.pop(name, None)
            with self._topology_lock:
                # Retiring shards lose the view too: a pinned cursor
                # already holds its structure, and a retired cache must
                # not resurrect an unregistered view.
                servers = list(self._servers.values())
            for server in servers:
                server.unregister(name)
        return True

    def route(self, name: str) -> Tuple[str, Optional[int]]:
        """The (mode, bound position) pair a view was registered with."""
        with self._routes_lock:
            route = self._routes.get(name)
        if route is None:  # unknown, or a registration still in flight
            raise SchemaError(f"unknown view {name!r}")
        return route

    def registration(self, name: str) -> Registration:
        """Shard 0's registration — representative, not universal.

        Under a budget policy each shard optimizes τ against its own
        relation sizes, so other shards may sit at different τ; inspect
        ``server.shards[i].registration(name)`` for the full picture.
        """
        self.route(name)
        return self.shards[0].registration(name)

    def views(self) -> Tuple[str, ...]:
        """Names of every fully registered (routable) view."""
        with self._routes_lock:
            return tuple(
                name
                for name, route in self._routes.items()
                if route is not None
            )

    def _count_shard(
        self, shard_id: str, mode: str, amount: int = 1
    ) -> None:
        """Bump the facade's routing counter (no-op without telemetry)."""
        if self._telemetry is not None and amount:
            self._telemetry.counter(
                "shard_requests_total", shard=shard_id, mode=mode
            ).inc(amount)

    def shard_of(
        self, name: str, access: Sequence, version: Optional[int] = None
    ) -> Optional[int]:
        """The shard index one access pins, or ``None`` for scatter views.

        Indexes are positions within the (pinned or current) topology's
        :attr:`shard_ids`; callers fanning a batch out across awaits
        should pin a version first so a concurrent split cannot shift
        the indexes under them.
        """
        mode, position = self.route(name)
        if mode == SCATTER:
            return None
        if mode == PINNED:
            return 0
        access = tuple(access)
        if position >= len(access):
            raise SchemaError(
                f"view {name!r}: access tuple {access!r} too short for "
                f"bound position {position}"
            )
        return self._topology_for(version).table.index_for(access[position])

    # ------------------------------------------------------------------
    # builds
    # ------------------------------------------------------------------
    def prebuild(
        self, name: str, tau: Optional[float] = None
    ) -> List[CompressedRepresentation]:
        """Build (or warm-load) one view's structure on every shard, at once.

        Lazy serving builds each shard's structure on its first request —
        fine for routed traffic, but a scatter view's first batch pays
        every shard's build back to back. This fans the builds out: one
        thread per shard drives that shard's cached build path, and with
        a shared :class:`~repro.engine.parallel.ParallelBuilder` the
        builds land on worker *processes*, using real cores. Returns the
        per-shard structures, shard order.
        """
        self.route(name)  # unknown views fail before any build starts
        servers = self.shards
        if len(servers) == 1:
            return [servers[0].representation(name, tau)]
        with ThreadPoolExecutor(
            max_workers=len(servers), thread_name_prefix="repro-prebuild"
        ) as pool:
            futures = [
                pool.submit(server.representation, name, tau)
                for server in servers
            ]
            return [future.result() for future in futures]

    def close(self) -> None:
        """Release the shared build worker pool (serving keeps working)."""
        with self._topology_lock:
            servers = list(self._servers.values())
        for server in servers:
            server.close()
        if self._builder is not None:
            self._builder.close()
        if self._owns_telemetry and self._telemetry is not None:
            self._telemetry.close()

    @property
    def builder(self) -> Optional[ParallelBuilder]:
        """The shared build worker pool, or ``None`` for in-process builds."""
        return self._builder

    @property
    def telemetry(self) -> Optional[Telemetry]:
        """The telemetry sink shared with every shard server (or None)."""
        return self._telemetry

    # ------------------------------------------------------------------
    # tuning surface (the AdaptiveTuner drives these, fanned to shards)
    # ------------------------------------------------------------------
    def serving_tau(self, name: str) -> float:
        """Shard 0's serving τ — representative under uniform retunes.

        :meth:`retune` applies one τ to every shard, so after any
        facade-level retune the shards agree; only budget-driven
        registrations start shards at distinct τ.
        """
        self.route(name)
        return self.shards[0].serving_tau(name)

    def retune(self, name: str, tau: float) -> float:
        """Set every shard's serving τ for one view; returns shard 0's old τ.

        Fan-out of :meth:`ViewServer.retune
        <repro.engine.server.ViewServer.retune>`: subsequent default-τ
        requests on any shard build/load at the new τ.
        """
        self.route(name)
        previous: Optional[float] = None
        for server in self.shards:
            before = server.retune(name, tau)
            if previous is None:
                previous = before
        return previous if previous is not None else tau

    def prefetch(
        self, name: str, tau: Optional[float] = None
    ) -> List[CompressedRepresentation]:
        """Warm one view on every shard (alias of :meth:`prebuild`)."""
        return self.prebuild(name, tau)

    def resident(self, name: str, tau: Optional[float] = None) -> bool:
        """True when the view's structure is cache-resident on EVERY shard."""
        self.route(name)
        return all(server.resident(name, tau) for server in self.shards)

    def demote(self, name: str) -> int:
        """Evict one view from every shard's memory tier; total entries."""
        self.route(name)
        with self._topology_lock:
            servers = list(self._servers.values())
        return sum(server.demote(name) for server in servers)

    # ------------------------------------------------------------------
    # elastic topology: live shard splits
    # ------------------------------------------------------------------
    def split_shard(self, shard_id: Union[str, int]) -> SplitReport:
        """Split one hot shard live; cut new traffic over when warm.

        Only the named shard's slice is re-partitioned: the next routing
        table (version + 1) replaces its leaf with two children and
        hierarchical rendezvous sends each of its keys to one of them —
        every other shard's key set is untouched, so at most ``1/n`` of
        all keys move. The children register every currently registered
        view (semijoin-reduced against their halves) and warm their
        structures through the shared
        :class:`~repro.engine.parallel.ParallelBuilder` **before** the
        cutover, so the old topology serves until the new one is ready.
        At cutover, new requests take the new table; cursors and shared
        scans opened earlier keep their pinned version and drain against
        the old shard, which retires — resident structures demoted to
        its snapshot tier — when its pin count reaches zero.

        With telemetry on, the split is one traced span plus one durable
        event (``shard_split``: children, rows moved, version cutover)
        and bumps ``shard_splits_total``.
        """
        if self._telemetry is None:
            return self._split_shard(shard_id)
        with self._telemetry.trace("split", shard=str(shard_id)) as span:
            report = self._split_shard(shard_id)
            span.annotate(
                children=list(report.children),
                moved_rows=report.moved_rows,
                version=report.version_after,
            )
        self._telemetry.counter("shard_splits_total").inc()
        self._telemetry.event(
            "shard_split",
            shard=report.shard_id,
            children=list(report.children),
            moved_rows=report.moved_rows,
            version_before=report.version_before,
            version_after=report.version_after,
            warmed_views=list(report.warmed_views),
        )
        return report

    def _split_shard(self, shard_id: Union[str, int]) -> SplitReport:
        # split_shard minus telemetry — the traced wrapper above calls it.
        shard_id = str(shard_id)
        with self._admin_lock:
            with self._topology_lock:
                old = self._current
                if shard_id not in old.shard_ids:
                    raise ParameterError(
                        f"shard {shard_id!r} is not a live shard of "
                        f"routing-table version {old.version} "
                        f"(live: {list(old.shard_ids)!r})"
                    )
                parent_server = self._servers[shard_id]
                parent_db = self._databases[shard_id]
                specs = {
                    view_name: dict(spec)
                    for view_name, spec in self._registrations.items()
                }
            dynamic = sorted(
                view_name
                for view_name, spec in specs.items()
                if spec.get("dynamic")
            )
            if dynamic:
                # A split re-registers children against the *base* slice;
                # deltas applied since registration would silently vanish
                # from the children. Refuse rather than serve from the
                # past — unregister the dynamic views, split, re-register.
                raise ParameterError(
                    f"cannot split shard {shard_id!r} while dynamic views "
                    f"{dynamic!r} are registered: the children would be "
                    "rebuilt from the pre-delta base slice. Unregister "
                    "them, split, then register_dynamic again."
                )
            new_table = old.table.split(shard_id)
            children = new_table.children(shard_id)
            # Re-place only the parent's slice. Hierarchical rendezvous
            # guarantees each key lands on one of the two children.
            buckets: Dict[str, Dict[str, List[Tuple]]] = {
                child: {key_name: [] for key_name in self.shard_key}
                for child in children
            }
            moved = 0
            for key_name, column in self.shard_key.items():
                for row in parent_db[key_name]:
                    owner = new_table.shard_for(row[column])
                    if owner not in buckets:
                        raise SchemaError(
                            f"split of {shard_id!r}: key {row[column]!r} "
                            f"re-placed outside the split ({owner!r}) — "
                            "the routing table is not hierarchical"
                        )
                    buckets[owner][key_name].append(row)
                    moved += 1
            child_dbs: Dict[str, Database] = {}
            for child in children:
                relations = []
                for relation in parent_db:
                    rows = (
                        buckets[child][relation.name]
                        if relation.name in self.shard_key
                        else relation.rows
                    )
                    relations.append(
                        Relation(relation.name, relation.arity, rows)
                    )
                child_dbs[child] = Database(relations)
            child_servers = {
                child: self._make_shard_server(child, child_dbs[child])
                for child in children
            }
            for view_name, spec in specs.items():
                for child in children:
                    resolved = child_servers[child].register(
                        spec["view"],
                        tau=spec["tau"],
                        space_budget=spec["space_budget"],
                        delay_budget=spec["delay_budget"],
                        name=spec["name"],
                        database=self._shard_view_database(
                            spec["view"], child_dbs[child]
                        ),
                    )
                    assert resolved == view_name
            # Demote the hot shard's resident structures to its snapshot
            # tier now: pinned stragglers warm-load instead of rebuilding,
            # and the retiring shard's memory can be reclaimed at drain.
            demoted = parent_server.cache.demote_all()
            # Warm the children while the old topology keeps serving;
            # with a shared ParallelBuilder the builds land on worker
            # processes. Warm failures abort the split before cutover.
            warmed = tuple(specs)
            if warmed:
                workers = max(1, 2 * len(warmed))
                with ThreadPoolExecutor(
                    max_workers=min(workers, 8),
                    thread_name_prefix="repro-split-warm",
                ) as pool:
                    futures = [
                        pool.submit(server.representation, view_name)
                        for view_name in warmed
                        for server in child_servers.values()
                    ]
                    for future in futures:
                        future.result()
            # Cutover: atomically install the new version. New requests
            # route through it; pinned versions keep the old servers.
            retired: List[ViewServer] = []
            with self._topology_lock:
                self._servers.update(child_servers)
                self._databases.update(child_dbs)
                new_top = _Topology(
                    new_table,
                    [self._servers[sid] for sid in new_table.shard_ids],
                )
                self._topologies[new_top.version] = new_top
                self._current = new_top
                retired_immediately = old.pins == 0
                if retired_immediately:
                    retired = self._retire_version_locked(old)
        for server in retired:
            self._finalize_retired(server)
        return SplitReport(
            shard_id=shard_id,
            children=children,
            version_before=old.version,
            version_after=new_table.version,
            moved_rows=moved,
            demoted_snapshots=demoted,
            warmed_views=warmed,
            retired_immediately=retired_immediately,
        )

    # ------------------------------------------------------------------
    # batch planning, execution, merging
    # ------------------------------------------------------------------
    def plan_batch(
        self,
        name: str,
        accesses: Iterable[Sequence],
        route: Optional[Tuple[str, Optional[int]]] = None,
        version: Optional[int] = None,
    ) -> List[List[Tuple]]:
        """Per-shard sub-batches for one batch (index-aligned to shards).

        Scatter views repeat the whole batch on every shard; routed views
        split it; shards with no work get an empty list, which execution
        skips. Callers serving a whole batch resolve the route once and
        pass it to both this and :meth:`merge_batch`, so a concurrent
        re-registration cannot flip the mode between plan and merge —
        and pin a topology ``version`` across plan/answer/merge so a
        concurrent split cannot shift the shard indexes either.
        """
        batch = [tuple(access) for access in accesses]
        top = self._topology_for(version)
        n_shards = len(top.shard_ids)
        mode, position = route or self.route(name)
        if mode == SCATTER:
            sub_batches = [list(batch) for _ in range(n_shards)]
        elif mode == PINNED:
            sub_batches = [list(batch)] + [[] for _ in range(n_shards - 1)]
        else:
            sub_batches = [[] for _ in range(n_shards)]
            for access in batch:
                if position >= len(access):
                    raise SchemaError(
                        f"view {name!r}: access tuple {access!r} too short "
                        f"for bound position {position}"
                    )
                sub_batches[top.table.index_for(access[position])].append(
                    access
                )
        # Routing accounting lives with the routing decision, so both
        # executors of this plan — the sequential answer_batch and the
        # async fan-out — land in shard_requests_total{shard,mode}.
        if self._telemetry is not None:
            for index, sub_batch in enumerate(sub_batches):
                self._count_shard(top.shard_ids[index], mode, len(sub_batch))
        return sub_batches

    def answer_shard(
        self,
        shard_index: int,
        name: str,
        accesses: Sequence[Sequence],
        tau: Optional[float] = None,
        measure: bool = True,
        version: Optional[int] = None,
    ) -> BatchResult:
        """One shard's answer to its sub-batch (the fan-out work unit)."""
        top = self._topology_for(version)
        return top.servers[shard_index].answer_batch(
            name, accesses, tau=tau, measure=measure
        )

    def merge_batch(
        self,
        name: str,
        accesses: Iterable[Sequence],
        shard_results: Sequence[Optional[BatchResult]],
        route: Optional[Tuple[str, Optional[int]]] = None,
    ) -> BatchResult:
        """Gather per-shard results back into one batch-aligned result.

        ``route`` must be the same resolution the batch was planned with
        (see :meth:`plan_batch`); merging scatter-planned results in
        routed mode would silently drop rows.
        """
        batch = tuple(tuple(access) for access in accesses)
        mode, _ = route or self.route(name)
        unique = sorted(set(batch))
        answers_by_access: Dict[Tuple, List[Tuple]] = {}
        stats: Dict[Tuple, DelayStats] = {}
        if mode == SCATTER:
            per_shard: List[Dict[Tuple, List[Tuple]]] = []
            per_shard_stats: List[Dict[Tuple, DelayStats]] = []
            for result in shard_results:
                if result is None:
                    continue
                per_shard.append(dict(zip(result.accesses, result.answers)))
                per_shard_stats.append(dict(result.request_stats))
            for access in unique:
                parts = [
                    shard_answers[access]
                    for shard_answers in per_shard
                    if access in shard_answers
                ]
                # Shards partition the result space, so the sorted
                # per-shard lists are disjoint: merging is a plain union.
                answers_by_access[access] = list(heapq.merge(*parts))
                measured = [
                    shard_stats[access]
                    for shard_stats in per_shard_stats
                    if access in shard_stats
                ]
                if measured:
                    stats[access] = merge_delay_stats(measured)
        else:
            for result in shard_results:
                if result is None:
                    continue
                for access, rows in zip(result.accesses, result.answers):
                    answers_by_access[access] = rows
                stats.update(result.request_stats)
        missing = [a for a in unique if a not in answers_by_access]
        if missing:
            raise SchemaError(
                f"view {name!r}: shard results missing accesses {missing!r}"
            )
        with self._served_lock:
            # Facade-level count: a scattered request is still one request,
            # however many shards its fan-out touched.
            self._requests_served += len(batch)
        return BatchResult(
            accesses=batch,
            answers=tuple(answers_by_access[access] for access in batch),
            request_stats=stats,
            unique_count=len(unique),
        )

    # ------------------------------------------------------------------
    # serving (sequential executor; the async front end parallelizes)
    # ------------------------------------------------------------------
    def open(
        self,
        request: Union[AccessRequest, str],
        access: Optional[Sequence] = None,
        limit: Optional[int] = None,
        start_after: Optional[Sequence] = None,
        tau: Optional[float] = None,
        measure: bool = False,
    ) -> AnswerCursor:
        """Open a streaming cursor through the routing layer.

        Routed and pinned views return the owning shard's cursor
        directly. Scatter views open one cursor per shard and merge them
        lazily with a k-way heap (per-shard answers are disjoint and
        sorted, so the merged stream is the full answer in lexicographic
        head order): with ``limit=k`` each shard enumerates at most k
        tuples. Resume tokens distribute as-is: every shard seeks past
        the token within its own slice. The per-shard sub-cursors are
        exposed as the merged cursor's ``parts`` (shard order).

        The cursor *pins the routing-table version it opened under*: a
        concurrent :meth:`split_shard` cuts new requests over but this
        cursor drains against the topology it started on, and its close
        hook (fired on close or exhaustion) releases the pin.
        """
        request = as_request(
            request,
            access,
            limit=limit,
            start_after=start_after,
            tau=tau,
            measure=measure,
        )
        mode, position = self.route(request.view)
        version = self.pin_version()
        try:
            top = self._topology_for(version)
            if mode != SCATTER:
                index = 0
                if mode == ROUTED:
                    if position >= len(request.access):
                        raise SchemaError(
                            f"view {request.view!r}: access tuple "
                            f"{request.access!r} too short for bound position "
                            f"{position}"
                        )
                    index = top.table.index_for(request.access[position])
                cursor = top.servers[index].open(request)
                self._count_shard(top.shard_ids[index], mode)
            else:
                parts: List[AnswerCursor] = []
                try:
                    for server in top.servers:
                        parts.append(server.open(request))
                except BaseException:
                    for part in parts:
                        part.close()
                    raise
                cursor = AnswerCursor(
                    request, heapq.merge(*parts), parts=parts
                )
                for shard_id in top.shard_ids:
                    self._count_shard(shard_id, SCATTER)
        except BaseException:
            self.release_version(version)
            raise
        cursor.add_close_hook(lambda: self.release_version(version))
        with self._served_lock:
            # Facade-level count: one request, however many shards the
            # scatter fan-out touched.
            self._requests_served += 1
        return cursor

    def open_batch(
        self, requests: Iterable[Union[AccessRequest, str]]
    ) -> List[AnswerCursor]:
        """Open cursors for a whole request batch through the routing layer.

        Routed and pinned requests are grouped per owning shard and each
        shard serves its sub-batch as ONE shared scan
        (:meth:`ViewServer.open_batch <repro.engine.server.ViewServer.open_batch>`);
        scatter requests ride one shared scan *per shard* over the whole
        scatter sub-batch, and each request gets a lazy k-way heap merge
        of its per-shard cursors (disjoint sorted streams, exactly as
        :meth:`open` builds them, ``parts`` exposed in shard order). The
        returned cursors align with the submitted requests; the usual
        shared-scan caveats apply per shard group (single-threaded
        consumption, group fate sharing). Every cursor pins the
        routing-table version the batch opened under, released by its
        close hook — the whole shared scan drains against one topology.
        """
        batch = [as_request(request) for request in requests]
        if not batch:
            return []
        version = self.pin_version()
        try:
            top = self._topology_for(version)
            cursors: List[Optional[AnswerCursor]] = [None] * len(batch)
            by_shard: Dict[int, List[int]] = {}
            scatter: List[int] = []
            for index, request in enumerate(batch):
                shard = self.shard_of(
                    request.view, request.access, version=version
                )
                if shard is None:
                    scatter.append(index)
                else:
                    by_shard.setdefault(shard, []).append(index)
                    self._count_shard(
                        top.shard_ids[shard], self.route(request.view)[0]
                    )
            for shard, indexes in by_shard.items():
                shard_cursors = top.servers[shard].open_batch(
                    [batch[index] for index in indexes]
                )
                for index, cursor in zip(indexes, shard_cursors):
                    cursors[index] = cursor
            if scatter:
                scatter_requests = [batch[index] for index in scatter]
                per_shard: List[List[AnswerCursor]] = []
                try:
                    for server in top.servers:
                        per_shard.append(server.open_batch(scatter_requests))
                except BaseException:
                    for opened in per_shard:
                        for cursor in opened:
                            cursor.close()
                    raise
                for position, index in enumerate(scatter):
                    parts = [opened[position] for opened in per_shard]
                    cursors[index] = AnswerCursor(
                        batch[index], heapq.merge(*parts), parts=parts
                    )
                for shard_id in top.shard_ids:
                    self._count_shard(shard_id, SCATTER, len(scatter))
        except BaseException:
            self.release_version(version)
            raise
        # One pin per cursor (the first is already held): each close
        # hook releases exactly one, so the version drains when the last
        # cursor of the batch finishes.
        with self._topology_lock:
            self._topologies[version].pins += len(batch) - 1
        for cursor in cursors:
            cursor.add_close_hook(lambda: self.release_version(version))
        with self._served_lock:
            self._requests_served += len(batch)
        return cursors

    def answer(self, name: str, access: Sequence) -> List[Tuple]:
        """Answer one access request through the routing layer."""
        with self.open(name, access) as cursor:
            return cursor.fetchall()

    def answer_batch(
        self,
        name: str,
        accesses: Iterable[Sequence],
        tau: Optional[float] = None,
        measure: bool = True,
    ) -> BatchResult:
        """Answer a whole batch through plan → per-shard answer → merge.

        The sequential executor: one :meth:`answer_shard` call per
        non-empty sub-batch under one pinned topology version (the async
        front end fans the same plan out to its thread pool instead).
        """
        batch = [tuple(access) for access in accesses]
        route = self.route(name)
        version = self.pin_version()
        try:
            plan = self.plan_batch(
                name, batch, route=route, version=version
            )
            shard_results: List[Optional[BatchResult]] = [
                self.answer_shard(
                    index,
                    name,
                    sub_batch,
                    tau=tau,
                    measure=measure,
                    version=version,
                )
                if sub_batch
                else None
                for index, sub_batch in enumerate(plan)
            ]
            return self.merge_batch(name, batch, shard_results, route=route)
        finally:
            self.release_version(version)

    def serve_stream(
        self,
        name: str,
        accesses: Iterable[Sequence],
        batch_size: int = 32,
        tau: Optional[float] = None,
        measure: bool = True,
    ) -> ServingReport:
        """Drain a stream through the routing layer, one batch at a time."""
        return drain_stream(
            self, name, accesses, batch_size=batch_size, tau=tau, measure=measure
        )

    # ------------------------------------------------------------------
    # aggregation and introspection
    # ------------------------------------------------------------------
    def total_builds(self) -> int:
        """Structure builds across all shards, retired shards included."""
        with self._topology_lock:
            return self._retired_builds + sum(
                server.total_builds() for server in self._servers.values()
            )

    @property
    def cache_stats(self) -> CacheStats:
        """Aggregated cache statistics across live and retired shards."""
        with self._topology_lock:
            merged = CacheStats().add(self._retired_cache)
            servers = list(self._servers.values())
        for server in servers:
            merged.add(server.cache_stats)
        return merged

    @property
    def total_cache_cells(self) -> int:
        """Cells resident across every live shard's cache (aggregate budget)."""
        with self._topology_lock:
            servers = list(self._servers.values())
        return sum(server.cache.total_cells for server in servers)

    @property
    def requests_served(self) -> int:
        """Facade-level request count (a scattered request counts once)."""
        with self._served_lock:
            return self._requests_served

    def invalidate(self, name: str) -> int:
        """Drop one view's cached structures on every shard; total dropped."""
        self.route(name)
        with self._topology_lock:
            servers = list(self._servers.values())
        return sum(server.invalidate(name) for server in servers)
