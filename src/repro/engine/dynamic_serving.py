"""Dynamic serving: versioned delta application over live view servers.

:class:`~repro.core.dynamic.DynamicRepresentation` answers the §8
update problem for a single structure; this module makes updates a
*serving* primitive. A dynamic view registered with
:meth:`ViewServer.register_dynamic
<repro.engine.server.ViewServer.register_dynamic>` is served through a
sequence of immutable **versions**: every effective delta
(:meth:`ViewServer.apply_deltas
<repro.engine.server.ViewServer.apply_deltas>`) freezes a new
point-in-time serving view, new requests open against it, and cursors
already open keep enumerating the version they pinned — the same
pin-count drain protocol the sharded facade uses for live resharding
(``split_shard``). A drained version's cache entry is retired; nothing
is ever evicted out from under an open cursor.

Pieces, in dependency order:

* :class:`DeltaRecord` — one applied delta as a small, versioned,
  plain-data record: the unit of the durable event log and of
  primary→replica shipping. Payloads round-trip through JSON, so rows
  are restricted to JSON-representable values (numbers, strings,
  booleans, ``None``) — the same constraint the CLI's tuple syntax
  imposes.
* :class:`FrozenDynamicView` — the immutable serving view of one
  version: the inner compressed structure while the buffers were clean,
  or a lazily-evaluated point-in-time database while dirty (always the
  reference path — the delta overlay has no compiled kernel form).
* :class:`DynamicViewState` — the per-view serving state: the live
  :class:`~repro.core.dynamic.DynamicRepresentation`, the version map
  with pin counts, and the in-memory delta history.
* :class:`DynamicSnapshotStore` — the durable half, under
  ``snapshot_dir/dynamic/``: the representation snapshot, a sidecar
  meta record carrying the serving version and **per-relation** origin
  fingerprints, and the append-only delta event log (JSONL). Warm start
  compares fingerprints relation by relation, so churn in one relation
  refuses only the structures that reference it; the log replays deltas
  applied after the last snapshot, and the amortized-rebuild boundary
  rewrites the snapshot so replay stays short.
* :func:`ship_deltas` — primary→replica shipping: send the delta
  records the replica has not seen, or fall back to full snapshot
  re-hydration past a churn threshold (or on any version gap).

See ``docs/DYNAMIC_SERVING.md`` for the end-to-end story and the
churn-storm runbook.
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.baselines.lazy import LazyView
from repro.core.dynamic import DynamicRepresentation
from repro.core.snapshot import load_snapshot, save_snapshot
from repro.core.structure import (
    CompressedRepresentation,
    resume_strictly_after,
)
from repro.database.catalog import Database
from repro.engine.locking import named_lock
from repro.exceptions import SnapshotError
from repro.joins.generic_join import JoinCounter
from repro.measure.space import SpaceReport
from repro.query.adorned import AdornedView

__all__ = [
    "DeltaRecord",
    "DynamicSnapshotStore",
    "DynamicViewState",
    "FrozenDynamicView",
    "ship_deltas",
]

#: Schema stamp on every delta-log line; bumping it invalidates replay.
DELTA_LOG_SCHEMA = 1

#: Default replica-shipping fallback: past this many pending records a
#: full snapshot re-hydration beats replaying the delta stream.
DEFAULT_CHURN_THRESHOLD = 256


@dataclass(frozen=True)
class DeltaRecord:
    """One applied delta: the unit of the event log and of shipping.

    ``version`` is the serving version the delta *created* on the
    primary; replicas apply records strictly in version order, so a gap
    means the stream is unusable and the replica must re-hydrate.
    """

    view: str
    relation: str
    version: int
    inserts: Tuple[Tuple, ...] = ()
    deletes: Tuple[Tuple, ...] = ()

    def payload(self) -> Dict:
        """The record as JSON-ready plain data (schema-stamped)."""
        return {
            "schema": DELTA_LOG_SCHEMA,
            "view": self.view,
            "relation": self.relation,
            "version": self.version,
            "inserts": [list(row) for row in self.inserts],
            "deletes": [list(row) for row in self.deletes],
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "DeltaRecord":
        """Rebuild a record from :meth:`payload` data; typed on mismatch."""
        try:
            if payload["schema"] != DELTA_LOG_SCHEMA:
                raise SnapshotError(
                    f"delta record schema {payload['schema']!r} is not "
                    f"the supported {DELTA_LOG_SCHEMA}"
                )
            return cls(
                view=str(payload["view"]),
                relation=str(payload["relation"]),
                version=int(payload["version"]),
                inserts=tuple(tuple(row) for row in payload["inserts"]),
                deletes=tuple(tuple(row) for row in payload["deletes"]),
            )
        except SnapshotError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise SnapshotError(
                f"malformed delta record: {error}"
            ) from error


class FrozenDynamicView:
    """An immutable point-in-time serving view of a dynamic view.

    Exactly one backing is set: ``structure`` (the buffers were clean —
    full Theorem 1 guarantees, kernel routing included) or ``database``
    (the buffers were dirty — worst-case optimal lazy evaluation over
    the materialized post-delta database, reference path only).
    Deltas applied after the freeze never reach this object, which is
    what lets cursors drain a retired version untouched.
    """

    #: Clean freezes seek through the inner structure; dirty freezes
    #: degrade to a skip-scan, exactly like the live dynamic wrapper.
    supports_resume = True

    def __init__(
        self,
        view: AdornedView,
        structure: Optional[CompressedRepresentation] = None,
        database: Optional[Database] = None,
    ):
        if (structure is None) == (database is None):
            raise ValueError(
                "a frozen dynamic view wraps exactly one of structure "
                "and database"
            )
        self.view = view
        self._structure = structure
        self._lazy = (
            LazyView(view, database) if database is not None else None
        )

    @property
    def kernel_ready(self) -> bool:
        """Clean freezes inherit the structure's kernel; dirty ones don't."""
        if self._structure is None:
            return False
        return self._structure.kernel_ready

    def enumerate(
        self, access: Sequence, counter: Optional[JoinCounter] = None
    ) -> Iterator[Tuple]:
        """Enumerate the frozen version's answers in lexicographic order."""
        if self._structure is not None:
            return self._structure.enumerate(access, counter=counter)
        return self._lazy.enumerate(access, counter=counter)

    def enumerate_from(
        self,
        access: Sequence,
        start_values: Sequence,
        counter: Optional[JoinCounter] = None,
    ) -> Iterator[Tuple]:
        """Enumerate answers with free tuple lexicographically >= start."""
        if self._structure is not None:
            return self._structure.enumerate_from(
                access, start_values, counter=counter
            )
        start = tuple(start_values)
        return (
            row
            for row in self._lazy.enumerate(access, counter=counter)
            if not row < start
        )

    def enumerate_after(
        self,
        access: Sequence,
        last: Sequence,
        counter: Optional[JoinCounter] = None,
    ) -> Iterator[Tuple]:
        """Enumerate strictly after ``last`` (resume token re-entry)."""
        return resume_strictly_after(
            self.enumerate_from(access, last, counter=counter), tuple(last)
        )

    def space_report(self) -> SpaceReport:
        """Space of the frozen backing (cache accounting reads this)."""
        if self._structure is not None:
            return self._structure.space_report()
        total = sum(
            len(relation) for relation in self._lazy.db
        )
        return SpaceReport(materialized_tuples=total)


class _LiveVersion:
    """One serving version: its cache generation, view, and pin count."""

    __slots__ = ("version", "generation", "serving", "pins")

    def __init__(
        self, version: int, generation: int, serving: FrozenDynamicView
    ):
        self.version = version
        self.generation = generation
        self.serving = serving
        self.pins = 0


@dataclass(frozen=True)
class DeltaOutcome:
    """What one delta application did, for the server to act on.

    ``applied == 0`` with ``version`` unchanged is the no-op contract:
    no new serving version, no cache churn, no log append. ``skipped``
    marks a shipped record the receiver had already applied.
    """

    applied: int
    version: int
    skipped: bool = False
    record: Optional[DeltaRecord] = None
    rebuilt: bool = False
    generation: Optional[int] = None
    serving: Optional[FrozenDynamicView] = None
    retired_generations: Tuple[int, ...] = ()


class DynamicViewState:
    """Versioned serving state of one dynamic view (pin-count drained).

    The live :class:`~repro.core.dynamic.DynamicRepresentation` is the
    single writer-side object; every serving version is an immutable
    freeze of it. Pins follow the ``split_shard`` protocol: opening a
    cursor pins the *current* version, the cursor's close hook releases
    it, and a non-current version retires the moment its pin count
    drains to zero. The state's lock orders strictly before the server
    registry lock (generation allocation nests inside it).
    """

    def __init__(
        self,
        name: str,
        view: AdornedView,
        tau: float,
        dynamic: DynamicRepresentation,
        version: int,
        generation: int,
        label: Optional[str],
        origin_relations: Dict[str, str],
        rebuild_fraction: float = 0.1,
    ):
        self.name = name
        self.view = view
        self.tau = float(tau)
        self.label = label
        #: Rebuild knob re-used verbatim on re-hydration rebuilds.
        self.rebuild_fraction = float(rebuild_fraction)
        #: Relations the view references — the delta routing surface.
        self.relations = frozenset(
            atom.relation for atom in view.atoms
        )
        #: Per-relation fingerprints of the database the view was first
        #: registered against; every snapshot save re-stamps these, so a
        #: restart always verifies against the *origin*, pre-delta data.
        self.origin_relations = dict(origin_relations)
        self.dynamic = dynamic
        self._lock = named_lock("server.dynamic")
        self._version = version
        current = _LiveVersion(version, generation, self._freeze_locked())
        self._versions: Dict[int, _LiveVersion] = {version: current}
        self._events: List[DeltaRecord] = []

    # ------------------------------------------------------------------
    # freezing
    # ------------------------------------------------------------------
    def _freeze_locked(self) -> FrozenDynamicView:
        """An immutable serving view of the representation's state now."""
        if self.dynamic.is_dirty:
            return FrozenDynamicView(
                self.view, database=self.dynamic.current_database()
            )
        return FrozenDynamicView(
            self.view, structure=self.dynamic.structure
        )

    # ------------------------------------------------------------------
    # the pin-count drain protocol
    # ------------------------------------------------------------------
    def pin(self) -> Tuple[int, int, FrozenDynamicView]:
        """Pin the current version; returns (version, generation, view)."""
        with self._lock:
            live = self._versions[self._version]
            live.pins += 1
            return live.version, live.generation, live.serving

    def repin(self, version: int) -> None:
        """Add one pin to an already-pinned version (batch cursors)."""
        with self._lock:
            self._versions[version].pins += 1

    def release(self, version: int) -> Optional[int]:
        """Drop one pin; returns the retired generation on drain, else None.

        A version retires when it is no longer current and its last pin
        is released — the caller then drops its cache entry. Releasing
        the current version never retires it.
        """
        with self._lock:
            live = self._versions.get(version)
            if live is None:
                return None
            live.pins -= 1
            if live.pins <= 0 and live.version != self._version:
                del self._versions[version]
                return live.generation
            return None

    def pin_count(self) -> int:
        """Total pins across all live versions (the gauge's value)."""
        with self._lock:
            return sum(live.pins for live in self._versions.values())

    def live_versions(self) -> Tuple[int, ...]:
        """Versions still serving or draining, oldest first."""
        with self._lock:
            return tuple(sorted(self._versions))

    def current_version(self) -> int:
        """The version new requests open against."""
        with self._lock:
            return self._version

    def current(self) -> Tuple[int, int, FrozenDynamicView]:
        """(version, generation, serving view) without taking a pin."""
        with self._lock:
            live = self._versions[self._version]
            return live.version, live.generation, live.serving

    def records_since(self, version: int) -> Tuple[DeltaRecord, ...]:
        """The in-memory delta records applied after ``version``."""
        with self._lock:
            return tuple(
                record
                for record in self._events
                if record.version > version
            )

    # ------------------------------------------------------------------
    # delta application
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        relation: str,
        inserts: Sequence[Sequence],
        deletes: Sequence[Sequence],
        next_generation: Callable[[], int],
        forced_version: Optional[int] = None,
    ) -> DeltaOutcome:
        """Apply one delta and advance the serving version atomically.

        ``forced_version`` is the replica-ingest mode: the delta is a
        shipped :class:`DeltaRecord` and must extend the version stream
        contiguously — an already-applied version is skipped, a gap
        raises :class:`~repro.exceptions.SnapshotError` (the caller
        falls back to re-hydration). Without it (the primary path), an
        ineffective delta is a complete no-op: no version bump, no new
        serving view, nothing for the caller to publish.
        """
        with self._lock:
            if forced_version is not None:
                if forced_version <= self._version:
                    return DeltaOutcome(
                        applied=0, version=self._version, skipped=True
                    )
                if forced_version != self._version + 1:
                    raise SnapshotError(
                        f"delta stream gap on {self.name!r}: record "
                        f"version {forced_version} cannot extend local "
                        f"version {self._version} — re-hydrate from a "
                        "fresh snapshot"
                    )
            rebuilds_before = self.dynamic.rebuilds
            applied = self.dynamic.apply_deltas(relation, inserts, deletes)
            if not applied and forced_version is None:
                return DeltaOutcome(applied=0, version=self._version)
            rebuilt = self.dynamic.rebuilds > rebuilds_before
            version = (
                forced_version
                if forced_version is not None
                else self._version + 1
            )
            generation = next_generation()
            self._version = version
            live = _LiveVersion(version, generation, self._freeze_locked())
            self._versions[version] = live
            retired = tuple(
                old
                for old in list(self._versions)
                if old != version and self._versions[old].pins <= 0
            )
            generations = tuple(
                self._versions.pop(old).generation for old in retired
            )
            record = DeltaRecord(
                view=self.name,
                relation=relation,
                version=version,
                inserts=tuple(tuple(row) for row in inserts),
                deletes=tuple(tuple(row) for row in deletes),
            )
            self._events.append(record)
            return DeltaOutcome(
                applied=applied,
                version=version,
                record=record,
                rebuilt=rebuilt,
                generation=generation,
                serving=live.serving,
                retired_generations=generations,
            )

    def replace(
        self,
        dynamic: DynamicRepresentation,
        version: int,
        generation: int,
    ) -> Tuple[int, ...]:
        """Swap in a re-hydrated representation (replica fallback path).

        Returns the retired generations of drained old versions; pinned
        versions keep draining against their frozen views as usual.
        """
        with self._lock:
            self.dynamic = dynamic
            self._version = version
            live = _LiveVersion(version, generation, self._freeze_locked())
            retired = tuple(
                old
                for old in list(self._versions)
                if self._versions[old].pins <= 0
            )
            generations = tuple(
                self._versions.pop(old).generation for old in retired
            )
            self._versions[version] = live
            self._events.clear()
            return generations

    def all_generations(self) -> Tuple[int, ...]:
        """Cache generations of every live version (for unregister)."""
        with self._lock:
            return tuple(
                live.generation for live in self._versions.values()
            )

    def save_to(self, store: "DynamicSnapshotStore") -> int:
        """Write the representation snapshot + meta; returns its version.

        Runs under the state lock so a concurrently applied delta can
        never tear the snapshot between the representation's state and
        the version the meta record claims it captures.
        """
        with self._lock:
            store.save(
                self.label,
                self.dynamic,
                self._version,
                self.origin_relations,
            )
            return self._version


class DynamicSnapshotStore:
    """The durable half of dynamic serving, under one directory.

    Three files per dynamic view (named by the same restart-stable
    slug+digest scheme as :class:`~repro.core.snapshot.SnapshotStore`):

    * ``<label>.snap`` — the encoded
      :class:`~repro.core.dynamic.DynamicRepresentation` (codec kind
      ``"dynamic"``), rewritten at registration and at every amortized
      rebuild boundary;
    * ``<label>.meta.json`` — the serving version the snapshot captures
      plus the **per-relation origin fingerprints**, the unit warm
      start verifies at;
    * ``<label>.deltas.jsonl`` — the append-only delta event log, one
      :class:`DeltaRecord` payload per line. Restart replays the suffix
      with versions past the meta's; replicas never append.
    """

    SNAP_SUFFIX = ".snap"
    META_SUFFIX = ".meta.json"
    LOG_SUFFIX = ".deltas.jsonl"

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def _base(self, label: str) -> Path:
        slug = (
            re.sub(r"[^A-Za-z0-9._-]+", "_", label)[:64].strip("._")
            or "dynamic"
        )
        digest = hashlib.sha256(label.encode("utf-8")).hexdigest()[:16]
        return self.directory / f"{slug}-{digest}"

    def snapshot_path(self, label: str) -> Path:
        """Where one label's representation snapshot lives."""
        return self._base(label).with_suffix(self.SNAP_SUFFIX)

    def meta_path(self, label: str) -> Path:
        """Where one label's sidecar meta record lives."""
        base = self._base(label)
        return base.with_name(base.name + self.META_SUFFIX)

    def log_path(self, label: str) -> Path:
        """Where one label's delta event log lives."""
        base = self._base(label)
        return base.with_name(base.name + self.LOG_SUFFIX)

    def save(
        self,
        label: str,
        dynamic: DynamicRepresentation,
        version: int,
        relations: Dict[str, str],
    ) -> None:
        """Write the snapshot and its meta record (atomically, each)."""
        save_snapshot(self.snapshot_path(label), dynamic)
        meta = {
            "schema": DELTA_LOG_SCHEMA,
            "version": int(version),
            "relations": dict(relations),
        }
        path = self.meta_path(label)
        path.parent.mkdir(parents=True, exist_ok=True)
        scratch = path.with_name(path.name + ".tmp")
        scratch.write_text(json.dumps(meta, indent=2, sort_keys=True))
        scratch.replace(path)

    def load_meta(self, label: str) -> Optional[Dict]:
        """The meta record, or None when absent/unreadable (cold start)."""
        try:
            meta = json.loads(self.meta_path(label).read_text())
        except (OSError, ValueError):
            return None
        if (
            not isinstance(meta, dict)
            or meta.get("schema") != DELTA_LOG_SCHEMA
            or not isinstance(meta.get("relations"), dict)
        ):
            return None
        return meta

    def load(self, label: str) -> DynamicRepresentation:
        """Decode the representation snapshot (SnapshotError if unusable)."""
        restored = load_snapshot(self.snapshot_path(label))
        if not isinstance(restored, DynamicRepresentation):
            raise SnapshotError(
                f"dynamic snapshot for {label!r} decoded to "
                f"{type(restored).__name__}, not a DynamicRepresentation"
            )
        return restored

    def append_log(self, label: str, record: DeltaRecord) -> None:
        """Append one delta record to the view's event log."""
        path = self.log_path(label)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            line = json.dumps(record.payload(), sort_keys=True)
        except (TypeError, ValueError) as error:
            raise SnapshotError(
                f"delta rows must be JSON-representable to be durable: "
                f"{error}"
            ) from error
        with path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def read_log(self, label: str) -> List[DeltaRecord]:
        """Every logged record, in file order (missing log → empty)."""
        path = self.log_path(label)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return []
        records: List[DeltaRecord] = []
        for number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except ValueError as error:
                raise SnapshotError(
                    f"malformed delta log {path} line {number}: {error}"
                ) from error
            records.append(DeltaRecord.from_payload(payload))
        return records

    def truncate_log(self, label: str) -> None:
        """Start the event log over (cold re-registration resets history)."""
        path = self.log_path(label)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("")


def ship_deltas(
    primary,
    replica,
    names: Optional[Sequence[str]] = None,
    churn_threshold: int = DEFAULT_CHURN_THRESHOLD,
) -> Dict[str, Tuple[str, int]]:
    """Converge a replica's dynamic views onto the primary's versions.

    For each dynamic view (``names`` or every one the primary serves),
    the records past the replica's version are shipped and applied in
    order. Past ``churn_threshold`` pending records — or on any version
    gap the replica reports — shipping falls back to the snapshot path:
    the primary writes a fresh snapshot and the replica re-hydrates
    from it. Returns ``{name: (mode, records_pending)}`` with mode
    ``"delta"`` or ``"snapshot"``; per-view shipping time lands in the
    primary's ``delta_ship_seconds`` histogram.
    """
    targets = tuple(names) if names is not None else primary.dynamic_views()
    results: Dict[str, Tuple[str, int]] = {}
    for name in targets:
        started = time.perf_counter()
        pending = primary.delta_records_since(
            name, replica.delta_version(name)
        )
        if len(pending) > churn_threshold:
            mode = "snapshot"
            primary.save_dynamic_snapshot(name)
            replica.rehydrate_dynamic([name])
        else:
            try:
                replica.apply_delta_records(pending)
                mode = "delta"
            except SnapshotError:
                # A gap (e.g. the replica hydrated past the in-memory
                # history): the stream cannot converge — re-hydrate.
                mode = "snapshot"
                primary.save_dynamic_snapshot(name)
                replica.rehydrate_dynamic([name])
        results[name] = (mode, len(pending))
        telemetry = primary.telemetry
        if telemetry is not None:
            from repro.engine.telemetry import LATENCY_BUCKETS

            telemetry.histogram(
                "delta_ship_seconds", buckets=LATENCY_BUCKETS, view=name
            ).observe(time.perf_counter() - started)
    return results
