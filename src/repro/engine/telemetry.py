"""Telemetry that survives restarts: metrics, traces, and the τ tuner.

Every layer of the engine computes rich signals — per-access delay gaps,
cache hit/miss/disk-tier counters, shared-scan dedup ratios, per-shard
routing counts, async queue depths — and, before this module, dropped
them on the floor. The paper's whole contribution is a *tunable*
space/delay tradeoff (τ), so the observed delay-gap distribution is
exactly the signal needed to re-optimize τ per view instead of trusting
the Section 6 estimate once at build time.

Three pieces:

* :class:`MetricsRegistry` — thread-safe counters, gauges, and
  histograms with **fixed** bucket boundaries (:data:`GAP_BUCKETS` for
  logical delay gaps, :data:`LATENCY_BUCKETS` for wall-clock seconds),
  labeled by view/shard/policy/op. :class:`Telemetry` wraps a registry
  with lightweight span tracing (``with telemetry.trace(op, view=...)``)
  and an optional durable store. Servers take ``telemetry=`` and
  instrument themselves; with ``telemetry=None`` (the default) every
  hook short-circuits, so serving without telemetry pays nothing.
* :class:`TelemetryStore` — versioned, schema-checked JSONL persistence
  (one file per process session, conventionally under
  ``snapshot_dir/telemetry/``). Restarts append new session files; the
  reader **merges across sessions** — counters and histogram buckets
  sum, gauges take the latest write — so per-view serving history is
  durable. Malformed or version-mismatched lines raise
  :class:`~repro.exceptions.TelemetryError` (stamped with file and line)
  instead of silently skewing history.
* :class:`AdaptiveTuner` — the closed loop. On a request-count cadence
  it reads each view's observed delay-gap percentile since the last
  pass, compares it against the gap budget, and re-derives the serving
  τ (:meth:`ViewServer.retune <repro.engine.server.ViewServer.retune>`):
  gaps over budget halve τ (buy delay with space), gaps comfortably
  under budget double it (give space back). Retuned and recently-hot
  views are **promoted** — built into the cache ahead of demand — and
  views that served nothing since the last pass are **demoted** to the
  disk tier. Every decision is emitted as a traced, explainable
  :class:`TuningDecision` event (durable when the telemetry persists).

The schema of every metric (names, labels, bucket bounds), the JSONL
record format, and the tuning runbook are documented in
``docs/OPERATIONS.md``.
"""

from __future__ import annotations

import bisect
import json
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Deque,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.engine.locking import named_lock
from repro.exceptions import ParameterError, TelemetryError

TELEMETRY_SCHEMA = 1

#: Fixed bucket upper bounds for logical delay gaps (join-counter steps
#: between consecutive outputs). Powers of two: τ moves in doublings, so
#: gap histograms resolve exactly the decisions the tuner makes.
GAP_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
)

#: Fixed bucket upper bounds for wall-clock latencies, in seconds
#: (100µs .. 10s; an implicit +inf overflow bucket catches the rest).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelItems = Tuple[Tuple[str, Any], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelItems:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = named_lock("telemetry.counter")
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ParameterError(
                f"counters only go up; got inc({amount!r})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """The current count."""
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time level that can move both ways (thread-safe)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = named_lock("telemetry.gauge")
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the level."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Move the level by ``delta`` (negative to decrease)."""
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        """The current level."""
        with self._lock:
            return self._value


class Histogram:
    """Fixed-boundary bucketed distribution (thread-safe).

    ``bounds`` are ascending bucket *upper* bounds; one implicit +inf
    overflow bucket is appended, so ``counts`` has ``len(bounds) + 1``
    entries. Boundaries are fixed at creation — two sessions observing
    the same metric always produce mergeable buckets.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ParameterError(
                f"histogram bounds must be ascending and non-empty, "
                f"got {bounds!r}"
            )
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = named_lock("telemetry.histogram")

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        # bisect_left finds the first bound >= value, which is exactly
        # the "value <= upper bound" bucket; past the last bound it
        # returns len(bounds) — the +inf overflow slot.
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total observations recorded."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    @property
    def counts(self) -> Tuple[int, ...]:
        """Per-bucket counts (last entry is the +inf overflow bucket)."""
        with self._lock:
            return tuple(self._counts)

    def percentile(self, q: float) -> float:
        """The bucket upper bound covering quantile ``q`` (0 < q <= 1).

        Returns the smallest bound whose cumulative count reaches
        ``q × count`` — a conservative (upper) estimate, deterministic
        for integer-valued observations like step gaps. The overflow
        bucket reports ``inf``; an empty histogram reports 0.0.
        """
        if not 0.0 < q <= 1.0:
            raise ParameterError(f"quantile must be in (0, 1], got {q!r}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for bound, bucket in zip(self.bounds, counts):
            cumulative += bucket
            if cumulative >= target:
                return bound
        return float("inf")

    def merge_counts(
        self, counts: Sequence[int], total_sum: float, total_count: int
    ) -> None:
        """Fold another session's buckets in (bounds must already match)."""
        with self._lock:
            if len(counts) != len(self._counts):
                raise TelemetryError(
                    f"histogram bucket count mismatch: have "
                    f"{len(self._counts)}, merging {len(counts)}"
                )
            for i, c in enumerate(counts):
                self._counts[i] += int(c)
            self._sum += float(total_sum)
            self._count += int(total_count)


class MetricsRegistry:
    """Get-or-create registry of labeled counters, gauges, histograms.

    Metrics are keyed by ``(name, sorted label items)``; creation is
    serialized, every metric instance synchronizes itself, so concurrent
    serving threads hammer the same counters safely. :meth:`snapshot`
    produces the JSON-ready structure :class:`TelemetryStore` persists;
    :meth:`merge_snapshot` folds one back in (the restart-merge path).
    """

    def __init__(self) -> None:
        self._lock = named_lock("telemetry.registry")
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter ``name{labels}``, created on first use."""
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter()
            return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge ``name{labels}``, created on first use."""
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge()
            return metric

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """The histogram ``name{labels}``, created with ``buckets``.

        Later calls must agree on the boundaries — fixed buckets are
        what keeps sessions mergeable — or raise
        :class:`~repro.exceptions.TelemetryError`.
        """
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(buckets)
            elif metric.bounds != tuple(float(b) for b in buckets):
                raise TelemetryError(
                    f"histogram {name!r} re-declared with different "
                    f"buckets: {metric.bounds!r} vs {tuple(buckets)!r}"
                )
            return metric

    def counter_value(self, name: str, **labels: Any) -> int:
        """The counter's current value, 0 if it was never created."""
        with self._lock:
            metric = self._counters.get((name, _label_key(labels)))
        return metric.value if metric is not None else 0

    def find_histogram(
        self, name: str, **labels: Any
    ) -> Optional[Histogram]:
        """The histogram if it exists — a peek that never creates one."""
        with self._lock:
            return self._histograms.get((name, _label_key(labels)))

    def snapshot(self) -> Dict[str, List[Dict[str, Any]]]:
        """A JSON-ready copy of every metric (see ``docs/OPERATIONS.md``)."""
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        return {
            "counters": [
                {"name": name, "labels": dict(labels), "value": c.value}
                for (name, labels), c in counters
            ],
            "gauges": [
                {"name": name, "labels": dict(labels), "value": g.value}
                for (name, labels), g in gauges
            ],
            "histograms": [
                {
                    "name": name,
                    "labels": dict(labels),
                    "buckets": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for (name, labels), h in histograms
            ],
        }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a persisted snapshot in: counts sum, gauges overwrite."""
        for entry in snapshot.get("counters", ()):
            self.counter(entry["name"], **entry["labels"]).inc(
                int(entry["value"])
            )
        for entry in snapshot.get("gauges", ()):
            self.gauge(entry["name"], **entry["labels"]).set(
                float(entry["value"])
            )
        for entry in snapshot.get("histograms", ()):
            self.histogram(
                entry["name"], buckets=entry["buckets"], **entry["labels"]
            ).merge_counts(entry["counts"], entry["sum"], entry["count"])


@dataclass
class Span:
    """One traced operation: what ran, with which labels, for how long."""

    op: str
    labels: Dict[str, Any]
    started: float
    seconds: float = 0.0
    annotations: Dict[str, Any] = field(default_factory=dict)

    def annotate(self, **fields: Any) -> "Span":
        """Attach explainability fields to the span (returns self)."""
        self.annotations.update(fields)
        return self


_RECORD_KINDS = ("metrics", "event")


def _validate_record(
    record: Any, source: str, line_number: int
) -> Dict[str, Any]:
    """One schema-checked record, or :class:`TelemetryError` saying why."""

    def bad(reason: str) -> TelemetryError:
        return TelemetryError(
            f"{source}:{line_number}: bad telemetry record: {reason}"
        )

    if not isinstance(record, dict):
        raise bad(f"expected an object, got {type(record).__name__}")
    if record.get("schema") != TELEMETRY_SCHEMA:
        raise bad(
            f"schema {record.get('schema')!r} != {TELEMETRY_SCHEMA}"
        )
    kind = record.get("kind")
    if kind not in _RECORD_KINDS:
        raise bad(f"unknown kind {kind!r} (expected one of {_RECORD_KINDS})")
    if not isinstance(record.get("session"), str):
        raise bad("missing session id")
    if not isinstance(record.get("seq"), int):
        raise bad("missing integer seq")
    if not isinstance(record.get("ts"), (int, float)):
        raise bad("missing numeric ts")
    payload = record.get(kind)
    if not isinstance(payload, dict):
        raise bad(f"missing {kind!r} payload object")
    return record


class TelemetryStore:
    """Versioned JSONL persistence for one process's telemetry session.

    Each store instance appends to its own session file
    (``<directory>/<session>.jsonl``); a restarted server starts a new
    session file in the same directory, and :meth:`load` /
    :meth:`merged_registry` read *all* session files, so history
    accumulates across restarts instead of being overwritten. Every
    record carries ``schema``/``session``/``seq``/``ts``; malformed or
    version-mismatched lines raise
    :class:`~repro.exceptions.TelemetryError`. The conventional location
    is ``snapshot_dir/telemetry/`` (servers given ``telemetry=True``
    put it there themselves).
    """

    def __init__(
        self, directory: Union[str, Path], session: Optional[str] = None
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.session = session or uuid.uuid4().hex[:12]
        self.path = self.directory / f"{self.session}.jsonl"
        self._lock = named_lock("telemetry.store")
        self._seq = 0

    def _append(self, kind: str, payload: Mapping[str, Any]) -> Dict:
        with self._lock:
            self._seq += 1
            record = {
                "schema": TELEMETRY_SCHEMA,
                "kind": kind,
                "session": self.session,
                "seq": self._seq,
                "ts": time.time(),
                kind: dict(payload),
            }
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return record

    def write_metrics(self, snapshot: Mapping[str, Any]) -> Dict:
        """Persist one cumulative metrics snapshot (latest-per-session wins)."""
        return self._append("metrics", snapshot)

    def write_event(self, event: Mapping[str, Any]) -> Dict:
        """Persist one point event (tuner decision, split, ...)."""
        return self._append("event", event)

    @classmethod
    def load(cls, directory: Union[str, Path]) -> List[Dict[str, Any]]:
        """Every schema-checked record across all session files.

        Ordered by ``(ts, session, seq)`` so interleaved sessions replay
        in wall-clock order. An absent directory is simply empty history.
        """
        root = Path(directory)
        records: List[Dict[str, Any]] = []
        if not root.is_dir():
            return records
        for path in sorted(root.glob("*.jsonl")):
            with path.open("r", encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    if not line.strip():
                        continue
                    try:
                        parsed = json.loads(line)
                    except ValueError as error:
                        raise TelemetryError(
                            f"{path}:{line_number}: not JSON: {error}"
                        ) from None
                    records.append(
                        _validate_record(parsed, str(path), line_number)
                    )
        records.sort(key=lambda r: (r["ts"], r["session"], r["seq"]))
        return records

    @classmethod
    def merged_registry(
        cls, directory: Union[str, Path]
    ) -> Tuple[MetricsRegistry, List[Dict[str, Any]]]:
        """(registry merged across sessions, events in replay order).

        Metric snapshots are cumulative *within* a session, so only the
        latest snapshot of each session is folded in — then counters and
        histogram buckets sum across sessions and gauges take the last
        session's level. This is what ``repro metrics show`` replays.
        """
        records = cls.load(directory)
        latest: Dict[str, Dict[str, Any]] = {}
        events: List[Dict[str, Any]] = []
        for record in records:
            if record["kind"] == "metrics":
                session = record["session"]
                held = latest.get(session)
                if held is None or record["seq"] >= held["seq"]:
                    latest[session] = record
            else:
                events.append(record)
        registry = MetricsRegistry()
        for record in sorted(
            latest.values(), key=lambda r: (r["ts"], r["session"])
        ):
            registry.merge_snapshot(record["metrics"])
        return registry, events


class Telemetry:
    """The engine's telemetry facade: registry + spans + durable store.

    Hand one instance to any server (``ViewServer(db, telemetry=t)``,
    sharded/async/replica alike — they share it, so one registry sees
    the whole stack). With ``directory=None`` everything stays
    in-memory; with a directory, events persist immediately and
    :meth:`flush` writes cumulative metric snapshots a restart can
    merge. Servers never flush behind your back except on
    :meth:`close`.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        session: Optional[str] = None,
        max_spans: int = 256,
        max_events: int = 1024,
    ) -> None:
        self.registry = MetricsRegistry()
        self.store: Optional[TelemetryStore] = (
            TelemetryStore(directory, session=session)
            if directory is not None
            else None
        )
        self.spans: Deque[Span] = deque(maxlen=max_spans)
        self.events: Deque[Dict[str, Any]] = deque(maxlen=max_events)

    # -- registry passthroughs ----------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        """See :meth:`MetricsRegistry.counter`."""
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """See :meth:`MetricsRegistry.gauge`."""
        return self.registry.gauge(name, **labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """See :meth:`MetricsRegistry.histogram`."""
        return self.registry.histogram(name, buckets=buckets, **labels)

    # -- tracing and events -------------------------------------------
    @contextmanager
    def trace(self, op: str, **labels: Any) -> Iterator[Span]:
        """Span context manager: times ``op`` into ``span_seconds{op}``.

        The yielded :class:`Span` lands in :attr:`spans` (a bounded
        ring) on exit; annotate it for explainability
        (``span.annotate(reason=...)``).
        """
        span = Span(op=op, labels=dict(labels), started=time.time())
        started = time.perf_counter()
        try:
            yield span
        finally:
            span.seconds = time.perf_counter() - started
            self.histogram(
                "span_seconds", buckets=LATENCY_BUCKETS, op=op
            ).observe(span.seconds)
            self.spans.append(span)

    def event(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Record one explainable point event, durably when persisted."""
        payload = {"op": op, **fields}
        self.counter("events_total", op=op).inc()
        self.events.append(payload)
        if self.store is not None:
            self.store.write_event(payload)
        return payload

    # -- persistence ---------------------------------------------------
    def flush(self) -> Optional[Dict[str, Any]]:
        """Persist a cumulative metrics snapshot (None when in-memory)."""
        if self.store is None:
            return None
        return self.store.write_metrics(self.registry.snapshot())

    def close(self) -> None:
        """Final flush — call when the owning server shuts down."""
        self.flush()

    @staticmethod
    def replay(
        directory: Union[str, Path],
    ) -> Tuple[MetricsRegistry, List[Dict[str, Any]]]:
        """Merged history of every session under ``directory``."""
        return TelemetryStore.merged_registry(directory)


# ----------------------------------------------------------------------
# the closed loop: observed gaps -> serving τ
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TuningDecision:
    """One explainable tuner action (also emitted as a telemetry event).

    ``kind`` is ``"retune"`` (serving τ moved), ``"promote"`` (the
    serving structure was built/warm-loaded ahead of demand) or
    ``"demote"`` (an idle view's residents dropped to the disk tier);
    ``observed_gap`` is the delay-gap percentile the decision was based
    on, measured since the previous pass, against ``budget``.
    """

    kind: str
    view: str
    tau_before: float
    tau_after: float
    observed_gap: float
    budget: float
    reason: str


class AdaptiveTuner:
    """Re-derive each view's serving τ from its observed delay gaps.

    Drive it by calling :meth:`maybe_tune` on your serving cadence
    (e.g. once per batch): every ``interval_requests`` served requests
    it runs one :meth:`tune` pass over the server's views. A pass reads
    the ``delay_step_gap{view}`` histogram delta since the previous
    pass and compares its ``percentile`` against the view's gap budget:

    * observed > budget → **halve** τ (paper: smaller τ buys delay with
      space) and promote the new structure ahead of demand;
    * observed × ``relax_headroom`` ≤ budget → **double** τ (give space
      back — the workload is not using the delay it paid for);
    * hot views whose serving structure fell out of the cache are
      promoted; views with zero requests since the last pass are
      demoted to the disk tier.

    τ stays within [``min_tau``, ``max_tau``]. The budget is
    ``gap_budget`` when given, else per view: a delay-budget
    registration's own budget, or the registration's τ (Theorem 1 ties
    the delay bound to τ, so "meeting τ" is the natural default).
    Decisions depend only on step-gap histograms and request counts —
    both deterministic for a seeded stream — never on wall-clock
    timings.

    The server needs the tuning surface ``views`` / ``registration`` /
    ``requests_served`` / ``serving_tau`` / ``retune`` / ``prefetch`` /
    ``resident`` / ``demote``, which :class:`ViewServer
    <repro.engine.server.ViewServer>` and :class:`ShardedViewServer
    <repro.engine.sharding.ShardedViewServer>` both expose. Don't point
    it at a :class:`ReplicaServer <repro.engine.replica.ReplicaServer>`:
    promotion builds, and replicas refuse to.
    """

    def __init__(
        self,
        server,
        telemetry: Telemetry,
        gap_budget: Optional[float] = None,
        percentile: float = 0.95,
        interval_requests: int = 256,
        min_tau: float = 1.0,
        max_tau: float = 4096.0,
        relax_headroom: float = 4.0,
    ) -> None:
        if gap_budget is not None and gap_budget <= 0:
            raise ParameterError(
                f"gap_budget must be positive, got {gap_budget}"
            )
        if interval_requests < 1:
            raise ParameterError(
                f"interval_requests must be >= 1, got {interval_requests}"
            )
        if not 0.0 < percentile <= 1.0:
            raise ParameterError(
                f"percentile must be in (0, 1], got {percentile}"
            )
        if min_tau <= 0 or max_tau < min_tau:
            raise ParameterError(
                f"need 0 < min_tau <= max_tau, got [{min_tau}, {max_tau}]"
            )
        self.server = server
        self.telemetry = telemetry
        self.gap_budget = gap_budget
        self.percentile = percentile
        self.interval_requests = interval_requests
        self.min_tau = min_tau
        self.max_tau = max_tau
        self.relax_headroom = relax_headroom
        self.decisions: List[TuningDecision] = []
        self._lock = named_lock("telemetry.tuner")
        self._last_served = 0
        # Per-view histogram/counter levels at the previous pass, so a
        # pass judges only what happened since the last one.
        self._seen_gaps: Dict[str, Tuple[Tuple[int, ...], float, int]] = {}
        self._seen_requests: Dict[str, int] = {}

    def maybe_tune(self) -> List[TuningDecision]:
        """Run a pass if ``interval_requests`` were served since the last."""
        with self._lock:
            served = self.server.requests_served
            if served - self._last_served < self.interval_requests:
                return []
            self._last_served = served
        return self.tune()

    def _budget_for(self, name: str) -> float:
        if self.gap_budget is not None:
            return self.gap_budget
        registration = self.server.registration(name)
        if registration.policy == "delay-budget":
            return float(registration.budget)
        return float(registration.tau)

    def _gap_delta(self, name: str) -> Tuple[float, int]:
        """(gap percentile, observations) since the previous pass."""
        histogram = self.telemetry.registry.find_histogram(
            "delay_step_gap", view=name
        )
        if histogram is None:
            return 0.0, 0
        counts = histogram.counts
        total_sum, total = histogram.sum, histogram.count
        seen_counts, _, seen_total = self._seen_gaps.get(
            name, ((0,) * len(counts), 0.0, 0)
        )
        self._seen_gaps[name] = (counts, total_sum, total)
        delta = [c - s for c, s in zip(counts, seen_counts)]
        observed = total - seen_total
        if observed <= 0:
            return 0.0, 0
        target = self.percentile * observed
        cumulative = 0
        for bound, bucket in zip(histogram.bounds, delta):
            cumulative += bucket
            if cumulative >= target:
                return bound, observed
        return float("inf"), observed

    def _requests_delta(self, name: str) -> int:
        served = self.telemetry.registry.counter_value(
            "requests_total", view=name, mode="open"
        ) + self.telemetry.registry.counter_value(
            "requests_total", view=name, mode="batch"
        )
        delta = served - self._seen_requests.get(name, 0)
        self._seen_requests[name] = served
        return delta

    def _emit(self, decision: TuningDecision) -> None:
        self.decisions.append(decision)
        self.telemetry.counter(
            "tuning_decisions_total", kind=decision.kind
        ).inc()
        self.telemetry.event(
            "tuning",
            kind=decision.kind,
            view=decision.view,
            tau_before=decision.tau_before,
            tau_after=decision.tau_after,
            observed_gap=decision.observed_gap,
            budget=decision.budget,
            reason=decision.reason,
        )

    def tune(self) -> List[TuningDecision]:
        """One full pass over the server's views; returns its decisions."""
        decisions: List[TuningDecision] = []
        with self._lock:
            with self.telemetry.trace("tune") as span:
                for name in self.server.views():
                    decisions.extend(self._tune_view(name))
                span.annotate(decisions=len(decisions))
        return decisions

    def _tune_view(self, name: str) -> List[TuningDecision]:
        out: List[TuningDecision] = []
        tau = self.server.serving_tau(name)
        budget = self._budget_for(name)
        observed, observations = self._gap_delta(name)
        hot = self._requests_delta(name) > 0
        if not hot:
            dropped = self.server.demote(name)
            if dropped:
                decision = TuningDecision(
                    kind="demote",
                    view=name,
                    tau_before=tau,
                    tau_after=tau,
                    observed_gap=observed,
                    budget=budget,
                    reason=(
                        f"no requests since the last pass; dropped "
                        f"{dropped} resident entr"
                        f"{'y' if dropped == 1 else 'ies'} to the disk tier"
                    ),
                )
                with self.telemetry.trace("tune.demote", view=name):
                    self._emit(decision)
                out.append(decision)
            return out
        new_tau = tau
        reason = ""
        if observations > 0 and observed > budget and tau > self.min_tau:
            new_tau = max(self.min_tau, tau / 2.0)
            reason = (
                f"p{int(self.percentile * 100)} step gap {observed:g} "
                f"exceeds budget {budget:g}: buying delay with space"
            )
        elif (
            observations > 0
            and observed * self.relax_headroom <= budget
            and tau < self.max_tau
        ):
            new_tau = min(self.max_tau, tau * 2.0)
            reason = (
                f"p{int(self.percentile * 100)} step gap {observed:g} is "
                f"under budget {budget:g} with {self.relax_headroom:g}x "
                "headroom: giving space back"
            )
        if new_tau != tau:
            with self.telemetry.trace("tune.retune", view=name) as span:
                self.server.retune(name, new_tau)
                decision = TuningDecision(
                    kind="retune",
                    view=name,
                    tau_before=tau,
                    tau_after=new_tau,
                    observed_gap=observed,
                    budget=budget,
                    reason=reason,
                )
                span.annotate(tau=new_tau, reason=reason)
                self._emit(decision)
            out.append(decision)
        if not self.server.resident(name):
            with self.telemetry.trace("tune.promote", view=name):
                self.server.prefetch(name)
                decision = TuningDecision(
                    kind="promote",
                    view=name,
                    tau_before=tau,
                    tau_after=new_tau,
                    observed_gap=observed,
                    budget=budget,
                    reason=(
                        f"hot view not resident at serving tau "
                        f"{new_tau:g}: built ahead of demand"
                    ),
                )
                self._emit(decision)
            out.append(decision)
        return out
