"""Shared-scan batch execution: many cursors fed by one traversal.

``answer_batch`` has always shared work between *identical* requests; this
module shares it between *related* ones. A batch of
:class:`~repro.engine.api.AccessRequest`\\ s over one representation is
grouped into **states** — distinct ``(access, resume point)`` pairs — and
the whole group rides a single merged descent
(:meth:`~repro.core.structure.CompressedRepresentation.shared_enumerate`):
one tree walk visits each node once for however many states still descend
through it, per-atom trie descents are deduplicated across prefix-sharing
accesses, and every emitted tuple is routed into the per-cursor buffers
of the requests that asked for it. The cursor layer already isolates
consumption from enumeration, so the swap is invisible to callers: each
request still gets its own lazy :class:`~repro.engine.api.AnswerCursor`
honoring its own ``limit`` / ``start_after`` / ``measure`` knobs.

Demand-driven pumping
---------------------
Nothing is enumerated ahead of demand: pulling any cursor advances the
shared scan just far enough to produce that cursor's next tuple, parking
everything emitted for the others in their buffers. When every cursor of
a state is finished (limit reached, closed, or dropped), the state's
flag in the scan's ``alive`` list flips and the merged descent prunes it
at the next node boundary — a subtree only dead states wanted is never
visited. A scan (and the cursors it feeds) is single-consumer state, like
any generator: drive one scan from one thread.

Representations without ``supports_shared_scan`` degrade to a sequential
per-state pump over :func:`~repro.engine.api.resume_enumeration` — same
cursor protocol, still deduplicating duplicate requests, just without
the merged descent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.context import SubtrieCache
from repro.engine.api import (
    AccessRequest,
    AnswerCursor,
    resume_enumeration,
)
from repro.joins.generic_join import JoinCounter


@dataclass(frozen=True)
class SharedScanStats:
    """Sharing achieved by one scan (how much work one traversal saved).

    ``requests`` is the group size; ``states`` the distinct
    ``(access, resume point)`` traversals actually descended — the gap is
    pure deduplication. ``subtrie_hits``/``subtrie_misses`` count
    per-atom trie-descent steps resolved from the scan's shared
    :class:`~repro.core.context.SubtrieCache` versus walked fresh:
    prefix-sharing accesses raise the hit side. ``pruned_states`` counts
    states deactivated *before* the scan exhausted (limit-stopped or
    closed early) — subtrees only they wanted were never visited.
    """

    requests: int
    states: int
    subtrie_hits: int
    subtrie_misses: int
    pruned_states: int = 0

    @property
    def shared_requests(self) -> int:
        """Requests served without a traversal lane of their own."""
        return self.requests - self.states

    @property
    def dedup_ratio(self) -> float:
        """Requests per traversal lane (1.0 means nothing was shared)."""
        return self.requests / self.states if self.states else 1.0


class _Lane:
    """One request's buffer between the shared scan and its cursor."""

    __slots__ = ("buffer", "alive")

    def __init__(self):
        self.buffer: Deque[Tuple] = deque()
        self.alive = True


class _ScanState:
    """One distinct ``(access, scan seek point)`` of a scan group.

    ``token`` is the seek point the scan itself honors: the request's
    resume token when the representation can seek mid-traversal, else
    ``None`` (full scan — the lane skip-scans its own token instead, so
    a tokenless request and a skip-scanned one share this state).

    ``step_max_gap``/``last_steps`` track the state's logical delay at
    *emission* time: the scan attributes each state's counter steps
    between its own consecutive outputs, which is exactly the gap
    sequence a solo traversal of the state would observe — cursor-side
    delivery can lag arbitrarily behind (rows park in buffers), so
    measuring there would misattribute the gaps.
    """

    __slots__ = (
        "index",
        "access",
        "token",
        "counter",
        "lanes",
        "last_steps",
        "step_max_gap",
    )

    def __init__(self, index: int, access: Tuple, token: Optional[Tuple]):
        self.index = index
        self.access = access
        self.token = token
        self.counter: Optional[JoinCounter] = None
        self.lanes: List[_Lane] = []
        self.last_steps = 0
        self.step_max_gap = 0


class SharedScan:
    """One shared traversal serving a group of requests over one structure.

    Build it with the resolved representation and the group's requests
    (all over the same view and τ — the server's ``open_batch`` does the
    grouping), then take :meth:`cursors`; the list aligns with the
    requests. :meth:`stats` reports the sharing after (or during)
    consumption.
    """

    def __init__(self, representation, requests: Sequence[AccessRequest]):
        self.representation = representation
        self.requests: Tuple[AccessRequest, ...] = tuple(requests)
        self._cache = SubtrieCache()
        self._finished = False
        self._pruned_states = 0
        shared = getattr(representation, "supports_shared_scan", False)
        seeks = getattr(representation, "supports_resume", False)
        self._direct = not shared
        self._states: List[_ScanState] = []
        self._lanes: List[Tuple[_ScanState, _Lane]] = []
        by_key: Dict[Tuple, _ScanState] = {}
        for request in self.requests:
            token = request.start_after
            if shared and not seeks:
                # The scan cannot seek: run the state from the start and
                # let the lane skip-scan past its own token.
                token = None
            key = (request.access, token)
            state = by_key.get(key)
            if state is None:
                state = _ScanState(len(self._states), request.access, token)
                by_key[key] = state
                self._states.append(state)
            if request.measure and state.counter is None:
                state.counter = JoinCounter()
            lane = _Lane()
            state.lanes.append(lane)
            self._lanes.append((state, lane))
        self._alive = [True] * len(self._states)
        if shared:
            self._events: Iterator[Tuple[int, Tuple]] = (
                representation.shared_enumerate(
                    [state.access for state in self._states],
                    starts=[state.token for state in self._states],
                    counters=[state.counter for state in self._states],
                    cache=self._cache,
                    alive=self._alive,
                )
            )
        else:
            self._events = self._direct_events()

    # ------------------------------------------------------------------
    # the pump
    # ------------------------------------------------------------------
    def _direct_events(self) -> Iterator[Tuple[int, Tuple]]:
        """Fallback: sequential per-state streams behind the same protocol."""
        for state in self._states:
            if not self._alive[state.index]:
                continue
            source = resume_enumeration(
                self.representation,
                state.access,
                state.token,
                state.counter,
            )
            for row in source:
                yield (state.index, row)
                if not self._alive[state.index]:
                    break

    def advance(self) -> bool:
        """Pull one event off the scan into its state's live buffers.

        Returns False once the underlying enumeration is exhausted (and
        never touches it again).
        """
        if self._finished:
            return False
        try:
            index, row = next(self._events)
        except StopIteration:
            self._finished = True
            # Closing gaps, measure_enumeration-style: states still live
            # at the end were exhausted, and their trailing steps since
            # the last output are part of the delay. Limit-pruned states
            # never observe exhaustion, exactly like a limit-stopped
            # solo cursor.
            for state in self._states:
                if state.counter is not None and self._alive[state.index]:
                    gap = state.counter.steps - state.last_steps
                    state.step_max_gap = max(state.step_max_gap, gap)
                    state.last_steps = state.counter.steps
            return False
        state = self._states[index]
        if state.counter is not None:
            gap = state.counter.steps - state.last_steps
            state.step_max_gap = max(state.step_max_gap, gap)
            state.last_steps = state.counter.steps
        for lane in state.lanes:
            if lane.alive:
                lane.buffer.append(row)
        return True

    def _release(self, state: _ScanState, lane: _Lane) -> None:
        """A lane is done; prune the state once no lane still wants rows."""
        lane.alive = False
        lane.buffer.clear()
        if not any(peer.alive for peer in state.lanes):
            if self._alive[state.index] and not self._finished:
                # Deactivated while the scan still had work: the merged
                # descent skips this state's remaining subtrees.
                self._pruned_states += 1
            self._alive[state.index] = False

    # ------------------------------------------------------------------
    # cursors over the pump
    # ------------------------------------------------------------------
    def _lane_source(
        self, state: _ScanState, lane: _Lane, request: AccessRequest
    ) -> Iterator[Tuple]:
        try:
            if request.limit == 0:
                return
            # Token handling mirrors the single-cursor paths: an in-scan
            # seek delivers >= token, so drop a leading row equal to it;
            # a skip-scan drops everything up to and including the token
            # (and everything, if the token never appears). The direct
            # fallback's resume_enumeration is already strictly-after.
            token = request.start_after
            if self._direct:
                skipping = leading = False
            else:
                skipping = token is not None and state.token is None
                leading = token is not None and state.token is not None
            delivered = 0
            while True:
                if lane.buffer:
                    row = lane.buffer.popleft()
                elif not self.advance():
                    return  # scan exhausted and nothing left buffered
                else:
                    continue
                if skipping:
                    if row == token:
                        skipping = False
                    continue
                if leading:
                    leading = False
                    if row == token:
                        continue
                delivered += 1
                if request.limit is not None and delivered >= request.limit:
                    # Release BEFORE yielding the final row: a cursor at
                    # its limit never pulls this generator again (its own
                    # limit check short-circuits), so code after the
                    # yield would only run on close() — and the scan
                    # would keep traversing and buffering for a lane
                    # nobody reads.
                    self._release(state, lane)
                    yield row
                    return
                yield row
        finally:
            self._release(state, lane)

    def cursors(self) -> List[AnswerCursor]:
        """One lazy cursor per request, aligned with the group order.

        Duplicate requests get distinct cursors over one shared state
        (and, under ``measure``, share that state's step counter — the
        same attribution ``answer_batch`` has always reported for
        duplicates).
        """
        return [
            AnswerCursor(
                request,
                self._lane_source(state, lane, request),
                counter=state.counter if request.measure else None,
                gap_tracker=state if request.measure else None,
            )
            for request, (state, lane) in zip(self.requests, self._lanes)
        ]

    @property
    def kernel_path(self) -> str:
        """Which enumeration path this group rides.

        ``columnar`` when the representation's fresh compiled layout
        serves the whole merged descent; ``fallback`` otherwise — direct
        (sequential) scans, any measuring lane in the group (the
        all-or-nothing rule that keeps measured stats on the reference
        path), a stale or absent layout, or the kernel switched off.
        """
        if self._direct:
            return "fallback"
        if any(state.counter is not None for state in self._states):
            return "fallback"
        if getattr(self.representation, "kernel_ready", False):
            return "columnar"
        return "fallback"

    def stats(self) -> SharedScanStats:
        """This scan's sharing so far (final once every cursor closed)."""
        return SharedScanStats(
            requests=len(self.requests),
            states=len(self._states),
            subtrie_hits=self._cache.hits,
            subtrie_misses=self._cache.misses,
            pruned_states=self._pruned_states,
        )


def open_group(
    representation, requests: Sequence[AccessRequest]
) -> List[AnswerCursor]:
    """Cursors for one request group over one representation (shared scan).

    The module-level convenience mirroring
    :func:`~repro.engine.api.open_cursor`: callers holding a bare
    representation (no server) get the same one-traversal batch
    execution ``ViewServer.open_batch`` provides.
    """
    return SharedScan(representation, requests).cursors()
