"""Read replicas: serve registered views purely from shipped snapshots.

The paper's compressed representation is small by construction —
``O(|D|^(τ-width tradeoff))`` cells against a potentially huge result —
which makes the *structure* the natural unit of replication: ship the
fingerprinted snapshot bytes (:mod:`repro.core.snapshot`), not the
result set and not the build. A :class:`ReplicaServer` is a
:class:`~repro.engine.server.ViewServer` with the build path removed:

* **Hydration is the only population path.** A cache miss consults the
  snapshot directory; a valid snapshot decodes and serves. If no usable
  snapshot exists, serving fails with
  :class:`~repro.exceptions.SnapshotError` — deliberately *fatal, not a
  fallback*. A replica that silently rebuilt would need the full
  database and builder resources, would hide a broken shipping pipeline
  behind quietly burned CPU, and could serve a structure built from a
  *different* database state than its siblings. Failing loudly keeps
  replicas cheap and the pipeline honest.
* **Replicas never write snapshots.** Hydrated entries are already
  ``on_disk``, so eviction demotes nothing and the snapshot directory
  stays a pure input — several replicas can share one shipped directory
  (or a read-only mount) without trampling each other.
* The primary makes structures shippable with
  :meth:`RepresentationCache.demote_all
  <repro.engine.cache.RepresentationCache.demote_all>` (flush every
  resident to the disk tier); the snapshot store's database fingerprint
  refuses snapshots built from a different database state, so a stale
  replica fails loudly instead of answering from the past.

:class:`~repro.engine.async_server.AsyncViewServer` balances read
traffic across replicas (round-robin or least-pending) with per-tenant
admission control.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Union

from repro.core.structure import CompressedRepresentation
from repro.database.catalog import Database
from repro.engine.server import Registration, ViewServer
from repro.engine.telemetry import Telemetry
from repro.exceptions import ParameterError, SnapshotError

__all__ = ["ReplicaServer"]


class ReplicaServer(ViewServer):
    """A snapshot-hydrated, build-refusing :class:`ViewServer`.

    Parameters
    ----------
    db:
        The database the shipped snapshots were built from. Only its
        fingerprint and relation sizes are consulted (registration
        resolves τ against them; hydration verifies the fingerprint);
        enumeration runs off the decoded structures.
    snapshot_dir:
        The shipped snapshot directory — required; a replica without one
        could never serve anything.
    max_entries / max_cells / cache_policy:
        Cache bounds as for :class:`ViewServer`; evictions simply drop
        entries (they are already on disk), and a later request
        re-hydrates.
    telemetry:
        As for :class:`ViewServer`; replicas additionally record
        ``replica_hydrations_total`` (eager warm-ups) and
        ``replica_refusals_total`` (requests that found no usable
        snapshot and failed loudly).

    Example
    -------
    Primary builds and ships; replica hydrates and serves::

        primary = ViewServer(db, snapshot_dir=shared)
        name = primary.register(VIEW, tau=8)
        primary.representation(name)      # build once
        primary.cache.demote_all()        # make every resident shippable

        replica = ReplicaServer(db, snapshot_dir=shared)
        replica.register(VIEW, tau=8)     # same knobs -> same labels
        replica.hydrate()                 # decode, never build
        replica.answer(name, access)      # zero builds, ever
    """

    def __init__(
        self,
        db: Database,
        snapshot_dir: Union[str, Path],
        max_entries: Optional[int] = 8,
        max_cells: Optional[int] = None,
        cache_policy: str = "lru",
        telemetry: Union[Telemetry, bool, None] = None,
    ):
        if snapshot_dir is None:
            raise ParameterError(
                "a ReplicaServer needs a snapshot_dir: replicas hydrate "
                "from shipped snapshots and never build"
            )
        super().__init__(
            db,
            max_entries=max_entries,
            max_cells=max_cells,
            snapshot_dir=snapshot_dir,
            cache_policy=cache_policy,
            telemetry=telemetry,
        )
        # The dynamic tier follows the same one-way contract: replicas
        # read the primary's snapshots/meta/delta log, never write them.
        self._writes_dynamic_snapshots = False

    def _build(
        self, registration: Registration, tau: float
    ) -> CompressedRepresentation:
        # The build path is reached only when hydration found no usable
        # snapshot — on a replica that is a shipping failure, not a
        # reason to burn CPU rebuilding from a database this process may
        # not even hold in full.
        label = self._snapshot_label(registration, tau)
        if self.telemetry is not None:
            self.telemetry.counter(
                "replica_refusals_total", view=registration.name
            ).inc()
        raise SnapshotError(
            f"replica refuses to build {registration.name!r} (tau={tau!r}): "
            f"no usable snapshot under label {label!r} in "
            f"{self.snapshot_store.directory} — ship one from the primary "
            "(cache.demote_all()) or re-point the replica"
        )

    def _build_dynamic(self, registration: Registration, rebuild_fraction):
        # Same refusal as `_build`: a dynamic view with no usable dynamic
        # snapshot means the shipping pipeline is broken, and a replica
        # quietly rebuilding would serve from a database state its
        # siblings never saw.
        if self.telemetry is not None:
            self.telemetry.counter(
                "replica_refusals_total", view=registration.name
            ).inc()
        raise SnapshotError(
            f"replica refuses to build dynamic view "
            f"{registration.name!r}: no usable dynamic snapshot for it — "
            "register it on the primary (which writes the snapshot) or "
            "ship_deltas/save_dynamic_snapshot first"
        )

    def rehydrate_dynamic(self, names: Optional[Iterable[str]] = None) -> int:
        """Re-hydrate dynamic views from shipped snapshots, counted.

        The replica half of the churn-storm fallback in
        :func:`~repro.engine.dynamic_serving.ship_deltas`; each view
        re-hydrated here also counts in ``replica_hydrations_total``.
        """
        targets = tuple(names) if names is not None else self.dynamic_views()
        count = super().rehydrate_dynamic(targets)
        if self.telemetry is not None:
            for name in targets:
                self.telemetry.counter(
                    "replica_hydrations_total", view=name
                ).inc()
        return count

    def hydrate(self, names: Optional[Iterable[str]] = None) -> int:
        """Decode every (or the named) registered view's structure now.

        Eager warm-up: after ``hydrate()`` the first request of each view
        pays no decode. Raises :class:`~repro.exceptions.SnapshotError`
        on the first view whose snapshot is missing, corrupt, or built
        from a different database — fatal by design. Returns the number
        of structures hydrated.
        """
        targets = tuple(names) if names is not None else self.views()
        if self.telemetry is None:
            for name in targets:
                self.representation(name)
            return len(targets)
        with self.telemetry.trace("hydrate") as span:
            for name in targets:
                self.representation(name)
                self.telemetry.counter(
                    "replica_hydrations_total", view=name
                ).inc()
            span.annotate(views=list(targets))
        return len(targets)
