"""CSV loading and saving for relations and databases.

Values are parsed as integers when possible and kept as strings
otherwise — the structures only require mutually comparable, hashable
values per column, so mixed files should keep a column's type uniform.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional, Union

from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.exceptions import SchemaError


def _parse_value(text: str):
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        return text


def load_relation_csv(
    path: Union[str, Path],
    name: Optional[str] = None,
    has_header: bool = False,
) -> Relation:
    """Load one relation from a CSV file (no header by default).

    The relation name defaults to the file stem; arity is inferred from
    the first row and enforced on the rest.
    """
    path = Path(path)
    rows = []
    arity = None
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        for index, record in enumerate(reader):
            if index == 0 and has_header:
                continue
            if not record:
                continue
            parsed = tuple(_parse_value(cell) for cell in record)
            if arity is None:
                arity = len(parsed)
            elif len(parsed) != arity:
                raise SchemaError(
                    f"{path}: row {index + 1} has {len(parsed)} columns, "
                    f"expected {arity}"
                )
            rows.append(parsed)
    if arity is None:
        raise SchemaError(f"{path}: empty relation file")
    return Relation(name or path.stem, arity, rows)


def save_relation_csv(relation: Relation, path: Union[str, Path]) -> None:
    """Write a relation's rows (sorted) to a CSV file."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        for row in relation.sorted_rows():
            writer.writerow(row)


def load_database(directory: Union[str, Path]) -> Database:
    """Load every ``*.csv`` in a directory as a relation named by stem."""
    directory = Path(directory)
    files = sorted(directory.glob("*.csv"))
    if not files:
        raise SchemaError(f"{directory}: no .csv relation files found")
    return Database([load_relation_csv(path) for path in files])
