"""Semijoin filtering for bottom-up reductions."""

from __future__ import annotations

from typing import Iterable, Sequence, Set, Tuple

from repro.query.atoms import Variable


def semijoin(
    rows_a: Iterable[Tuple],
    vars_a: Sequence[Variable],
    rows_b: Iterable[Tuple],
    vars_b: Sequence[Variable],
) -> Set[Tuple]:
    """Rows of ``a`` that agree with some row of ``b`` on shared variables.

    With no shared variables this is ``a`` itself when ``b`` is non-empty
    and empty otherwise, matching semijoin semantics on the cross product.
    """
    vars_a = tuple(vars_a)
    vars_b = tuple(vars_b)
    shared = [v for v in vars_a if v in vars_b]
    rows_b = list(rows_b)
    if not shared:
        return set(map(tuple, rows_a)) if rows_b else set()
    a_positions = [vars_a.index(v) for v in shared]
    b_positions = [vars_b.index(v) for v in shared]
    keys = {tuple(row[p] for p in b_positions) for row in rows_b}
    return {
        tuple(row)
        for row in rows_a
        if tuple(row[p] for p in a_positions) in keys
    }
