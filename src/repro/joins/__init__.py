"""Join processing substrate.

* :mod:`repro.joins.generic_join` — a worst-case-optimal join in the
  NPRR/generic-join family. It enumerates one variable at a time in a fixed
  order, intersecting the sorted candidate streams of the participating
  tries; its running time matches the AGM bound for any fractional cover,
  and its output arrives in lexicographic order of the variable order —
  both properties the compressed representation relies on (Propositions 6
  and 9).
* :mod:`repro.joins.hash_join` — a classic pairwise hash-join evaluator,
  used as an independent oracle in tests and by the materialized baseline.
* :mod:`repro.joins.semijoin` — semijoin filtering for the bottom-up passes
  of Theorem 2 and the factorized representations.
"""

from repro.joins.generic_join import (
    JoinCounter,
    generic_join,
    join_is_nonempty,
)
from repro.joins.hash_join import evaluate_by_hash_join, hash_join
from repro.joins.semijoin import semijoin

__all__ = [
    "JoinCounter",
    "generic_join",
    "join_is_nonempty",
    "hash_join",
    "evaluate_by_hash_join",
    "semijoin",
]
