"""Worst-case-optimal generic join over sorted tries.

The join enumerates the variables of ``order`` left to right. At each level
the *participating* atoms are those whose next un-consumed variable is the
current one; the candidate values are the sorted child keys of the smallest
participating trie node, filtered by membership in the others (classic
leapfrog-style intersection, simplified to hash probes since trie children
are dictionaries). Optional per-variable closed ranges restrict candidates,
which is how f-box restrictions (Section 4.1) are pushed into the join.

Because candidates are visited in ascending order at every level, the output
tuples are produced in lexicographic order of ``order`` — the property
Algorithm 2 needs to keep the global enumeration lexicographic.

The optional :class:`JoinCounter` counts candidate probes; tests use it as a
machine-independent proxy for running time (the uniform-cost RAM model of
Section 2.1).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.database.index import TrieNode
from repro.exceptions import QueryError
from repro.query.atoms import Variable


class JoinCounter:
    """Counts logical work: one step per candidate value probed."""

    __slots__ = ("steps",)

    def __init__(self):
        self.steps = 0

    def reset(self) -> None:
        self.steps = 0


def _check_subsequence(
    atom_vars: Sequence[Variable], order: Sequence[Variable]
) -> None:
    positions = {v: i for i, v in enumerate(order)}
    last = -1
    for v in atom_vars:
        if v not in positions:
            raise QueryError(f"join atom variable {v!r} missing from order")
        if positions[v] <= last:
            raise QueryError(
                f"join atom variables {list(atom_vars)!r} are not a "
                f"subsequence of the order {list(order)!r}"
            )
        last = positions[v]


def generic_join(
    atoms: Sequence[Tuple[TrieNode, Sequence[Variable]]],
    order: Sequence[Variable],
    ranges: Optional[Mapping[Variable, Tuple[object, object]]] = None,
    domains: Optional[Mapping[Variable, Sequence]] = None,
    counter: Optional[JoinCounter] = None,
) -> Iterator[Tuple]:
    """Enumerate the natural join of the given tries in lexicographic order.

    Parameters
    ----------
    atoms:
        ``(trie_node, variables)`` pairs. The variable list names the trie's
        remaining levels, and must be a subsequence of ``order``.
    order:
        Global variable order; output tuples align with it.
    ranges:
        Optional closed value ranges ``var -> (low, high)`` restricting the
        join to an f-box.
    domains:
        Sorted value sequences used for variables that no atom constrains
        (only needed in that degenerate case).
    counter:
        Optional step counter incremented once per candidate probed.
    """
    order = tuple(order)
    states: List[Tuple[TrieNode, Tuple[Variable, ...]]] = []
    for node, atom_vars in atoms:
        atom_vars = tuple(atom_vars)
        _check_subsequence(atom_vars, order)
        states.append((node, atom_vars))
    ranges = dict(ranges or {})
    domains = domains or {}
    yield from _join_level(states, order, 0, ranges, domains, counter, [])


def _join_level(
    states: List[Tuple[TrieNode, Tuple[Variable, ...]]],
    order: Tuple[Variable, ...],
    level: int,
    ranges: Mapping[Variable, Tuple[object, object]],
    domains: Mapping[Variable, Sequence],
    counter: Optional[JoinCounter],
    prefix: List,
) -> Iterator[Tuple]:
    if level == len(order):
        yield tuple(prefix)
        return
    var = order[level]
    participating = [
        i for i, (node, vs) in enumerate(states) if vs and vs[0] == var
    ]
    bound = ranges.get(var)
    if participating:
        if bound is None:
            smallest = min(
                participating, key=lambda i: len(states[i][0].keys)
            )
            candidates = states[smallest][0].keys
        else:
            # Pick the atom with the fewest candidates *inside the range*:
            # T(v_b, B) bounds the work through the smallest in-range
            # factor, so selecting by total key count would break the
            # O(T) evaluation guarantee of Proposition 6.
            candidates = min(
                (
                    states[i][0].keys_in_range(bound[0], bound[1])
                    for i in participating
                ),
                key=len,
            )
    else:
        domain = domains.get(var)
        if domain is None:
            raise QueryError(
                f"variable {var!r} is unconstrained and has no domain"
            )
        if bound is None:
            candidates = domain
        else:
            lo = bisect_left(domain, bound[0])
            hi = bisect_right(domain, bound[1])
            candidates = domain[lo:hi]
    for value in candidates:
        if counter is not None:
            counter.steps += 1
        children = []
        ok = True
        for i in participating:
            child = states[i][0].children.get(value)
            if child is None:
                ok = False
                break
            children.append((i, child))
        if not ok:
            continue
        next_states = list(states)
        for i, child in children:
            next_states[i] = (child, states[i][1][1:])
        prefix.append(value)
        yield from _join_level(
            next_states, order, level + 1, ranges, domains, counter, prefix
        )
        prefix.pop()


def join_is_nonempty(
    atoms: Sequence[Tuple[TrieNode, Sequence[Variable]]],
    order: Sequence[Variable],
    ranges: Optional[Mapping[Variable, Tuple[object, object]]] = None,
    domains: Optional[Mapping[Variable, Sequence]] = None,
    counter: Optional[JoinCounter] = None,
) -> bool:
    """True iff the join has at least one result (early-exit probe)."""
    iterator = generic_join(atoms, order, ranges, domains, counter)
    return next(iterator, None) is not None
