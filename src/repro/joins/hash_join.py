"""Pairwise hash joins — the independent evaluation oracle.

Used by the materialized baseline and, crucially, by the test-suite as an
implementation of CQ semantics that shares no code with the
worst-case-optimal join or the compressed representations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.database.catalog import Database
from repro.exceptions import QueryError
from repro.query.atoms import Constant, Variable
from repro.query.conjunctive import ConjunctiveQuery


def hash_join(
    rows_a: Iterable[Tuple],
    vars_a: Sequence[Variable],
    rows_b: Iterable[Tuple],
    vars_b: Sequence[Variable],
) -> Tuple[Set[Tuple], Tuple[Variable, ...]]:
    """Natural join of two variable-labelled row sets.

    Returns the joined rows and their schema: ``vars_a`` followed by the
    variables of ``vars_b`` not already present.
    """
    vars_a = tuple(vars_a)
    vars_b = tuple(vars_b)
    shared = [v for v in vars_b if v in vars_a]
    a_positions = [vars_a.index(v) for v in shared]
    b_positions = [vars_b.index(v) for v in shared]
    extra = [i for i, v in enumerate(vars_b) if v not in vars_a]
    out_vars = vars_a + tuple(vars_b[i] for i in extra)
    table: Dict[Tuple, List[Tuple]] = {}
    for row in rows_b:
        key = tuple(row[i] for i in b_positions)
        table.setdefault(key, []).append(tuple(row[i] for i in extra))
    result: Set[Tuple] = set()
    for row in rows_a:
        key = tuple(row[i] for i in a_positions)
        for suffix in table.get(key, ()):
            result.add(tuple(row) + suffix)
    return result, out_vars


def evaluate_by_hash_join(
    query: ConjunctiveQuery, db: Database
) -> Set[Tuple]:
    """Evaluate a CQ with pairwise hash joins; returns head tuples.

    Handles constants and repeated variables directly (no normalization
    needed), which lets tests compare un-normalized and normalized plans.
    """
    current_rows: Set[Tuple] = {()}
    current_vars: Tuple[Variable, ...] = ()
    for atom in query.atoms:
        relation = db[atom.relation]
        if relation.arity != atom.arity:
            raise QueryError(
                f"atom {atom!r} arity mismatch with relation {relation.name!r}"
            )
        atom_vars = atom.variables()
        keep_positions = [atom.variable_positions(v)[0] for v in atom_vars]
        rows = []
        for row in relation:
            ok = True
            for position, term in enumerate(atom.terms):
                if isinstance(term, Constant) and row[position] != term.value:
                    ok = False
                    break
            if not ok:
                continue
            consistent = True
            for v in atom_vars:
                positions = atom.variable_positions(v)
                first = row[positions[0]]
                if any(row[p] != first for p in positions[1:]):
                    consistent = False
                    break
            if consistent:
                rows.append(tuple(row[p] for p in keep_positions))
        current_rows, current_vars = hash_join(
            current_rows, current_vars, rows, atom_vars
        )
        if not current_rows:
            return set()
    head_positions = []
    for v in query.head:
        if v not in current_vars:
            raise QueryError(f"head variable {v!r} not produced by the body")
        head_positions.append(current_vars.index(v))
    return {tuple(row[p] for p in head_positions) for row in current_rows}
