"""Immutable relations over positional columns.

The paper works with named relations ``R_F`` whose columns are identified by
the query variables bound to them; the storage layer is deliberately
schema-free (columns are positions) and the query layer supplies the
variable-to-position mapping per atom. Tuples are plain Python tuples of
mutually comparable, hashable values.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence, Tuple

from repro.exceptions import SchemaError

Value = object
Row = Tuple[Value, ...]


class Relation:
    """A set of fixed-arity tuples.

    The constructor deduplicates. Instances behave like immutable containers:
    iteration, ``len``, and ``in`` work on rows, and the relational operators
    return new relations.

    Parameters
    ----------
    name:
        Identifier used in error messages and catalogs.
    arity:
        Number of columns. Every row must have exactly this length.
    rows:
        Iterable of tuples (any iterable of sequences; converted to tuples).
    """

    __slots__ = ("name", "arity", "_rows")

    def __init__(self, name: str, arity: int, rows: Iterable[Sequence[Value]] = ()):
        if arity < 0:
            raise SchemaError(f"relation {name!r}: arity must be >= 0, got {arity}")
        self.name = name
        self.arity = arity
        deduped = set()
        for row in rows:
            tup = tuple(row)
            if len(tup) != arity:
                raise SchemaError(
                    f"relation {name!r}: row {tup!r} has arity "
                    f"{len(tup)}, expected {arity}"
                )
            deduped.add(tup)
        self._rows = frozenset(deduped)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[Value]) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.arity == other.arity and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self.arity, self._rows))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name!r}, arity={self.arity}, |rows|={len(self._rows)})"

    @property
    def rows(self) -> frozenset:
        """The underlying frozen set of tuples."""
        return self._rows

    def sorted_rows(self) -> list:
        """Rows in lexicographic order (requires comparable values)."""
        return sorted(self._rows)

    # ------------------------------------------------------------------
    # relational algebra
    # ------------------------------------------------------------------
    def project(self, positions: Sequence[int], name: str = None) -> "Relation":
        """Project (with duplicate elimination) onto the given column positions.

        ``positions`` may repeat or reorder columns; the result has arity
        ``len(positions)``.
        """
        for p in positions:
            if not 0 <= p < self.arity:
                raise SchemaError(
                    f"relation {self.name!r}: projection position {p} out of range"
                )
        new_rows = {tuple(row[p] for p in positions) for row in self._rows}
        return Relation(name or f"pi({self.name})", len(positions), new_rows)

    def select_constants(
        self, bindings: Mapping[int, Value], name: str = None
    ) -> "Relation":
        """Keep rows whose value at each position matches the given constant."""
        for p in bindings:
            if not 0 <= p < self.arity:
                raise SchemaError(
                    f"relation {self.name!r}: selection position {p} out of range"
                )
        items = tuple(bindings.items())
        new_rows = [
            row for row in self._rows if all(row[p] == v for p, v in items)
        ]
        return Relation(name or f"sigma({self.name})", self.arity, new_rows)

    def select_equal_columns(
        self, groups: Sequence[Sequence[int]], name: str = None
    ) -> "Relation":
        """Keep rows where, within each group of positions, all values agree.

        Used by the Example 3 rewriting to eliminate repeated variables in an
        atom (e.g. ``S(y, y, z)`` keeps rows with columns 0 and 1 equal).
        """
        new_rows = []
        for row in self._rows:
            ok = True
            for group in groups:
                first = row[group[0]]
                if any(row[p] != first for p in group[1:]):
                    ok = False
                    break
            if ok:
                new_rows.append(row)
        return Relation(name or f"sigma=({self.name})", self.arity, new_rows)

    def filter(self, predicate: Callable[[Row], bool], name: str = None) -> "Relation":
        """Generic selection by a row predicate."""
        return Relation(
            name or f"filter({self.name})",
            self.arity,
            (row for row in self._rows if predicate(row)),
        )

    def column_values(self, position: int) -> set:
        """The set of distinct values appearing in one column."""
        if not 0 <= position < self.arity:
            raise SchemaError(
                f"relation {self.name!r}: column {position} out of range"
            )
        return {row[position] for row in self._rows}

    def rename(self, name: str) -> "Relation":
        """A copy of this relation under a different name (rows shared)."""
        clone = Relation(name, self.arity)
        clone._rows = self._rows
        return clone

    def union(self, other: "Relation", name: str = None) -> "Relation":
        """Set union of two relations of equal arity."""
        if self.arity != other.arity:
            raise SchemaError(
                f"union of {self.name!r} (arity {self.arity}) and "
                f"{other.name!r} (arity {other.arity})"
            )
        result = Relation(name or f"({self.name} U {other.name})", self.arity)
        result._rows = self._rows | other._rows
        return result

    def semijoin_values(
        self, position: int, values: Iterable[Value], name: str = None
    ) -> "Relation":
        """Keep rows whose value at ``position`` is in ``values``."""
        allowed = set(values)
        return Relation(
            name or f"lsj({self.name})",
            self.arity,
            (row for row in self._rows if row[position] in allowed),
        )
