"""In-memory relational substrate.

This package provides the storage layer everything else builds on:

* :class:`~repro.database.relation.Relation` — an immutable set of tuples
  with schema-free positional columns plus the relational-algebra pieces the
  paper needs (projection, selection by constants, semijoin restriction).
* :class:`~repro.database.index.TrieIndex` — a sorted trie over a column
  permutation with subtree counts, supporting the three access paths the
  compressed representation requires: O(1) membership, O(log) prefix/range
  *counting* (the `|R_F ⋉ B|` statistics of Section 4), and ordered candidate
  iteration for the worst-case-optimal join.
* :class:`~repro.database.catalog.Database` — a named collection of relations
  with the per-variable active domains induced by a query.
"""

from repro.database.relation import Relation
from repro.database.index import TrieIndex, TrieNode
from repro.database.catalog import Database
from repro.database.statistics import RelationStatistics, collect_statistics

__all__ = [
    "Relation",
    "TrieIndex",
    "TrieNode",
    "Database",
    "RelationStatistics",
    "collect_statistics",
]
