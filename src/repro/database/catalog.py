"""Databases: named collections of relations.

A :class:`Database` is the ``D`` of the paper — the input instance a
compressed representation is built from. It also computes the per-variable
*active domains* ``D[x]`` used by f-intervals: the sorted set of values
appearing in any column that a query binds to the variable ``x``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.database.relation import Relation
from repro.exceptions import SchemaError


class Database:
    """A mapping from relation names to :class:`Relation` instances."""

    def __init__(self, relations: Iterable[Relation] = ()):
        self._relations: Dict[str, Relation] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: Relation) -> None:
        """Register a relation; the name must be fresh."""
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation name {relation.name!r}")
        self._relations[relation.name] = relation

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self):
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relations(self) -> Mapping[str, Relation]:
        return dict(self._relations)

    def total_tuples(self) -> int:
        """|D| measured as the total number of stored tuples."""
        return sum(len(r) for r in self._relations.values())

    def replace(self, relation: Relation) -> "Database":
        """A copy of this database with one relation replaced or added."""
        copy = Database()
        copy._relations = dict(self._relations)
        copy._relations[relation.name] = relation
        return copy

    # ------------------------------------------------------------------
    # active domains
    # ------------------------------------------------------------------
    def active_domain(self, occurrences: Sequence[Tuple[str, int]]) -> Tuple:
        """Sorted distinct values over the given (relation, column) occurrences.

        This is the active domain ``D[x]`` of a query variable ``x`` whose
        occurrences in the body are the given positions. The union (rather
        than intersection) of the occurrence columns follows the paper's
        definition; tightening to the intersection would only shrink the
        f-interval space and is an optimization the tests do not assume.
        """
        values = set()
        for name, position in occurrences:
            values |= self[name].column_values(position)
        return tuple(sorted(values))
