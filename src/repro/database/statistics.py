"""Lightweight per-relation statistics.

These feed the parameter optimizer (Section 6 takes the sizes ``|R_F|`` as
input) and the benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.database.catalog import Database
from repro.database.relation import Relation


@dataclass(frozen=True)
class RelationStatistics:
    """Summary statistics of one relation."""

    name: str
    arity: int
    cardinality: int
    distinct_per_column: Tuple[int, ...]

    @property
    def max_column_multiplicity(self) -> int:
        """Upper bound on the fanout of any single-column lookup."""
        if self.cardinality == 0:
            return 0
        return max(
            (self.cardinality + d - 1) // d for d in self.distinct_per_column if d
        ) if any(self.distinct_per_column) else self.cardinality


def relation_statistics(relation: Relation) -> RelationStatistics:
    """Compute :class:`RelationStatistics` for one relation."""
    distinct = tuple(
        len(relation.column_values(p)) for p in range(relation.arity)
    )
    return RelationStatistics(
        name=relation.name,
        arity=relation.arity,
        cardinality=len(relation),
        distinct_per_column=distinct,
    )


def collect_statistics(db: Database) -> Dict[str, RelationStatistics]:
    """Statistics for every relation in the database, keyed by name."""
    return {relation.name: relation_statistics(relation) for relation in db}
