"""Sorted tries with subtree counts.

One :class:`TrieIndex` is built per (atom, column order). The column order
used throughout the library is: the atom's *bound* variables first, then its
*free* variables in the global free-variable order. That single index then
serves all three access paths of the compressed representation:

* **membership** — descend the full key, O(arity) dictionary hops;
* **counting** — ``|R_F ⋉ v_b ⋉ B|`` for a canonical f-box ``B`` reduces to
  descending a unit prefix and summing child subtree counts over one value
  range, which the per-node cumulative-count arrays answer with two bisects
  (the ``Õ(1)`` count oracle assumed by Lemma 3 and Proposition 13);
* **ordered iteration** — each node stores its child keys in sorted order,
  which gives the worst-case-optimal join its lexicographic candidate
  streams.

The trie is static: it is built once from a relation and never mutated,
matching the paper's preprocessing-then-query model.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, Optional, Sequence

from repro.database.relation import Relation
from repro.exceptions import SchemaError


class TrieNode:
    """A node of a :class:`TrieIndex`.

    Attributes
    ----------
    children:
        Mapping from child key value to child node.
    keys:
        Child key values in ascending order.
    count:
        Number of relation tuples in the subtree rooted here.
    cumulative:
        ``cumulative[i]`` is the total count of the first ``i`` children in
        key order, so a contiguous key range sums in O(1) after bisecting.
    """

    __slots__ = ("children", "keys", "count", "cumulative")

    def __init__(self):
        self.children = {}
        self.keys = []
        self.count = 0
        self.cumulative = []

    def _finalize(self) -> None:
        """Sort keys and build cumulative counts (called once after load)."""
        self.keys = sorted(self.children)
        running = 0
        cumulative = [0]
        for key in self.keys:
            child = self.children[key]
            child._finalize()
            running += child.count
            cumulative.append(running)
        self.cumulative = cumulative

    def range_count(self, low, high) -> int:
        """Total subtree count of children with key in the closed range."""
        lo_idx = bisect_left(self.keys, low)
        hi_idx = bisect_right(self.keys, high)
        if hi_idx <= lo_idx:
            return 0
        return self.cumulative[hi_idx] - self.cumulative[lo_idx]

    def keys_in_range(self, low, high) -> Sequence:
        """Child keys within the closed range, in ascending order."""
        lo_idx = bisect_left(self.keys, low)
        hi_idx = bisect_right(self.keys, high)
        return self.keys[lo_idx:hi_idx]

    def cells(self) -> int:
        """Logical space of the subtree: one cell per trie edge."""
        total = len(self.keys)
        for child in self.children.values():
            total += child.cells()
        return total


class TrieIndex:
    """A sorted trie over a permutation of a relation's columns.

    Parameters
    ----------
    relation:
        The indexed relation.
    column_order:
        Permutation (or sub-permutation) of column positions; tuples are
        inserted with their values rearranged into this order.
    dedupe:
        With the default True, a strict subset of the columns indexes the
        *projection* onto those columns (distinct keys). With False, every
        relation tuple contributes one unit of count to its key's path —
        the multiplicity-preserving mode used for the ``|R_F ⋉ B|``
        statistics of Section 4, which count full tuples grouped by their
        free-variable part.
    """

    __slots__ = ("relation", "column_order", "root", "depth", "dedupe")

    def __init__(
        self,
        relation: Relation,
        column_order: Sequence[int],
        dedupe: bool = True,
    ):
        for p in column_order:
            if not 0 <= p < relation.arity:
                raise SchemaError(
                    f"index on {relation.name!r}: column {p} out of range"
                )
        if len(set(column_order)) != len(column_order):
            raise SchemaError(
                f"index on {relation.name!r}: duplicate column in "
                f"order {column_order!r}"
            )
        self.relation = relation
        self.column_order = tuple(column_order)
        self.depth = len(self.column_order)
        self.dedupe = dedupe
        self.root = TrieNode()
        if dedupe:
            keys = {
                tuple(row[p] for p in self.column_order)
                for row in relation.rows
            }
        else:
            keys = [
                tuple(row[p] for p in self.column_order)
                for row in relation.rows
            ]
        self._load(keys)

    def _load(self, keys) -> None:
        for key in keys:
            node = self.root
            node.count += 1
            for value in key:
                child = node.children.get(value)
                if child is None:
                    child = TrieNode()
                    node.children[value] = child
                node = child
                node.count += 1
        self.root._finalize()

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def descend(self, prefix: Sequence) -> Optional[TrieNode]:
        """The node reached by following ``prefix``, or None if absent."""
        node = self.root
        for value in prefix:
            node = node.children.get(value)
            if node is None:
                return None
        return node

    def contains(self, key: Sequence) -> bool:
        """Membership of a full key (length may be shorter: prefix test)."""
        return self.descend(key) is not None

    def count_prefix(self, prefix: Sequence) -> int:
        """Number of indexed tuples extending ``prefix``."""
        node = self.descend(prefix)
        return 0 if node is None else node.count

    def count_prefix_range(self, prefix: Sequence, low, high) -> int:
        """Number of tuples extending ``prefix`` whose next value is in [low, high]."""
        node = self.descend(prefix)
        if node is None:
            return 0
        return node.range_count(low, high)

    def iter_keys(self, prefix: Sequence) -> Iterator:
        """Sorted child values below ``prefix`` (empty if prefix absent)."""
        node = self.descend(prefix)
        if node is None:
            return iter(())
        return iter(node.keys)

    def cells(self) -> int:
        """Logical space of the whole index in cells (trie edges)."""
        return self.root.cells()
