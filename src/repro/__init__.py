"""repro — compressed representations of conjunctive query results.

A faithful, production-quality implementation of Deep & Koutris,
*Compressed Representations of Conjunctive Query Results* (PODS 2018):
tunable data structures that compress the output of a conjunctive query
for a given access pattern, trading space for enumeration delay.

Quickstart
----------
>>> from repro import parse_view, CompressedRepresentation
>>> from repro.workloads import triangle_database
>>> view = parse_view("Delta^bbf(x, y, z) = R(x, y), S(y, z), T(z, x)")
>>> db = triangle_database(nodes=50, edges=300, seed=1)
>>> cr = CompressedRepresentation(view, db, tau=8)
>>> answers = cr.answer((3, 7))   # all z completing the edge (x=3, y=7)

Main entry points
-----------------
* :class:`~repro.core.structure.CompressedRepresentation` — Theorem 1.
* :class:`~repro.core.decomposed.DecomposedRepresentation` — Theorem 2.
* :class:`~repro.core.constant_delay.FullyBoundStructure` /
  :class:`~repro.core.constant_delay.ConnexConstantDelayStructure` —
  Propositions 1 and 4.
* :class:`~repro.factorized.FactorizedRepresentation` — Proposition 2.
* :class:`~repro.baselines.MaterializedView` / :class:`~repro.baselines.LazyView`
  — the two extremal baselines.
* :func:`~repro.optimizer.min_delay_cover` / :func:`~repro.optimizer.min_space_cover`
  — Section 6 parameter optimization.
* :class:`~repro.engine.server.ViewServer` — the serving engine: cached
  representations, budget-driven τ selection, batched access requests.
* :class:`~repro.setintersection.SetIntersectionIndex` — the Cohen-Porat
  special case.
"""

from repro.database import Database, Relation
from repro.query import (
    AdornedView,
    Atom,
    ConjunctiveQuery,
    Constant,
    Variable,
    normalize_view,
    parse_query,
    parse_view,
)
from repro.core import (
    CompressedRepresentation,
    ConnexConstantDelayStructure,
    DecomposedRepresentation,
    DynamicRepresentation,
    FullyBoundStructure,
    ProjectedRepresentation,
    SnapshotStore,
    database_fingerprint,
    decode_snapshot,
    encode_snapshot,
    load_snapshot,
    save_snapshot,
)
from repro.engine import (
    AccessRequest,
    AnswerCursor,
    AsyncServingReport,
    AsyncViewServer,
    BatchResult,
    CacheStats,
    DeltaRecord,
    ParallelBuilder,
    ReplicaServer,
    RepresentationCache,
    RoutingTable,
    ServingReport,
    ShardedViewServer,
    ViewServer,
    infer_shard_key,
    partition_database,
    ship_deltas,
)
from repro.factorized import FactorizedRepresentation
from repro.baselines import LazyView, MaterializedView
from repro.optimizer import min_delay_cover, min_space_cover, plan_decomposition
from repro.setintersection import SetIntersectionIndex
from repro.hypergraph import (
    DelayAssignment,
    Hypergraph,
    connex_fhw,
    delta_height,
    delta_width,
    fhw,
    fractional_edge_cover,
    hypergraph_of_view,
    slack,
)
from repro.measure import SpaceReport, measure_enumeration, sweep_tau

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Relation",
    "AdornedView",
    "Atom",
    "ConjunctiveQuery",
    "Constant",
    "Variable",
    "normalize_view",
    "parse_query",
    "parse_view",
    "CompressedRepresentation",
    "ProjectedRepresentation",
    "DynamicRepresentation",
    "DecomposedRepresentation",
    "FullyBoundStructure",
    "ConnexConstantDelayStructure",
    "AccessRequest",
    "AnswerCursor",
    "ViewServer",
    "ShardedViewServer",
    "ReplicaServer",
    "RoutingTable",
    "AsyncViewServer",
    "AsyncServingReport",
    "infer_shard_key",
    "partition_database",
    "RepresentationCache",
    "CacheStats",
    "DeltaRecord",
    "ship_deltas",
    "BatchResult",
    "ServingReport",
    "ParallelBuilder",
    "SnapshotStore",
    "database_fingerprint",
    "encode_snapshot",
    "decode_snapshot",
    "save_snapshot",
    "load_snapshot",
    "FactorizedRepresentation",
    "MaterializedView",
    "LazyView",
    "min_delay_cover",
    "min_space_cover",
    "plan_decomposition",
    "SetIntersectionIndex",
    "Hypergraph",
    "hypergraph_of_view",
    "fractional_edge_cover",
    "slack",
    "fhw",
    "connex_fhw",
    "DelayAssignment",
    "delta_width",
    "delta_height",
    "SpaceReport",
    "measure_enumeration",
    "sweep_tau",
    "__version__",
]
