"""The Cohen–Porat fast set intersection structure ([13], Section 3.1).

Given a family of sets ``S_1, ..., S_m`` of total size ``N``, represent
membership as the relation ``R(s, e)`` and the intersection of ``k`` sets as
the adorned view

    Q^{b···bf}(x_1, ..., x_k, z) = R(x_1, z), ..., R(x_k, z).

With the cover ``u = (1, ..., 1)`` the slack on the single free variable is
``α = k``, so Theorem 1 gives space ``Õ(N^k / τ^k)`` with delay ``Õ(τ)`` —
for ``k = 2`` exactly the Cohen–Porat tradeoff the paper strictly
generalizes. The boolean variant answers ``k``-SetDisjointness (the
conjectured-optimal workload of Section 3.3).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.core.structure import CompressedRepresentation
from repro.database.catalog import Database
from repro.database.relation import Relation
from repro.exceptions import ParameterError
from repro.joins.generic_join import JoinCounter
from repro.measure.space import SpaceReport
from repro.query.adorned import AdornedView
from repro.query.atoms import Atom, Variable
from repro.query.conjunctive import ConjunctiveQuery


def k_set_intersection_view(k: int) -> AdornedView:
    """The adorned view ``Q^{b..bf}(x1..xk, z) = R(x1,z), ..., R(xk,z)``."""
    if k < 1:
        raise ParameterError(f"need k >= 1 sets, got {k}")
    xs = [Variable(f"x{i}") for i in range(1, k + 1)]
    z = Variable("z")
    atoms = [Atom("R", (x, z)) for x in xs]
    query = ConjunctiveQuery("Q", tuple(xs) + (z,), atoms)
    return AdornedView(query, "b" * k + "f")


class SetIntersectionIndex:
    """Space-efficient k-way set intersection with tunable delay.

    Parameters
    ----------
    sets:
        Mapping from set identifier to its elements.
    tau:
        The delay knob: intersections are reported with delay ``Õ(τ)``
        from a structure of size ``Õ(N^k / τ^k)`` beyond the input.
    k:
        The number of sets per intersection query (default 2).
    """

    def __init__(
        self,
        sets: Mapping[Hashable, Iterable],
        tau: float,
        k: int = 2,
    ):
        self.k = int(k)
        rows = []
        self._sets: Dict[Hashable, frozenset] = {}
        for name, elements in sets.items():
            frozen = frozenset(elements)
            self._sets[name] = frozen
            rows.extend((name, element) for element in frozen)
        relation = Relation("R", 2, rows)
        self.db = Database([relation])
        self.view = k_set_intersection_view(self.k)
        # u = (1,...,1): every R-atom fully covers {x_i, z}; slack on z is k.
        weights = {index: 1.0 for index in range(self.k)}
        self.representation = CompressedRepresentation(
            self.view, self.db, tau=tau, weights=weights
        )

    @property
    def total_size(self) -> int:
        """N — total membership pairs stored."""
        return sum(len(s) for s in self._sets.values())

    def set_ids(self) -> Tuple:
        return tuple(self._sets)

    def intersect(
        self, *set_ids, counter: Optional[JoinCounter] = None
    ) -> Iterator:
        """Enumerate ``S_{i1} ∩ ... ∩ S_{ik}`` in sorted order."""
        if len(set_ids) != self.k:
            raise ParameterError(
                f"this index intersects exactly {self.k} sets, got {len(set_ids)}"
            )
        for (element,) in self.representation.enumerate(set_ids, counter=counter):
            yield element

    def intersection(self, *set_ids) -> List:
        return list(self.intersect(*set_ids))

    def are_disjoint(self, *set_ids) -> bool:
        """k-SetDisjointness: is the intersection empty? Time ``Õ(τ)``."""
        return next(self.intersect(*set_ids), None) is None

    def space_report(self) -> SpaceReport:
        return self.representation.space_report()
