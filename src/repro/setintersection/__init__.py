"""Fast set intersection as a special case of Theorem 1 (Section 3.1)."""

from repro.setintersection.cohen_porat import SetIntersectionIndex

__all__ = ["SetIntersectionIndex"]
