"""Shared aliasing: mutable state must be copied across boundaries.

Two boundaries in this codebase promise object independence:

* **Snapshot states** (``to_state``/``snapshot_state``) are "plain
  data" by contract — they travel through pickle, across processes,
  and into caches. Returning an interior mutable container by
  reference (``return {"rows": self._rows}``) couples every holder of
  the state to the live structure: a later in-place mutation rewrites
  history. The rule infers each class's mutable attributes (assigned a
  dict/list/set literal or constructor in ``__init__``) and flags any
  that escape a state method uncopied.
* **Shard partitions** (``partition_*`` / ``*shard*`` functions) hand
  each shard its *own* database. PR 6's ``partition_database`` bug was
  exactly a missed copy here: the same relation object stored into
  every sibling shard, so mutating one shard's database mutated all of
  them. The rule flags storing a bare (unconstructed, uncopied) name
  bound *outside* the loop into a per-iteration container inside those
  functions' loops — the broadcast shape. Loop-target names are a fresh
  object per iteration and are exempt.

Stores of values that are immutable by construction (tuples, numbers)
are invisible to the AST; waive those with
``# analysis: allow[shared-aliasing] reason`` on the line.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.analysis.findings import Finding
from repro.analysis.framework import ModuleInfo, Rule, register

_STATE_METHODS = {"to_state", "snapshot_state"}
_MUTABLE_CALLS = {
    "dict",
    "list",
    "set",
    "OrderedDict",
    "defaultdict",
    "deque",
}


def _self_attr(node: ast.AST) -> str:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _mutable_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attributes ``__init__`` assigns a definitely-mutable container."""
    init = next(
        (
            n
            for n in cls.body
            if isinstance(n, ast.FunctionDef) and n.name == "__init__"
        ),
        None,
    )
    if init is None:
        return set()
    mutable: Set[str] = set()
    for node in ast.walk(init):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None:
            continue
        literals = (
            ast.Dict,
            ast.List,
            ast.Set,
            ast.DictComp,
            ast.ListComp,
            ast.SetComp,
        )
        is_mutable = isinstance(value, literals) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_CALLS
        )
        if not is_mutable:
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            attr = _self_attr(target)
            if attr:
                mutable.add(attr)
    return mutable


def _bare_aliases(expr: ast.AST, mutable: Set[str]) -> Iterator[ast.AST]:
    """Uncopied ``self.<mutable>`` leaves of a returned expression.

    Descends only through containers the state dict is literally built
    from (dict/list/tuple displays, conditionals); anything behind a
    call is assumed to copy.
    """
    if isinstance(expr, ast.Dict):
        for value in expr.values:
            yield from _bare_aliases(value, mutable)
    elif isinstance(expr, (ast.List, ast.Tuple)):
        for elt in expr.elts:
            yield from _bare_aliases(elt, mutable)
    elif isinstance(expr, ast.IfExp):
        yield from _bare_aliases(expr.body, mutable)
        yield from _bare_aliases(expr.orelse, mutable)
    elif _self_attr(expr) in mutable:
        yield expr


class _PartitionScanner(ast.NodeVisitor):
    """Find bare stores into containers inside a partition function's loops.

    Names bound by the loop target itself (``for row in ...``, tuple
    unpacking included) are a fresh object each iteration — storing one
    scatters, it does not broadcast — so only names bound *outside* the
    loop are hazards.
    """

    def __init__(self):
        self.loop_depth = 0
        self.loop_bound: Set[str] = set()
        self.hits = []

    def visit_For(self, node):
        bound = {
            t.id
            for t in ast.walk(node.target)
            if isinstance(t, ast.Name)
        }
        fresh = bound - self.loop_bound
        self.loop_bound |= fresh
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1
        self.loop_bound -= fresh

    def visit_While(self, node):
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def _is_hazard(self, value: ast.AST) -> bool:
        if isinstance(value, ast.Name):
            return value.id not in self.loop_bound
        return bool(_self_attr(value))

    def visit_Call(self, node):
        if (
            self.loop_depth
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in {"append", "add"}
            and len(node.args) == 1
            and self._is_hazard(node.args[0])
        ):
            self.hits.append(node.args[0])
        self.generic_visit(node)

    def visit_Assign(self, node):
        if (
            self.loop_depth
            and any(isinstance(t, ast.Subscript) for t in node.targets)
            and self._is_hazard(node.value)
        ):
            self.hits.append(node.value)
        self.generic_visit(node)


def _describe(node: ast.AST) -> str:
    attr = _self_attr(node)
    if attr:
        return f"self.{attr}"
    return getattr(node, "id", "<expr>")


@register
class SharedAliasingRule(Rule):
    """Flag uncopied mutable values escaping snapshot/shard boundaries."""

    id = "shared-aliasing"
    description = (
        "state methods must not return interior mutable containers by "
        "reference; partition/shard loops must not store one object "
        "into many shards"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield aliasing escapes at state and partition boundaries."""
        for cls in [
            n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)
        ]:
            mutable = _mutable_attrs(cls)
            if not mutable:
                continue
            for method in cls.body:
                if (
                    not isinstance(method, ast.FunctionDef)
                    or method.name not in _STATE_METHODS
                ):
                    continue
                for ret in ast.walk(method):
                    if not isinstance(ret, ast.Return) or ret.value is None:
                        continue
                    for leaf in _bare_aliases(ret.value, mutable):
                        attr = _self_attr(leaf)
                        yield self.finding(
                            module,
                            leaf,
                            scope=f"{cls.name}.{method.name}",
                            key=f"{cls.name}.{method.name}:{attr}",
                            message=(
                                f"{cls.name}.{method.name} returns mutable "
                                f"self.{attr} by reference; copy it "
                                f"(dict()/list()/comprehension) so the "
                                f"state detaches from the live structure"
                            ),
                        )
        for func in [
            n
            for n in ast.walk(module.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            and ("partition" in n.name or "shard" in n.name)
        ]:
            scanner = _PartitionScanner()
            for stmt in func.body:
                scanner.visit(stmt)
            counts: Dict[str, int] = {}
            for leaf in scanner.hits:
                name = _describe(leaf)
                n = counts[name] = counts.get(name, 0) + 1
                yield self.finding(
                    module,
                    leaf,
                    scope=func.name,
                    key=f"{func.name}:{name}:{n}",
                    message=(
                        f"{func.name} stores {name} into a per-shard "
                        f"container uncopied — every iteration shares "
                        f"one object; wrap it in a constructor or copy"
                    ),
                )
