"""Exception hygiene: broad handlers must not swallow what they catch.

PR 6 fixed the canonical instance: the snapshot codec's unpickling path
caught *everything*, so a ``MemoryError`` mid-decode or a user's
``KeyboardInterrupt`` was reported as "corrupt snapshot" and retried.
The mechanical class behind that bug:

* a bare ``except:`` — always flagged (it is ``except BaseException``
  in disguise);
* ``except BaseException`` or ``except Exception`` (alone or in a
  tuple) whose handler body never re-raises — the handler digests
  ``MemoryError``/``KeyboardInterrupt``-class failures into ordinary
  control flow.

A broad handler that *re-raises* (cleanup-then-propagate, the
``except BaseException: ...; raise`` idiom all over the sharded cursor
paths) is fine: nothing is swallowed. Catch narrow, or re-raise.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from repro.analysis.findings import Finding
from repro.analysis.framework import ModuleInfo, Rule, register

_BROAD = {"Exception", "BaseException"}


def _broad_names(type_node) -> Tuple[str, ...]:
    """The broad exception names a handler's type expression mentions."""
    if type_node is None:
        return ("bare",)
    nodes = (
        type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    )
    found = []
    for node in nodes:
        name = node.id if isinstance(node, ast.Name) else getattr(node, "attr", "")
        if name in _BROAD:
            found.append(name)
    return tuple(found)


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains any ``raise`` at any depth.

    Deferred bodies (nested defs/lambdas) don't count: a ``raise``
    scheduled for later still swallows the exception now.
    """
    stack = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


@register
class ExceptionHygieneRule(Rule):
    """Flag bare/overbroad except handlers that swallow the exception."""

    id = "exception-hygiene"
    description = (
        "bare `except:` and non-re-raising `except Exception/BaseException` "
        "handlers swallow MemoryError/KeyboardInterrupt"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield swallowing broad handlers, with per-scope stable keys."""
        scopes: Dict[int, str] = {}

        def map_scopes(node, prefix):
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    name = f"{prefix}{child.name}"
                    for sub in ast.walk(child):
                        scopes.setdefault(id(sub), name)
                    map_scopes(child, f"{name}.")

        map_scopes(module.tree, "")
        counts: Dict[Tuple[str, str], int] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _broad_names(node.type)
            if not broad:
                continue
            if "bare" not in broad and _reraises(node):
                continue
            scope = scopes.get(id(node), "<module>")
            kind = "/".join(broad)
            n = counts[(scope, kind)] = counts.get((scope, kind), 0) + 1
            if "bare" in broad:
                message = (
                    f"{scope}: bare `except:` catches BaseException — "
                    "name the exceptions or re-raise"
                )
            else:
                message = (
                    f"{scope}: `except {kind}` never re-raises; "
                    "MemoryError/KeyboardInterrupt-class failures are "
                    "swallowed — catch narrow or re-raise"
                )
            yield self.finding(
                module,
                node,
                scope=scope,
                key=f"{scope}:{kind}:{n}",
                message=message,
            )
