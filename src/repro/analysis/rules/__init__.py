"""The rule set: importing this package registers every rule.

Each module holds one rule grounded in a real past bug class (see the
module docstrings). Adding a rule = adding a module here that defines a
:class:`~repro.analysis.framework.Rule` subclass decorated with
:func:`~repro.analysis.framework.register`, and importing it below.
"""

from repro.analysis.rules import (  # noqa: F401
    exception_hygiene,
    lock_discipline,
    parity_surface,
    restart_stability,
    shared_aliasing,
)
