"""Restart stability: no process-salted state in durable/routing modules.

Routing tables, snapshots, and telemetry all make promises across
process restarts: a key must land on the same shard after a reboot
(PR 6 shipped exactly this bug — ``hash(None)`` derives from ``id()``
before Python 3.13, silently rerouting NULL keys per process), snapshot
labels must round-trip, and merged telemetry must not depend on the
process that wrote it. So in modules named for those subsystems
(``topology``, ``snapshot``, ``telemetry``), this rule forbids:

* calls to builtin ``hash()`` — salted per process for strings (and
  id-derived for some singletons on older Pythons);
* calls to builtin ``id()`` — pure process memory layout;
* iterating a set or frozenset directly (``for x in {…}`` or over
  ``set(...)``): set order varies with PYTHONHASHSEED, so anything
  derived from the iteration order is restart-unstable. Wrap the
  iteration in ``sorted(...)``.

``__hash__``/``__eq__`` dunders are exempt — they serve in-process
dict/set membership, not durable state. A deliberate equality-
consistent fallback belongs in the baseline with its justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.framework import ModuleInfo, Rule, register

#: Module-name tokens selecting the restart-sensitive subsystems.
MODULE_TOKENS = ("topology", "snapshot", "telemetry")

_EXEMPT_SCOPES = {"__hash__", "__eq__", "__repr__"}


def _applies(module: ModuleInfo) -> bool:
    stem = module.path.stem
    return any(token in stem for token in MODULE_TOKENS)


def _is_set_expr(node: ast.AST) -> bool:
    """Whether the expression is statically a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


class _Scoper(ast.NodeVisitor):
    """Walk the module tracking the enclosing function-name stack."""

    def __init__(self):
        self.stack = []
        self.hits = []  # (node, kind, scope)

    def _scope(self) -> str:
        return ".".join(self.stack) or "<module>"

    def visit_FunctionDef(self, node):
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node):
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    def visit_Call(self, node):
        if isinstance(node.func, ast.Name) and node.func.id in {"hash", "id"}:
            if not (self.stack and self.stack[-1] in _EXEMPT_SCOPES):
                self.hits.append((node, node.func.id, self._scope()))
        self.generic_visit(node)

    def visit_For(self, node):
        if _is_set_expr(node.iter):
            self.hits.append((node.iter, "set-iteration", self._scope()))
        self.generic_visit(node)

    def visit_comprehension_iters(self, node):
        for gen in node.generators:
            if _is_set_expr(gen.iter):
                self.hits.append((gen.iter, "set-iteration", self._scope()))
        self.generic_visit(node)

    visit_ListComp = visit_comprehension_iters
    visit_SetComp = visit_comprehension_iters
    visit_DictComp = visit_comprehension_iters
    visit_GeneratorExp = visit_comprehension_iters


_MESSAGES = {
    "hash": (
        "builtin hash() is process-salted; use a restart-stable digest "
        "(e.g. stable_hash / CRC32) in this module"
    ),
    "id": (
        "id() is process memory layout; nothing derived from it "
        "survives a restart"
    ),
    "set-iteration": (
        "set iteration order depends on PYTHONHASHSEED; wrap the "
        "iteration in sorted(...)"
    ),
}


@register
class RestartStabilityRule(Rule):
    """Forbid hash()/id()/set-order dependence in durable-state modules."""

    id = "restart-stability"
    description = (
        "topology/snapshot/telemetry modules must not call builtin "
        "hash()/id() or depend on set iteration order"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield restart-unstable constructs in restart-sensitive modules."""
        if not _applies(module):
            return
        scoper = _Scoper()
        scoper.visit(module.tree)
        counts: dict = {}
        for node, kind, scope in scoper.hits:
            n = counts[(scope, kind)] = counts.get((scope, kind), 0) + 1
            yield self.finding(
                module,
                node,
                scope=scope,
                key=f"{scope}:{kind}:{n}",
                message=f"{scope}: {_MESSAGES[kind]}",
            )
