"""Lock discipline: guarded attributes must be accessed under their lock.

The engine's thread-safe classes follow one idiom: ``__init__`` creates
``self._lock`` (or several, e.g. ``_topology_lock``/``_routes_lock``),
and every shared attribute is read and written inside ``with
self._lock:`` blocks. The rule *infers* each class's guarded set — an
attribute is guarded by the locks it is ever accessed under, provided
something mutates it after construction (write-once configuration read
inside a locked region is not thereby guarded) — and flags any access
to a guarded attribute outside a lock context. Methods and properties
are exempt: they live on the class object and never rebind. That is
exactly the class of bug the cache ``keys()``-snapshot race was: a
consistently-guarded attribute read once, casually, without the lock.

What counts as "under the lock":

* the body of a ``with self.<lock>:`` statement (nested locks stack);
* the body of a *locked helper* — a method whose name ends in
  ``_locked`` (the repo's caller-holds-the-lock convention), or a
  private method whose every in-class call site is itself under a lock
  (computed to a fixpoint, so helpers calling helpers resolve);
* ``__init__``, where the instance is not yet shared.

A nested function or lambda resets the held-lock context: it runs
later, when the enclosing ``with`` has long exited.

False positives (e.g. a deliberate benign race on a cache of
idempotently-computed handles) get an inline
``# analysis: allow[lock-discipline] reason`` on the access.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.framework import ModuleInfo, Rule, register

_LOCK_FACTORIES = {"Lock", "RLock", "named_lock", "make_lock"}

#: Container methods that mutate their receiver in place. A call like
#: ``self._building.add(key)`` counts as a *write* to ``_building``.
_MUTATORS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "reverse",
    "setdefault",
    "sort",
    "update",
}


def _call_name(node: ast.AST) -> str:
    """The trailing identifier of a call target (``threading.Lock`` -> Lock)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _self_attr(node: ast.AST) -> str:
    """``X`` when node is ``self.X``, else the empty string."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _store_base(node: ast.AST) -> str:
    """The attribute a store target mutates: ``self.X[i]`` -> ``X``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return _self_attr(node)


@dataclass
class _Access:
    """One ``self.X`` touch: where, and which locks were held."""

    attr: str
    method: str
    node: ast.AST
    held: Tuple[str, ...]


@dataclass
class _MethodInfo:
    name: str
    accesses: List[_Access] = field(default_factory=list)
    # Calls to sibling methods: name -> list of held-lock tuples, one
    # per call site in this method.
    calls: Dict[str, List[Tuple[str, ...]]] = field(default_factory=dict)
    # Attributes this method mutates (assignment, augmented assignment,
    # subscript store, del, or an in-place mutator call).
    writes: Set[str] = field(default_factory=set)
    # The same mutations with their lock context: (attr, held) pairs.
    write_accesses: List[Tuple[str, Tuple[str, ...]]] = field(
        default_factory=list
    )


class _ClassScanner:
    """Collect accesses, lock contexts, and sibling calls for one class."""

    def __init__(self, cls: ast.ClassDef, locks: Set[str]):
        self.cls = cls
        self.locks = locks
        self.methods: Dict[str, _MethodInfo] = {}

    def scan(self) -> None:
        for child in self.cls.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = _MethodInfo(child.name)
                self.methods[child.name] = info
                self._walk(child.body, info, held=())

    def _walk(self, nodes, info: _MethodInfo, held: Tuple[str, ...]) -> None:
        for node in nodes:
            self._visit(node, info, held)

    def _visit(self, node, info: _MethodInfo, held: Tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A deferred body: whatever lock is held now is NOT held when
            # this eventually runs.
            body = node.body if isinstance(node.body, list) else [node.body]
            self._walk(body, info, held=())
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = [
                attr
                for item in node.items
                if (attr := _self_attr(item.context_expr)) in self.locks
            ]
            for item in node.items:
                self._visit(item.context_expr, info, held)
            self._walk(node.body, info, tuple(dict.fromkeys(held + tuple(acquired))))
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                base = _store_base(target)
                if base and base not in self.locks:
                    info.writes.add(base)
                    info.write_accesses.append((base, held))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                base = _store_base(target)
                if base and base not in self.locks:
                    info.writes.add(base)
                    info.write_accesses.append((base, held))
        if isinstance(node, ast.Call):
            callee = node.func
            method = _self_attr(callee)
            if method:
                info.calls.setdefault(method, []).append(held)
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr in _MUTATORS
            ):
                base = _store_base(callee.value)
                if base and base not in self.locks:
                    info.writes.add(base)
                    info.write_accesses.append((base, held))
            for child in ast.iter_child_nodes(node):
                self._visit(child, info, held)
            return
        attr = _self_attr(node)
        if attr and attr not in self.locks:
            info.accesses.append(_Access(attr, info.name, node, held))
        for child in ast.iter_child_nodes(node):
            self._visit(child, info, held)


def _lock_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attributes assigned a lock object anywhere in the class."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _call_name(node.value) in _LOCK_FACTORIES:
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr:
                        locks.add(attr)
    return locks


def _locked_helpers(methods: Dict[str, _MethodInfo]) -> Set[str]:
    """Methods whose body runs with the lock held by convention.

    ``*_locked`` names declare it; otherwise a private method qualifies
    when it is called at least once and every in-class call site holds a
    lock or sits inside an already-qualified helper — iterated to a
    fixpoint so chains of helpers resolve.
    """
    helpers = {name for name in methods if name.endswith("_locked")}
    changed = True
    while changed:
        changed = False
        for name in methods:
            if name in helpers:
                continue
            if not name.startswith("_") or name.startswith("__"):
                continue
            # Call sites from *other* methods (self-recursion doesn't
            # vouch): (caller name, locks held at the call).
            sites = [
                (caller.name, held)
                for caller in methods.values()
                if caller.name != name
                for held in caller.calls.get(name, ())
            ]
            if sites and all(
                held or caller in helpers for caller, held in sites
            ):
                helpers.add(name)
                changed = True
    return helpers


@register
class LockDisciplineRule(Rule):
    """Flag unguarded access to attributes a class guards with a lock."""

    id = "lock-discipline"
    description = (
        "attributes accessed under `with self._lock` anywhere must be "
        "accessed under that lock everywhere (outside __init__ and "
        "caller-holds-lock helpers)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield unguarded accesses per lock-owning class."""
        for cls in [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        ]:
            locks = _lock_attrs(cls)
            if not locks:
                continue
            scanner = _ClassScanner(cls, locks)
            scanner.scan()
            helpers = _locked_helpers(scanner.methods)
            # Write-once configuration (assigned in __init__, only read
            # afterwards) cannot race: guardedness requires a mutation
            # somewhere after construction. Helper methods count — they
            # run post-construction on the caller's behalf.
            written: Set[str] = set()
            for info in scanner.methods.values():
                if info.name != "__init__":
                    written |= info.writes
            # Owners come from the locks held while *writing* — the
            # writer defines the protocol. Attributes whose writes all
            # sit inside locked helpers (where held is empty but the
            # caller holds the lock) fall back to the union of locks
            # held at any access.
            write_owned: Dict[str, Set[str]] = {}
            any_owned: Dict[str, Set[str]] = {}
            for info in scanner.methods.values():
                if info.name == "__init__" or info.name in helpers:
                    continue
                for attr, held in info.write_accesses:
                    if held and attr in written:
                        write_owned.setdefault(attr, set()).update(held)
                for access in info.accesses:
                    if access.held and access.attr in written:
                        any_owned.setdefault(access.attr, set()).update(
                            access.held
                        )
            guarded = {
                attr: write_owned.get(attr) or owners
                for attr, owners in any_owned.items()
            }
            for info in scanner.methods.values():
                if info.name == "__init__" or info.name in helpers:
                    continue
                for access in info.accesses:
                    # Methods and properties live on the class object and
                    # never rebind per-instance; calling one unguarded is
                    # fine (whether its *body* needs the lock is what the
                    # helper fixpoint answers).
                    if access.attr in scanner.methods:
                        continue
                    owners = guarded.get(access.attr)
                    if not owners:
                        continue
                    if set(access.held) & owners:
                        continue
                    where = (
                        f"under {'/'.join(sorted(access.held))} only"
                        if access.held
                        else "without a lock"
                    )
                    yield self.finding(
                        module,
                        access.node,
                        scope=f"{cls.name}.{info.name}",
                        key=f"{cls.name}.{info.name}:{access.attr}",
                        message=(
                            f"{cls.name}.{info.name} accesses "
                            f"self.{access.attr} {where}; it is guarded "
                            f"by {'/'.join(sorted(owners))} elsewhere"
                        ),
                    )
